//! The Hermes wire protocol: length-prefixed binary messages carrying the
//! typed [`Value`]/[`Frame`] results across a TCP connection.
//!
//! Every message is one *wire frame*:
//!
//! ```text
//! +-----------------+-----------+------------------+
//! | length: u32 BE  | kind: u8  | payload bytes    |
//! +-----------------+-----------+------------------+
//! ```
//!
//! `length` counts the kind byte plus the payload, so an empty message has
//! length 1. All integers are big-endian; floats travel as their IEEE-754
//! bit pattern; strings as `u32` byte length + UTF-8 bytes. The full message
//! catalogue and payload layouts are documented in `docs/PROTOCOL.md`.
//!
//! The encoding is deliberately symmetric: [`Request`]s flow client → server,
//! [`Response`]s flow back, and both sides use the same
//! [`read_request`]/[`write_response`] (and [`read_response`]/
//! [`write_request`]) pairs, which also report the byte counts feeding the
//! server's `bytes_in`/`bytes_out` metrics.

use hermes_sql::{ColumnDef, CommandStatus, CommandTag, Frame, QueryOutcome, Value, ValueType};
use hermes_trajectory::{Point, Timestamp, Trajectory};
use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on one wire frame (kind byte + payload). Large enough for a
/// bulk trajectory ingest, small enough to stop a corrupt length prefix from
/// asking the peer to allocate gigabytes.
pub const MAX_MESSAGE_BYTES: u32 = 64 * 1024 * 1024;

/// A malformed message (bad tag, truncated payload, non-UTF-8 string, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire protocol decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for io::Error {
    fn from(e: DecodeError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Parse and execute one statement.
    Query {
        /// Statement text in the Hermes SQL dialect.
        sql: String,
    },
    /// Parse a statement (placeholders allowed) into a server-side prepared
    /// statement; answered by [`Response::Prepared`].
    Prepare {
        /// Statement text, may contain `$n` placeholders.
        sql: String,
    },
    /// Execute a prepared statement with parameters bound to its
    /// placeholders. Handles are per connection.
    ExecutePrepared {
        /// Handle from [`Response::Prepared`].
        handle: u32,
        /// Values for `$1..$n`.
        params: Vec<Value>,
    },
    /// Bulk-load trajectories into a dataset (created on first ingest).
    Ingest {
        /// Target dataset.
        dataset: String,
        /// The trajectories to append.
        trajectories: Vec<Trajectory>,
    },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A query produced rows (and possibly a statistics frame).
    Rows {
        /// The result rows.
        frame: Frame,
        /// The `\timing` statistics frame, when the statement measured any.
        stats: Option<Frame>,
    },
    /// A command completed without rows.
    Command(CommandStatus),
    /// A statement was prepared under this connection-scoped handle.
    Prepared {
        /// Handle to pass to [`Request::ExecutePrepared`].
        handle: u32,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Response {
    /// Converts a row/command response into the typed [`QueryOutcome`] the
    /// local execution path produces, so remote and local callers handle one
    /// result type.
    pub fn into_outcome(self) -> Result<QueryOutcome, DecodeError> {
        match self {
            Response::Rows { frame, stats } => Ok(QueryOutcome::Rows { frame, stats }),
            Response::Command(status) => Ok(QueryOutcome::Command(status)),
            other => Err(DecodeError(format!(
                "expected a rows/command response, got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| DecodeError(format!("message truncated (wanted {n} more bytes)")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError("string is not valid UTF-8".into()))
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Value / Frame / CommandStatus encoding
// ---------------------------------------------------------------------------

const VALUE_NULL: u8 = 0;
const VALUE_BOOL: u8 = 1;
const VALUE_INT: u8 = 2;
const VALUE_FLOAT: u8 = 3;
const VALUE_TEXT: u8 = 4;
const VALUE_TIMESTAMP: u8 = 5;
const VALUE_INTERVAL: u8 = 6;

fn write_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.u8(VALUE_NULL),
        Value::Bool(b) => {
            w.u8(VALUE_BOOL);
            w.u8(*b as u8);
        }
        Value::Int(i) => {
            w.u8(VALUE_INT);
            w.i64(*i);
        }
        Value::Float(f) => {
            w.u8(VALUE_FLOAT);
            w.f64(*f);
        }
        Value::Text(s) => {
            w.u8(VALUE_TEXT);
            w.str(s);
        }
        Value::Timestamp(t) => {
            w.u8(VALUE_TIMESTAMP);
            w.i64(t.millis());
        }
        Value::Interval(d) => {
            w.u8(VALUE_INTERVAL);
            w.i64(d.millis());
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> Result<Value, DecodeError> {
    Ok(match r.u8()? {
        VALUE_NULL => Value::Null,
        VALUE_BOOL => Value::Bool(r.u8()? != 0),
        VALUE_INT => Value::Int(r.i64()?),
        VALUE_FLOAT => Value::Float(r.f64()?),
        VALUE_TEXT => Value::Text(r.str()?),
        VALUE_TIMESTAMP => Value::Timestamp(Timestamp(r.i64()?)),
        VALUE_INTERVAL => Value::Interval(hermes_trajectory::Duration::from_millis(r.i64()?)),
        tag => return Err(DecodeError(format!("unknown value tag {tag}"))),
    })
}

fn type_code(ty: ValueType) -> u8 {
    match ty {
        ValueType::Bool => VALUE_BOOL,
        ValueType::Int => VALUE_INT,
        ValueType::Float => VALUE_FLOAT,
        ValueType::Text => VALUE_TEXT,
        ValueType::Timestamp => VALUE_TIMESTAMP,
        ValueType::Interval => VALUE_INTERVAL,
    }
}

fn type_of_code(code: u8) -> Result<ValueType, DecodeError> {
    Ok(match code {
        VALUE_BOOL => ValueType::Bool,
        VALUE_INT => ValueType::Int,
        VALUE_FLOAT => ValueType::Float,
        VALUE_TEXT => ValueType::Text,
        VALUE_TIMESTAMP => ValueType::Timestamp,
        VALUE_INTERVAL => ValueType::Interval,
        tag => return Err(DecodeError(format!("unknown column type code {tag}"))),
    })
}

fn write_frame_payload(w: &mut Writer, frame: &Frame) {
    w.u16(frame.num_columns() as u16);
    for col in frame.schema() {
        w.str(&col.name);
        w.u8(type_code(col.ty));
    }
    w.u32(frame.num_rows() as u32);
    for row in frame.rows() {
        for cell in row {
            write_value(w, cell);
        }
    }
}

fn read_frame_payload(r: &mut Reader<'_>) -> Result<Frame, DecodeError> {
    let ncols = r.u16()? as usize;
    let mut schema = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = r.str()?;
        let ty = type_of_code(r.u8()?)?;
        schema.push(ColumnDef::new(name, ty));
    }
    let mut frame = Frame::new(schema);
    let nrows = r.u32()? as usize;
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(read_value(r)?);
        }
        frame.push_row(row).map_err(DecodeError)?;
    }
    Ok(frame)
}

fn command_tag_code(tag: CommandTag) -> u8 {
    match tag {
        CommandTag::CreateDataset => 1,
        CommandTag::DropDataset => 2,
        CommandTag::BuildIndex => 3,
        CommandTag::Ingest => 4,
        CommandTag::Set => 5,
        CommandTag::Checkpoint => 6,
    }
}

fn command_tag_of_code(code: u8) -> Result<CommandTag, DecodeError> {
    Ok(match code {
        1 => CommandTag::CreateDataset,
        2 => CommandTag::DropDataset,
        3 => CommandTag::BuildIndex,
        4 => CommandTag::Ingest,
        5 => CommandTag::Set,
        6 => CommandTag::Checkpoint,
        tag => return Err(DecodeError(format!("unknown command tag code {tag}"))),
    })
}

fn write_trajectory(w: &mut Writer, t: &Trajectory) {
    w.u64(t.id);
    w.u64(t.object_id);
    w.u32(t.points().len() as u32);
    for p in t.points() {
        w.f64(p.x);
        w.f64(p.y);
        w.i64(p.t.millis());
    }
}

fn read_trajectory(r: &mut Reader<'_>) -> Result<Trajectory, DecodeError> {
    let id = r.u64()?;
    let object_id = r.u64()?;
    let n = r.u32()? as usize;
    let mut points = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let x = r.f64()?;
        let y = r.f64()?;
        let t = Timestamp(r.i64()?);
        points.push(Point::new(x, y, t));
    }
    Trajectory::new(id, object_id, points)
        .map_err(|e| DecodeError(format!("invalid trajectory {id}: {e}")))
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

const REQ_QUERY: u8 = 1;
const REQ_PREPARE: u8 = 2;
const REQ_EXECUTE_PREPARED: u8 = 3;
const REQ_INGEST: u8 = 4;

const RESP_ROWS: u8 = 101;
const RESP_COMMAND: u8 = 102;
const RESP_PREPARED: u8 = 103;
const RESP_ERROR: u8 = 104;

fn encode_request(req: &Request) -> (u8, Vec<u8>) {
    let mut w = Writer::new();
    let kind = match req {
        Request::Query { sql } => {
            w.str(sql);
            REQ_QUERY
        }
        Request::Prepare { sql } => {
            w.str(sql);
            REQ_PREPARE
        }
        Request::ExecutePrepared { handle, params } => {
            w.u32(*handle);
            w.u16(params.len() as u16);
            for p in params {
                write_value(&mut w, p);
            }
            REQ_EXECUTE_PREPARED
        }
        Request::Ingest {
            dataset,
            trajectories,
        } => {
            w.str(dataset);
            w.u32(trajectories.len() as u32);
            for t in trajectories {
                write_trajectory(&mut w, t);
            }
            REQ_INGEST
        }
    };
    (kind, w.buf)
}

fn decode_request(kind: u8, payload: &[u8]) -> Result<Request, DecodeError> {
    let mut r = Reader::new(payload);
    let req = match kind {
        REQ_QUERY => Request::Query { sql: r.str()? },
        REQ_PREPARE => Request::Prepare { sql: r.str()? },
        REQ_EXECUTE_PREPARED => {
            let handle = r.u32()?;
            let n = r.u16()? as usize;
            let mut params = Vec::with_capacity(n);
            for _ in 0..n {
                params.push(read_value(&mut r)?);
            }
            Request::ExecutePrepared { handle, params }
        }
        REQ_INGEST => {
            let dataset = r.str()?;
            let n = r.u32()? as usize;
            let mut trajectories = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                trajectories.push(read_trajectory(&mut r)?);
            }
            Request::Ingest {
                dataset,
                trajectories,
            }
        }
        tag => return Err(DecodeError(format!("unknown request kind {tag}"))),
    };
    r.finish()?;
    Ok(req)
}

fn encode_response(resp: &Response) -> (u8, Vec<u8>) {
    let mut w = Writer::new();
    let kind = match resp {
        Response::Rows { frame, stats } => {
            w.u8(stats.is_some() as u8);
            write_frame_payload(&mut w, frame);
            if let Some(stats) = stats {
                write_frame_payload(&mut w, stats);
            }
            RESP_ROWS
        }
        Response::Command(status) => {
            w.u8(command_tag_code(status.tag));
            w.u64(status.affected);
            RESP_COMMAND
        }
        Response::Prepared { handle } => {
            w.u32(*handle);
            RESP_PREPARED
        }
        Response::Error { message } => {
            w.str(message);
            RESP_ERROR
        }
    };
    (kind, w.buf)
}

fn decode_response(kind: u8, payload: &[u8]) -> Result<Response, DecodeError> {
    let mut r = Reader::new(payload);
    let resp = match kind {
        RESP_ROWS => {
            let has_stats = r.u8()? != 0;
            let frame = read_frame_payload(&mut r)?;
            let stats = if has_stats {
                Some(read_frame_payload(&mut r)?)
            } else {
                None
            };
            Response::Rows { frame, stats }
        }
        RESP_COMMAND => Response::Command(CommandStatus {
            tag: command_tag_of_code(r.u8()?)?,
            affected: r.u64()?,
        }),
        RESP_PREPARED => Response::Prepared { handle: r.u32()? },
        RESP_ERROR => Response::Error { message: r.str()? },
        tag => return Err(DecodeError(format!("unknown response kind {tag}"))),
    };
    r.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// Wire framing
// ---------------------------------------------------------------------------

fn write_wire_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<u64> {
    let length = 1 + payload.len();
    if length > MAX_MESSAGE_BYTES as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("message of {length} bytes exceeds the {MAX_MESSAGE_BYTES} byte cap"),
        ));
    }
    let length = length as u32;
    w.write_all(&length.to_be_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(4 + length as u64)
}

fn read_wire_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>, u64)> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let length = u32::from_be_bytes(len_bytes);
    if length == 0 || length > MAX_MESSAGE_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid message length {length}"),
        ));
    }
    let mut body = vec![0u8; length as usize];
    r.read_exact(&mut body)?;
    let kind = body[0];
    let payload = body.split_off(1);
    Ok((kind, payload, 4 + length as u64))
}

/// Writes one request, returning the bytes put on the wire.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<u64> {
    let (kind, payload) = encode_request(req);
    write_wire_frame(w, kind, &payload)
}

/// Reads one request, returning it with the bytes taken off the wire.
/// `ErrorKind::UnexpectedEof` means the peer closed the connection.
pub fn read_request(r: &mut impl Read) -> io::Result<(Request, u64)> {
    let (kind, payload, n) = read_wire_frame(r)?;
    Ok((decode_request(kind, &payload)?, n))
}

/// Writes one response, returning the bytes put on the wire.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<u64> {
    let (kind, payload) = encode_response(resp);
    write_wire_frame(w, kind, &payload)
}

/// Reads one response, returning it with the bytes taken off the wire.
pub fn read_response(r: &mut impl Read) -> io::Result<(Response, u64)> {
    let (kind, payload, n) = read_wire_frame(r)?;
    Ok((decode_response(kind, &payload)?, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::Duration;

    fn round_trip_request(req: Request) -> Request {
        let mut buf = Vec::new();
        let written = write_request(&mut buf, &req).unwrap();
        assert_eq!(written as usize, buf.len());
        let (back, read) = read_request(&mut buf.as_slice()).unwrap();
        assert_eq!(read, written);
        back
    }

    fn round_trip_response(resp: Response) -> Response {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        read_response(&mut buf.as_slice()).unwrap().0
    }

    fn sample_frame() -> Frame {
        let mut f = Frame::with_columns(&[
            ("name", ValueType::Text),
            ("n", ValueType::Int),
            ("score", ValueType::Float),
            ("at", ValueType::Timestamp),
            ("gap", ValueType::Interval),
            ("ok", ValueType::Bool),
        ]);
        f.push_row(vec![
            Value::from("ships"),
            Value::Int(-3),
            Value::Float(0.5),
            Value::Timestamp(Timestamp(42)),
            Value::Interval(Duration::from_secs(9)),
            Value::Bool(true),
        ])
        .unwrap();
        f.push_row(vec![
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ])
        .unwrap();
        f
    }

    fn traj(id: u64) -> Trajectory {
        Trajectory::new(
            id,
            id * 10,
            (0..5)
                .map(|i| Point::new(i as f64, -1.5 * i as f64, Timestamp(i * 1000)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Query {
                sql: "SHOW DATASETS;".into(),
            },
            Request::Prepare {
                sql: "SELECT RANGE(d, $1, $2);".into(),
            },
            Request::ExecutePrepared {
                handle: 7,
                params: vec![
                    Value::Int(0),
                    Value::Timestamp(Timestamp(99)),
                    Value::Float(1.5),
                    Value::Null,
                ],
            },
            Request::Ingest {
                dataset: "flights".into(),
                trajectories: vec![traj(1), traj(2)],
            },
        ] {
            assert_eq!(round_trip_request(req.clone()), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Rows {
                frame: sample_frame(),
                stats: None,
            },
            Response::Rows {
                frame: sample_frame(),
                stats: Some(sample_frame()),
            },
            Response::Command(CommandStatus {
                tag: CommandTag::BuildIndex,
                affected: 12,
            }),
            Response::Command(CommandStatus {
                tag: CommandTag::Ingest,
                affected: 640,
            }),
            Response::Command(CommandStatus {
                tag: CommandTag::Checkpoint,
                affected: 123_456,
            }),
            Response::Prepared { handle: 3 },
            Response::Error {
                message: "unknown dataset 'x'".into(),
            },
        ] {
            assert_eq!(round_trip_response(resp.clone()), resp);
        }
    }

    #[test]
    fn into_outcome_maps_rows_and_commands() {
        let rows = Response::Rows {
            frame: sample_frame(),
            stats: None,
        };
        assert_eq!(rows.into_outcome().unwrap().num_rows(), 2);
        let cmd = Response::Command(CommandStatus {
            tag: CommandTag::CreateDataset,
            affected: 1,
        });
        assert!(cmd.into_outcome().unwrap().command().is_some());
        assert!(Response::Prepared { handle: 0 }.into_outcome().is_err());
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicked() {
        // Unknown kind.
        let mut buf = Vec::new();
        write_wire_frame(&mut buf, 250, &[]).unwrap();
        assert!(read_request(&mut buf.as_slice()).is_err());
        // Truncated payload.
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &Request::Query {
                sql: "SHOW DATASETS;".into(),
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_request(&mut buf.as_slice()).is_err());
        // Oversized / zero length prefixes.
        let huge = (MAX_MESSAGE_BYTES + 1).to_be_bytes();
        assert!(read_wire_frame(&mut huge.as_slice()).is_err());
        let zero = 0u32.to_be_bytes();
        assert!(read_wire_frame(&mut zero.as_slice()).is_err());
        // Trailing garbage after a valid message body.
        let mut w = Writer::new();
        w.str("SHOW DATASETS;");
        w.u8(99);
        assert!(decode_request(REQ_QUERY, &w.buf).is_err());
    }

    #[test]
    fn eof_reads_as_unexpected_eof() {
        let empty: &[u8] = &[];
        let err = read_request(&mut &*empty).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
