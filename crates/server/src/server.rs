//! The TCP server: every connection gets its own [`Session`] over one
//! [`SharedEngine`], behind one of two interchangeable cores.
//!
//! The default core on unix ([`ServerCore::Event`], `crate::event_loop`) is
//! a readiness-driven event loop: one thread multiplexes every socket
//! through `epoll`/`poll(2)`, parses pipelined frames into per-connection
//! queues, and hands statements to a small worker pool — so ten thousand
//! idle connections cost file descriptors, not stacks. Read statements pin
//! the engine's published snapshot epoch and never block; writes serialize
//! through the engine's commit mutex and publish new epochs.
//!
//! The fallback core ([`ServerCore::Threaded`]) is the original
//! thread-per-connection loop behind a connection cap — still useful on
//! non-unix targets and as the A/B baseline for the concurrency benchmarks.
//! Both cores answer through the same `execute_request` path, so frames
//! are byte-identical between them.

use crate::metrics::ServerMetrics;
use crate::protocol::{
    read_handshake, read_request, write_handshake, write_response, ErrorCode, Request, Response,
};
use crate::shard;
use crate::traceview::{self, TraceQuery};
use hermes_core::{EngineError, SharedEngine};
use hermes_obs::{
    next_id, slow_query_line, Registry, Sample, SampleValue, Span, SpanStore, TraceContext,
};
use hermes_retratree::OwnedSlice;
use hermes_sql::{
    push_stat, sort_stats_rows, CommandStatus, CommandTag, Prepared, QueryOutcome, Scalar, Session,
    Statement, Value,
};
use hermes_trajectory::{TimeInterval, Timestamp};
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Which concurrency core a [`Server`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerCore {
    /// Readiness-driven event loop (`epoll`/`poll(2)`) with a bounded worker
    /// pool. The default on unix; on other targets it falls back to
    /// [`ServerCore::Threaded`].
    Event,
    /// One OS thread per connection behind the connection cap.
    Threaded,
}

impl Default for ServerCore {
    fn default() -> Self {
        if cfg!(unix) {
            ServerCore::Event
        } else {
            ServerCore::Threaded
        }
    }
}

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Most simultaneous connections admitted; further clients receive a
    /// [`ErrorCode::Capacity`] error response to their first request and are
    /// disconnected.
    pub max_connections: usize,
    /// When set, any statement slower than this many milliseconds bumps the
    /// slow-query counter and writes one structured JSON line (with its trace
    /// id) to stderr. `None` disables the slow-query log.
    pub slow_query_ms: Option<u64>,
    /// Which concurrency core to run.
    pub core: ServerCore,
    /// Worker threads executing statements under the event core; `0` sizes
    /// the pool from the machine (`available_parallelism`, clamped to
    /// `[2, 8]`). Ignored by the threaded core.
    pub workers: usize,
    /// Most requests admitted but not yet answered across all connections
    /// (event core). Further pipelined requests are answered with an
    /// [`ErrorCode::Backpressure`] error without executing.
    pub max_pending: usize,
    /// Most requests queued on one connection before the event loop stops
    /// reading from its socket (TCP backpressure) until the queue drains.
    pub max_conn_pending: usize,
    /// When set, a request not fully answered within this many milliseconds
    /// of arrival is answered with an [`ErrorCode::Deadline`] error instead
    /// of its (late) result.
    pub deadline_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            slow_query_ms: None,
            core: ServerCore::default(),
            workers: 0,
            max_pending: 1024,
            max_conn_pending: 128,
            deadline_ms: None,
        }
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    pub(crate) listener: TcpListener,
    pub(crate) engine: SharedEngine,
    pub(crate) config: ServerConfig,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) registry: Arc<Registry>,
    pub(crate) spans: Arc<SpanStore>,
    pub(crate) shutdown: Arc<AtomicBool>,
    /// Live connection sockets, so [`ServerHandle::kill`] can cut sessions
    /// mid-flight (simulating a crashed shard in tests).
    pub(crate) conns: Arc<Mutex<Vec<(u64, TcpStream)>>>,
}

impl Server {
    /// Binds a listener (port 0 picks an ephemeral port) over an engine.
    ///
    /// The server owns a process-wide [`Registry`] carrying its own counters
    /// plus a pull-based collector over the engine's aggregated stats
    /// (`hermes_engine_*`, `hermes_storage_*`, `hermes_exec_*`), and a
    /// [`SpanStore`] holding recent per-query spans for `SHOW TRACE`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: SharedEngine,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let registry = Arc::new(Registry::new());
        let metrics = Arc::new(ServerMetrics::register(&registry));
        let collector_engine = engine.clone();
        registry.register_collector(move |out| collect_engine_samples(&collector_engine, out));
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            engine,
            config,
            metrics,
            registry,
            spans: Arc::new(SpanStore::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's metric counters.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The process-wide metrics registry (served at `GET /metrics`).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// The in-process span store behind `SHOW TRACE` / `SHOW TRACES`.
    pub fn spans(&self) -> Arc<SpanStore> {
        Arc::clone(&self.spans)
    }

    /// Runs the server on the calling thread until shut down, dispatching to
    /// the configured [`ServerCore`].
    pub fn run(self) -> io::Result<()> {
        match self.config.core {
            #[cfg(unix)]
            ServerCore::Event => crate::event_loop::run(self),
            _ => self.run_threaded(),
        }
    }

    /// The thread-per-connection core: one blocking accept loop, one OS
    /// thread per admitted session.
    fn run_threaded(self) -> io::Result<()> {
        let mut next_conn_id: u64 = 0;
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                // Transient accept failures (EMFILE, aborted handshakes)
                // must not take the server down.
                Err(_) => continue,
            };
            let active = self.metrics.connections_active.get();
            if active >= self.config.max_connections as u64 {
                self.metrics.connections_rejected.inc();
                let max_connections = self.config.max_connections;
                thread::spawn(move || reject_connection(stream, max_connections));
                continue;
            }
            self.metrics.connections_accepted.inc();
            self.metrics.connections_active.inc();
            let conn_id = next_conn_id;
            next_conn_id += 1;
            if let Ok(clone) = stream.try_clone() {
                self.conns.lock().unwrap().push((conn_id, clone));
            }
            let engine = self.engine.clone();
            let metrics = Arc::clone(&self.metrics);
            let spans = Arc::clone(&self.spans);
            let slow_query_ms = self.config.slow_query_ms;
            let deadline_ms = self.config.deadline_ms;
            let conns = Arc::clone(&self.conns);
            thread::spawn(move || {
                let env = RequestEnv {
                    engine: &engine,
                    metrics: &metrics,
                    spans: &spans,
                    slow_query_ms,
                    deadline_ms,
                };
                let _ = handle_connection(stream, &env);
                metrics.connections_active.dec();
                conns.lock().unwrap().retain(|(id, _)| *id != conn_id);
            });
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread, returning a handle that
    /// shuts the server down when asked (or dropped).
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let metrics = self.metrics();
        let registry = self.registry();
        let spans = self.spans();
        let shutdown = Arc::clone(&self.shutdown);
        let engine = self.engine.clone();
        let conns = Arc::clone(&self.conns);
        let thread = thread::spawn(move || {
            let _ = self.run();
        });
        Ok(ServerHandle {
            addr,
            metrics,
            registry,
            spans,
            shutdown,
            engine,
            conns,
            thread: Some(thread),
        })
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<ServerMetrics>,
    registry: Arc<Registry>,
    spans: Arc<SpanStore>,
    shutdown: Arc<AtomicBool>,
    engine: SharedEngine,
    conns: Arc<Mutex<Vec<(u64, TcpStream)>>>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metric counters.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The process-wide metrics registry (served at `GET /metrics`).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// The in-process span store behind `SHOW TRACE` / `SHOW TRACES`.
    pub fn spans(&self) -> Arc<SpanStore> {
        Arc::clone(&self.spans)
    }

    /// A handle to the engine the server serves (e.g. to preload data).
    pub fn engine(&self) -> SharedEngine {
        self.engine.clone()
    }

    /// Stops accepting connections and joins the accept loop. Connections
    /// already in a session run until their client disconnects.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Hard stop: like [`ServerHandle::shutdown`] but also severs every live
    /// connection socket, so peers holding pooled connections observe the
    /// failure immediately — the closest in-process equivalent of killing the
    /// shard process, used by the multi-shard failure tests.
    pub fn kill(mut self) {
        for (_, stream) in self.conns.lock().unwrap().iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        self.stop();
    }

    fn stop(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Builds the typed error frame for a connection turned away at the cap.
pub(crate) fn capacity_error(max_connections: usize) -> Response {
    Response::Error {
        code: ErrorCode::Capacity,
        message: format!("server at connection capacity ({max_connections} active)"),
    }
}

/// Turns away a connection over the cap. The client's first request is read
/// (with a timeout, so a silent client cannot stall the accept loop) before
/// the error response goes out — answering before the request arrives would
/// race the client's write against the close and can surface as a connection
/// reset instead of the capacity message.
fn reject_connection(stream: TcpStream, max_connections: usize) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    let Ok(mut reader) = stream.try_clone().map(BufReader::new) else {
        return;
    };
    let mut writer = BufWriter::new(stream);
    // Complete the preamble exchange so the client reaches its first request,
    // then turn that request away.
    if write_handshake(&mut writer).is_err() || read_handshake(&mut reader).is_err() {
        return;
    }
    let _ = read_request(&mut reader);
    let _ = write_response(&mut writer, &capacity_error(max_connections));
}

/// Everything a request needs besides the connection's own session state.
/// Both cores build one of these and answer through [`execute_request`].
pub(crate) struct RequestEnv<'a> {
    /// The shared engine (epoch publication source).
    pub(crate) engine: &'a SharedEngine,
    /// The server's counters.
    pub(crate) metrics: &'a ServerMetrics,
    /// The span store behind `SHOW TRACE`.
    pub(crate) spans: &'a SpanStore,
    /// Slow-query log threshold.
    pub(crate) slow_query_ms: Option<u64>,
    /// Per-request deadline.
    pub(crate) deadline_ms: Option<u64>,
}

/// Builds the typed error frame for a request that overran its deadline.
pub(crate) fn deadline_error(deadline_ms: u64) -> Response {
    Response::Error {
        code: ErrorCode::Deadline,
        message: format!("deadline exceeded: request not answered within {deadline_ms}ms"),
    }
}

/// Fully answers one request: deadline admission, trace planning, execution,
/// metric accounting, span recording, deadline enforcement on the way out.
/// `received` is when the request was parsed off the socket — under the
/// event core that can be well before execution starts, which is exactly
/// what the deadline must measure.
pub(crate) fn execute_request(
    env: &RequestEnv<'_>,
    session: &mut Session<SharedEngine>,
    prepared: &mut Vec<Prepared>,
    request: Request,
    inbound_trace: Option<TraceContext>,
    received: Instant,
) -> Response {
    let metrics = env.metrics;
    let deadline = env.deadline_ms.map(Duration::from_millis);
    if let (Some(deadline), Some(ms)) = (deadline, env.deadline_ms) {
        if received.elapsed() > deadline {
            // Already late before executing: don't burn a worker on a result
            // the client has been told not to wait for.
            metrics.deadline_misses.inc();
            metrics.query_errors.inc();
            return deadline_error(ms);
        }
    }
    let plan = trace_plan(&request, session, prepared);
    let started = Instant::now();
    let mut response = execute(session, prepared, env.engine, metrics, env.spans, request);
    let elapsed = started.elapsed();
    if let (Some(deadline), Some(ms)) = (deadline, env.deadline_ms) {
        if received.elapsed() > deadline {
            metrics.deadline_misses.inc();
            response = deadline_error(ms);
        }
    }
    metrics.latency.record(elapsed);
    match &response {
        Response::Error { .. } => metrics.query_errors.inc(),
        _ => metrics.queries_served.inc(),
    };
    metrics.epoch.set(env.engine.epoch());
    if let Some(plan) = plan {
        record_request_span(
            plan,
            &response,
            inbound_trace,
            started,
            elapsed,
            env.spans,
            metrics,
            env.slow_query_ms,
        );
    }
    response
}

/// Per-connection request loop of the threaded core: read a request, answer
/// it through the connection's session, repeat until the client hangs up.
fn handle_connection(stream: TcpStream, env: &RequestEnv<'_>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let metrics = env.metrics;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // Preamble: the server speaks first, then verifies the client's answer.
    // An incompatible peer gets a clean error response before the close.
    write_handshake(&mut writer)?;
    if let Err(e) = read_handshake(&mut reader) {
        metrics.query_errors.inc();
        let _ = write_response(&mut writer, &protocol_error(&e));
        return Ok(());
    }

    let mut session: Session<SharedEngine> = Session::new(env.engine.clone());
    // Wire handles are indexes into this connection-private table, so one
    // connection can never execute (or even see) another's statements.
    let mut prepared: Vec<Prepared> = Vec::new();

    loop {
        let (request, inbound_trace, n_in) = match read_request(&mut reader) {
            Ok(v) => v,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // A malformed frame leaves the stream unparseable: report and
                // drop the connection rather than guessing at a resync point.
                metrics.query_errors.inc();
                let _ = write_response(&mut writer, &protocol_error(&e));
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        metrics.bytes_in.add(n_in);
        let received = Instant::now();
        let response = execute_request(
            env,
            &mut session,
            &mut prepared,
            request,
            inbound_trace,
            received,
        );
        let n_out = match write_response(&mut writer, &response) {
            Ok(n) => n,
            // An over-cap result frame is rejected before any byte hits the
            // wire, so the stream is still in sync: tell the client why
            // instead of silently dropping the connection.
            Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
                metrics.query_errors.inc();
                write_response(&mut writer, &oversize_error(&e))?
            }
            Err(e) => return Err(e),
        };
        metrics.bytes_out.add(n_out);
    }
}

/// Builds the typed error frame for an unparseable or incompatible peer.
pub(crate) fn protocol_error(e: &io::Error) -> Response {
    Response::Error {
        code: ErrorCode::Protocol,
        message: e.to_string(),
    }
}

/// Builds the typed error frame for a result frame over the wire cap.
pub(crate) fn oversize_error(e: &io::Error) -> Response {
    Response::Error {
        code: ErrorCode::Protocol,
        message: format!("result too large for the wire protocol: {e}"),
    }
}

/// How (and whether) to record a span for a request, decided before the
/// request is consumed by [`answer`].
struct TracePlan {
    /// Span name (`query`, `qut_partial`, …).
    name: &'static str,
    /// Statement text for the span attribute and the slow-query log.
    statement: Option<String>,
}

/// Builds the span plan for a request. Trace-inspection statements
/// (`SHOW TRACE`/`SHOW TRACES`, direct or prepared) return `None`: recording
/// them would fill the ring buffer with the act of looking at it.
fn trace_plan(
    request: &Request,
    session: &Session<SharedEngine>,
    prepared: &[Prepared],
) -> Option<TracePlan> {
    let plan = |name, statement| Some(TracePlan { name, statement });
    match request {
        Request::Query { sql } => match traceview::sniff_trace_text(sql) {
            Some(_) => None,
            None => plan("query", Some(sql.clone())),
        },
        Request::Prepare { sql } => plan("prepare", Some(sql.clone())),
        Request::ExecutePrepared { handle, .. } => {
            let statement = prepared
                .get(*handle as usize)
                .and_then(|&h| session.statement(h));
            if matches!(
                statement,
                Some(Statement::ShowTraces | Statement::ShowTrace { .. })
            ) {
                return None;
            }
            plan("execute_prepared", statement.map(|s| s.to_string()))
        }
        Request::Ingest { .. } => plan("ingest", None),
        Request::QutPartial { .. } => plan("qut_partial", None),
        Request::RangePartial { .. } => plan("range_partial", None),
        Request::GatherTrajectories { .. } => plan("gather_trajectories", None),
        Request::InfoPartial { .. } => plan("info_partial", None),
    }
}

/// Records the span for one answered request — parented under the wire's
/// trace context when the caller propagated one (the coordinator fan-out),
/// otherwise as a fresh root — and feeds the slow-query log.
#[allow(clippy::too_many_arguments)]
fn record_request_span(
    plan: TracePlan,
    response: &Response,
    inbound_trace: Option<hermes_obs::TraceContext>,
    started: Instant,
    elapsed: std::time::Duration,
    spans: &SpanStore,
    metrics: &ServerMetrics,
    slow_query_ms: Option<u64>,
) {
    let (trace_id, parent_span_id, start_us) = match inbound_trace {
        // Remote origin: wall clocks are not assumed synchronized, so the
        // start offset is left at 0 (see [`Span::start_us`]).
        Some(ctx) => (ctx.trace_id, ctx.parent_span_id, 0),
        None => (
            next_id(),
            0,
            started
                .saturating_duration_since(process_origin())
                .as_micros() as u64,
        ),
    };
    if let Some(threshold) = slow_query_ms {
        let ms = elapsed.as_secs_f64() * 1e3;
        if ms >= threshold as f64 {
            metrics.slow_queries.inc();
            let statement = plan.statement.as_deref().unwrap_or(plan.name);
            eprintln!("{}", slow_query_line(ms, trace_id, statement));
        }
    }
    let mut attrs: Vec<(&'static str, String)> = Vec::new();
    if let Some(statement) = plan.statement {
        attrs.push(("statement", statement));
    }
    if let Response::QutPartial(p) = response {
        let t = &p.stats.phases;
        for (key, ms) in [
            ("index_build_ms", t.index_build_ms),
            ("voting_ms", t.voting_ms),
            ("segmentation_ms", t.segmentation_ms),
            ("sampling_ms", t.sampling_ms),
            ("clustering_ms", t.clustering_ms),
        ] {
            attrs.push((key, format!("{ms:.3}")));
        }
        attrs.push(("kernel_evaluated", p.stats.kernel.evaluated.to_string()));
        attrs.push(("kernel_pruned", p.stats.kernel.pruned.to_string()));
    }
    attrs.push((
        "status",
        match response {
            Response::Error { .. } => "error".to_string(),
            _ => "ok".to_string(),
        },
    ));
    spans.record(Span {
        trace_id,
        span_id: next_id(),
        parent_span_id,
        name: plan.name.to_string(),
        start_us,
        duration_us: elapsed.as_micros() as u64,
        attrs,
    });
}

/// Process-wide time origin for locally rooted span start offsets, pinned on
/// first use so offsets within one span store are mutually comparable.
fn process_origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Answers one request against the connection's session. Named `execute`
/// because it is the execution step of [`execute_request`], which wraps it
/// with deadline enforcement and accounting.
fn execute(
    session: &mut Session<SharedEngine>,
    prepared: &mut Vec<Prepared>,
    engine: &SharedEngine,
    metrics: &ServerMetrics,
    spans: &SpanStore,
    request: Request,
) -> Response {
    match request {
        Request::Query { sql } => match traceview::sniff_trace_text(&sql) {
            // Trace inspection is answered at this serving edge: the session
            // has no span store (its executor returns empty trace frames).
            Some(TraceQuery::Traces) => {
                finish_outcome(traceview::traces_outcome(spans), false, metrics)
            }
            Some(TraceQuery::Trace(id)) => {
                finish_outcome(traceview::trace_outcome(spans, id), false, metrics)
            }
            None => match session.execute(&sql) {
                Ok(outcome) => finish_outcome(outcome, is_show_stats_text(&sql), metrics),
                Err(e) => Response::error(e.to_string()),
            },
        },
        Request::Prepare { sql } => match session.prepare(&sql) {
            Ok(handle) => {
                // Re-preparing a cached text returns the same session handle;
                // mirror that de-duplication on the wire.
                let wire = match prepared.iter().position(|&h| h == handle) {
                    Some(i) => i,
                    None => {
                        prepared.push(handle);
                        prepared.len() - 1
                    }
                };
                Response::Prepared {
                    handle: wire as u32,
                }
            }
            Err(e) => Response::error(e.to_string()),
        },
        Request::ExecutePrepared { handle, params } => {
            let Some(&session_handle) = prepared.get(handle as usize) else {
                return Response::error(format!(
                    "unknown prepared statement handle {handle} on this connection"
                ));
            };
            // Prepared trace inspection (`SHOW TRACE $1`) is intercepted like
            // its direct-text form, binding the id from the parameters.
            match session.statement(session_handle) {
                Some(Statement::ShowTraces) => {
                    return finish_outcome(traceview::traces_outcome(spans), false, metrics);
                }
                Some(Statement::ShowTrace { id }) => {
                    return match resolve_trace_id(id, &params) {
                        Ok(id) => {
                            finish_outcome(traceview::trace_outcome(spans, id), false, metrics)
                        }
                        Err(message) => Response::error(message),
                    };
                }
                _ => {}
            }
            let show_stats = matches!(
                session.statement(session_handle),
                Some(Statement::ShowStats)
            );
            match session.execute_prepared(session_handle, &params) {
                Ok(outcome) => finish_outcome(outcome, show_stats, metrics),
                Err(e) => Response::error(e.to_string()),
            }
        }
        Request::Ingest {
            dataset,
            trajectories,
        } => {
            let n = trajectories.len() as u64;
            let loaded = engine.with_write(|e| {
                if matches!(
                    e.dataset_info(&dataset),
                    Err(EngineError::UnknownDataset(_))
                ) {
                    e.create_dataset(&dataset)?;
                }
                e.load_trajectories(&dataset, trajectories)
            });
            match loaded {
                Ok(()) => Response::Command(CommandStatus {
                    tag: CommandTag::Ingest,
                    affected: n,
                }),
                Err(e) => Response::error(e.to_string()),
            }
        }
        Request::QutPartial {
            dataset,
            owned_start_ms,
            owned_end_ms,
            wi,
            we,
            overrides,
        } => match owned_slice(owned_start_ms, owned_end_ms) {
            Err(message) => Response::error(message),
            Ok(owned) => {
                let w = window(wi, we);
                match engine.with_read(|e| shard::qut_partial(e, &dataset, &owned, &w, overrides)) {
                    Ok(partial) => Response::QutPartial(partial),
                    Err(e) => Response::error(e.to_string()),
                }
            }
        },
        Request::RangePartial {
            dataset,
            owned_start_ms,
            owned_end_ms,
            wi,
            we,
        } => match owned_slice(owned_start_ms, owned_end_ms) {
            Err(message) => Response::error(message),
            Ok(owned) => {
                let w = window(wi, we);
                match engine.with_read(|e| e.owned_range_count(&dataset, &owned, &w)) {
                    Ok(n) => Response::Count(n as u64),
                    Err(e) => Response::error(e.to_string()),
                }
            }
        },
        Request::GatherTrajectories {
            dataset,
            owned_start_ms,
            owned_end_ms,
        } => match owned_slice(owned_start_ms, owned_end_ms) {
            Err(message) => Response::error(message),
            Ok(owned) => {
                match engine.with_read(|e| shard::gather_trajectories(e, &dataset, &owned)) {
                    Ok(trajectories) => Response::Trajectories(trajectories),
                    Err(e) => Response::error(e.to_string()),
                }
            }
        },
        Request::InfoPartial {
            dataset,
            owned_start_ms,
            owned_end_ms,
        } => match owned_slice(owned_start_ms, owned_end_ms) {
            Err(message) => Response::error(message),
            Ok(owned) => match engine.with_read(|e| shard::info_partial(e, &dataset, &owned)) {
                Ok(info) => Response::InfoPartial(info),
                Err(e) => Response::error(e.to_string()),
            },
        },
    }
}

/// Validates an ownership slice from the wire without panicking on inverted
/// bounds; the error is the message for a [`Response::Error`].
fn owned_slice(start_ms: i64, end_ms: i64) -> Result<OwnedSlice, String> {
    if start_ms > end_ms {
        return Err(format!(
            "invalid ownership slice: start {start_ms} exceeds end {end_ms}"
        ));
    }
    Ok(OwnedSlice::new(start_ms, end_ms))
}

/// Clamps a possibly-inverted window exactly as the SQL executor does, so the
/// shard request path and the single-node statement path agree on degenerate
/// inputs.
fn window(wi: i64, we: i64) -> TimeInterval {
    TimeInterval::new(Timestamp(wi), Timestamp(we.max(wi)))
}

/// Wraps an outcome as a response, appending the `server` scope to
/// `SHOW STATS` results on the way out and restoring the deterministic
/// (scope, metric) row order the statement guarantees.
fn finish_outcome(outcome: QueryOutcome, show_stats: bool, metrics: &ServerMetrics) -> Response {
    match outcome {
        QueryOutcome::Rows { mut frame, stats } => {
            if show_stats {
                for (metric, value) in metrics.rows() {
                    push_stat(&mut frame, "server", &metric, value);
                }
                sort_stats_rows(&mut frame);
            }
            Response::Rows { frame, stats }
        }
        QueryOutcome::Command(status) => Response::Command(status),
    }
}

/// Resolves the trace id of a prepared `SHOW TRACE` statement against the
/// execution's bound parameters.
fn resolve_trace_id(id: &Scalar, params: &[Value]) -> Result<i64, String> {
    let value = match id {
        Scalar::Lit(v) => v.clone(),
        Scalar::Param(n) => params.get(n.saturating_sub(1)).cloned().ok_or_else(|| {
            format!(
                "SHOW TRACE references ${n} but got {} parameters",
                params.len()
            )
        })?,
    };
    match value {
        Value::Int(i) => Ok(i),
        other => Err(format!(
            "SHOW TRACE expects an integer trace id, got {other:?}"
        )),
    }
}

/// Pull-based collector contributing the engine's aggregated stats to every
/// scrape: engine shape (`hermes_engine_*`), cumulative clustering phase
/// work, buffer-pool and durability counters (`hermes_storage_*`), and the
/// executor queue depth (`hermes_exec_*`).
fn collect_engine_samples(engine: &SharedEngine, out: &mut Vec<Sample>) {
    let (stats, queue_depth) = engine.with_read(|e| (e.stats(), e.executor().queue_depth()));
    let gauge = |name, help, v: u64| Sample {
        name,
        help,
        labels: Vec::new(),
        value: SampleValue::Gauge(v),
    };
    let counter = |name, help, v: u64| Sample {
        name,
        help,
        labels: Vec::new(),
        value: SampleValue::Counter(v),
    };
    out.push(gauge(
        "hermes_engine_datasets",
        "Registered datasets",
        stats.datasets as u64,
    ));
    out.push(gauge(
        "hermes_engine_indexed_datasets",
        "Datasets with a built ReTraTree",
        stats.indexed_datasets as u64,
    ));
    out.push(gauge(
        "hermes_engine_indexed_partitions",
        "Level-4 partitions across every built index",
        stats.indexed_partitions as u64,
    ));
    out.push(gauge(
        "hermes_engine_stored_records",
        "Sub-trajectory records stored across every built index",
        stats.stored_records as u64,
    ));
    out.push(gauge(
        "hermes_engine_threads",
        "Intra-query compute threads the engine currently uses",
        stats.threads as u64,
    ));
    for (phase, ms) in [
        ("index_build", stats.phases.index_build_ms),
        ("voting", stats.phases.voting_ms),
        ("segmentation", stats.phases.segmentation_ms),
        ("sampling", stats.phases.sampling_ms),
        ("clustering", stats.phases.clustering_ms),
    ] {
        out.push(Sample {
            name: "hermes_engine_phase_ms_total",
            help: "Cumulative S2T pipeline phase compute milliseconds",
            labels: vec![("phase", phase.to_string())],
            value: SampleValue::Counter(ms),
        });
    }
    out.push(counter(
        "hermes_engine_kernel_evaluated_total",
        "Voting-kernel candidate pairs evaluated exactly",
        stats.kernel_evaluated,
    ));
    out.push(counter(
        "hermes_engine_kernel_pruned_total",
        "Voting-kernel candidate pairs rejected by a distance lower bound",
        stats.kernel_pruned,
    ));
    out.push(counter(
        "hermes_storage_buffer_hits_total",
        "Buffer-pool page hits summed over every index",
        stats.buffer.hits,
    ));
    out.push(counter(
        "hermes_storage_buffer_misses_total",
        "Buffer-pool page misses summed over every index",
        stats.buffer.misses,
    ));
    out.push(counter(
        "hermes_storage_buffer_evictions_total",
        "Buffer-pool evictions summed over every index",
        stats.buffer.evictions,
    ));
    out.push(gauge(
        "hermes_storage_snapshot_bytes",
        "Size in bytes of the newest snapshot file",
        stats.snapshot_bytes,
    ));
    out.push(gauge(
        "hermes_storage_wal_bytes",
        "Current write-ahead-log size in bytes",
        stats.wal_bytes,
    ));
    out.push(gauge(
        "hermes_storage_last_checkpoint_ms",
        "Wall-clock milliseconds of the most recent checkpoint",
        stats.last_checkpoint_ms,
    ));
    out.push(gauge(
        "hermes_exec_queue_depth",
        "Fork-join jobs queued on the intra-query thread pool",
        queue_depth as u64,
    ));
}

/// True when `sql` is a `SHOW STATS` statement (the only statement whose
/// result the server augments), without paying for a parse.
fn is_show_stats_text(sql: &str) -> bool {
    let mut words = sql.trim().trim_end_matches(';').split_whitespace();
    matches!(
        (words.next(), words.next(), words.next()),
        (Some(a), Some(b), None)
            if a.eq_ignore_ascii_case("show") && b.eq_ignore_ascii_case("stats")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn show_stats_detection() {
        assert!(is_show_stats_text("SHOW STATS;"));
        assert!(is_show_stats_text("  show   stats  "));
        assert!(!is_show_stats_text("SHOW DATASETS;"));
        assert!(!is_show_stats_text("SELECT INFO(show);"));
    }
}
