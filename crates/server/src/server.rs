//! The TCP server: a `std::net`/`std::thread` accept loop giving every
//! connection its own [`Session`] over one [`SharedEngine`].
//!
//! Concurrency model: thread-per-connection behind a configurable cap. Each
//! connection thread owns a session (and thus its own prepared-statement
//! cache) whose backend is the shared engine — read statements execute in
//! parallel under the engine's read lock while `BUILD INDEX`, DDL and ingest
//! serialize through the write lock. Nothing here is async: the workload is
//! long-running analytical queries, where a blocked thread is the cheap part.

use crate::metrics::ServerMetrics;
use crate::protocol::{
    read_handshake, read_request, write_handshake, write_response, Request, Response,
};
use crate::shard;
use hermes_core::{EngineError, SharedEngine};
use hermes_retratree::OwnedSlice;
use hermes_sql::{
    push_stat, CommandStatus, CommandTag, Prepared, QueryOutcome, Session, Statement,
};
use hermes_trajectory::{TimeInterval, Timestamp};
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Most simultaneous connections admitted; further clients receive an
    /// error response to their first request and are disconnected.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
        }
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    engine: SharedEngine,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
    /// Live connection sockets, so [`ServerHandle::kill`] can cut sessions
    /// mid-flight (simulating a crashed shard in tests).
    conns: Arc<Mutex<Vec<(u64, TcpStream)>>>,
}

impl Server {
    /// Binds a listener (port 0 picks an ephemeral port) over an engine.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: SharedEngine,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            engine,
            config,
            metrics: Arc::new(ServerMetrics::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's metric counters.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Runs the accept loop on the calling thread until shut down.
    pub fn run(self) -> io::Result<()> {
        let mut next_conn_id: u64 = 0;
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                // Transient accept failures (EMFILE, aborted handshakes)
                // must not take the server down.
                Err(_) => continue,
            };
            let active = self.metrics.connections_active.load(Ordering::Relaxed);
            if active >= self.config.max_connections as u64 {
                self.metrics
                    .connections_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let max_connections = self.config.max_connections;
                thread::spawn(move || reject_connection(stream, max_connections));
                continue;
            }
            self.metrics
                .connections_accepted
                .fetch_add(1, Ordering::Relaxed);
            self.metrics
                .connections_active
                .fetch_add(1, Ordering::Relaxed);
            let conn_id = next_conn_id;
            next_conn_id += 1;
            if let Ok(clone) = stream.try_clone() {
                self.conns.lock().unwrap().push((conn_id, clone));
            }
            let engine = self.engine.clone();
            let metrics = Arc::clone(&self.metrics);
            let conns = Arc::clone(&self.conns);
            thread::spawn(move || {
                let _ = handle_connection(stream, engine, &metrics);
                metrics.connections_active.fetch_sub(1, Ordering::Relaxed);
                conns.lock().unwrap().retain(|(id, _)| *id != conn_id);
            });
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread, returning a handle that
    /// shuts the server down when asked (or dropped).
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let metrics = self.metrics();
        let shutdown = Arc::clone(&self.shutdown);
        let engine = self.engine.clone();
        let conns = Arc::clone(&self.conns);
        let thread = thread::spawn(move || {
            let _ = self.run();
        });
        Ok(ServerHandle {
            addr,
            metrics,
            shutdown,
            engine,
            conns,
            thread: Some(thread),
        })
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
    engine: SharedEngine,
    conns: Arc<Mutex<Vec<(u64, TcpStream)>>>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metric counters.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A handle to the engine the server serves (e.g. to preload data).
    pub fn engine(&self) -> SharedEngine {
        self.engine.clone()
    }

    /// Stops accepting connections and joins the accept loop. Connections
    /// already in a session run until their client disconnects.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Hard stop: like [`ServerHandle::shutdown`] but also severs every live
    /// connection socket, so peers holding pooled connections observe the
    /// failure immediately — the closest in-process equivalent of killing the
    /// shard process, used by the multi-shard failure tests.
    pub fn kill(mut self) {
        for (_, stream) in self.conns.lock().unwrap().iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        self.stop();
    }

    fn stop(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Turns away a connection over the cap. The client's first request is read
/// (with a timeout, so a silent client cannot stall the accept loop) before
/// the error response goes out — answering before the request arrives would
/// race the client's write against the close and can surface as a connection
/// reset instead of the capacity message.
fn reject_connection(stream: TcpStream, max_connections: usize) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    let Ok(mut reader) = stream.try_clone().map(BufReader::new) else {
        return;
    };
    let mut writer = BufWriter::new(stream);
    // Complete the preamble exchange so the client reaches its first request,
    // then turn that request away.
    if write_handshake(&mut writer).is_err() || read_handshake(&mut reader).is_err() {
        return;
    }
    let _ = read_request(&mut reader);
    let _ = write_response(
        &mut writer,
        &Response::Error {
            message: format!("server at connection capacity ({max_connections} active)"),
        },
    );
}

/// Per-connection request loop: read a request, answer it through the
/// connection's session, record metrics, repeat until the client hangs up.
fn handle_connection(
    stream: TcpStream,
    engine: SharedEngine,
    metrics: &ServerMetrics,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // Preamble: the server speaks first, then verifies the client's answer.
    // An incompatible peer gets a clean error response before the close.
    write_handshake(&mut writer)?;
    if let Err(e) = read_handshake(&mut reader) {
        metrics.query_errors.fetch_add(1, Ordering::Relaxed);
        let _ = write_response(
            &mut writer,
            &Response::Error {
                message: e.to_string(),
            },
        );
        return Ok(());
    }

    let mut session: Session<SharedEngine> = Session::new(engine.clone());
    // Wire handles are indexes into this connection-private table, so one
    // connection can never execute (or even see) another's statements.
    let mut prepared: Vec<Prepared> = Vec::new();

    loop {
        let (request, n_in) = match read_request(&mut reader) {
            Ok(v) => v,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // A malformed frame leaves the stream unparseable: report and
                // drop the connection rather than guessing at a resync point.
                metrics.query_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        metrics.bytes_in.fetch_add(n_in, Ordering::Relaxed);

        let started = Instant::now();
        let response = answer(&mut session, &mut prepared, &engine, metrics, request);
        metrics.latency.record(started.elapsed());
        match &response {
            Response::Error { .. } => metrics.query_errors.fetch_add(1, Ordering::Relaxed),
            _ => metrics.queries_served.fetch_add(1, Ordering::Relaxed),
        };
        let n_out = match write_response(&mut writer, &response) {
            Ok(n) => n,
            // An over-cap result frame is rejected before any byte hits the
            // wire, so the stream is still in sync: tell the client why
            // instead of silently dropping the connection.
            Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
                metrics.query_errors.fetch_add(1, Ordering::Relaxed);
                write_response(
                    &mut writer,
                    &Response::Error {
                        message: format!("result too large for the wire protocol: {e}"),
                    },
                )?
            }
            Err(e) => return Err(e),
        };
        metrics.bytes_out.fetch_add(n_out, Ordering::Relaxed);
    }
}

fn answer(
    session: &mut Session<SharedEngine>,
    prepared: &mut Vec<Prepared>,
    engine: &SharedEngine,
    metrics: &ServerMetrics,
    request: Request,
) -> Response {
    match request {
        Request::Query { sql } => match session.execute(&sql) {
            Ok(outcome) => finish_outcome(outcome, is_show_stats_text(&sql), metrics),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::Prepare { sql } => match session.prepare(&sql) {
            Ok(handle) => {
                // Re-preparing a cached text returns the same session handle;
                // mirror that de-duplication on the wire.
                let wire = match prepared.iter().position(|&h| h == handle) {
                    Some(i) => i,
                    None => {
                        prepared.push(handle);
                        prepared.len() - 1
                    }
                };
                Response::Prepared {
                    handle: wire as u32,
                }
            }
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::ExecutePrepared { handle, params } => {
            let Some(&session_handle) = prepared.get(handle as usize) else {
                return Response::Error {
                    message: format!(
                        "unknown prepared statement handle {handle} on this connection"
                    ),
                };
            };
            let show_stats = matches!(
                session.statement(session_handle),
                Some(Statement::ShowStats)
            );
            match session.execute_prepared(session_handle, &params) {
                Ok(outcome) => finish_outcome(outcome, show_stats, metrics),
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::Ingest {
            dataset,
            trajectories,
        } => {
            let n = trajectories.len() as u64;
            let loaded = engine.with_write(|e| {
                if matches!(
                    e.dataset_info(&dataset),
                    Err(EngineError::UnknownDataset(_))
                ) {
                    e.create_dataset(&dataset)?;
                }
                e.load_trajectories(&dataset, trajectories)
            });
            match loaded {
                Ok(()) => Response::Command(CommandStatus {
                    tag: CommandTag::Ingest,
                    affected: n,
                }),
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::QutPartial {
            dataset,
            owned_start_ms,
            owned_end_ms,
            wi,
            we,
            overrides,
        } => match owned_slice(owned_start_ms, owned_end_ms) {
            Err(message) => Response::Error { message },
            Ok(owned) => {
                let w = window(wi, we);
                match engine.with_read(|e| shard::qut_partial(e, &dataset, &owned, &w, overrides)) {
                    Ok(partial) => Response::QutPartial(partial),
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
        },
        Request::RangePartial {
            dataset,
            owned_start_ms,
            owned_end_ms,
            wi,
            we,
        } => match owned_slice(owned_start_ms, owned_end_ms) {
            Err(message) => Response::Error { message },
            Ok(owned) => {
                let w = window(wi, we);
                match engine.with_read(|e| e.owned_range_count(&dataset, &owned, &w)) {
                    Ok(n) => Response::Count(n as u64),
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
        },
        Request::GatherTrajectories {
            dataset,
            owned_start_ms,
            owned_end_ms,
        } => match owned_slice(owned_start_ms, owned_end_ms) {
            Err(message) => Response::Error { message },
            Ok(owned) => {
                match engine.with_read(|e| shard::gather_trajectories(e, &dataset, &owned)) {
                    Ok(trajectories) => Response::Trajectories(trajectories),
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
        },
        Request::InfoPartial {
            dataset,
            owned_start_ms,
            owned_end_ms,
        } => match owned_slice(owned_start_ms, owned_end_ms) {
            Err(message) => Response::Error { message },
            Ok(owned) => match engine.with_read(|e| shard::info_partial(e, &dataset, &owned)) {
                Ok(info) => Response::InfoPartial(info),
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
        },
    }
}

/// Validates an ownership slice from the wire without panicking on inverted
/// bounds; the error is the message for a [`Response::Error`].
fn owned_slice(start_ms: i64, end_ms: i64) -> Result<OwnedSlice, String> {
    if start_ms > end_ms {
        return Err(format!(
            "invalid ownership slice: start {start_ms} exceeds end {end_ms}"
        ));
    }
    Ok(OwnedSlice::new(start_ms, end_ms))
}

/// Clamps a possibly-inverted window exactly as the SQL executor does, so the
/// shard request path and the single-node statement path agree on degenerate
/// inputs.
fn window(wi: i64, we: i64) -> TimeInterval {
    TimeInterval::new(Timestamp(wi), Timestamp(we.max(wi)))
}

/// Wraps an outcome as a response, appending the `server` scope to
/// `SHOW STATS` results on the way out.
fn finish_outcome(outcome: QueryOutcome, show_stats: bool, metrics: &ServerMetrics) -> Response {
    match outcome {
        QueryOutcome::Rows { mut frame, stats } => {
            if show_stats {
                for (metric, value) in metrics.rows() {
                    push_stat(&mut frame, "server", &metric, value);
                }
            }
            Response::Rows { frame, stats }
        }
        QueryOutcome::Command(status) => Response::Command(status),
    }
}

/// True when `sql` is a `SHOW STATS` statement (the only statement whose
/// result the server augments), without paying for a parse.
fn is_show_stats_text(sql: &str) -> bool {
    let mut words = sql.trim().trim_end_matches(';').split_whitespace();
    matches!(
        (words.next(), words.next(), words.next()),
        (Some(a), Some(b), None)
            if a.eq_ignore_ascii_case("show") && b.eq_ignore_ascii_case("stats")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn show_stats_detection() {
        assert!(is_show_stats_text("SHOW STATS;"));
        assert!(is_show_stats_text("  show   stats  "));
        assert!(!is_show_stats_text("SHOW DATASETS;"));
        assert!(!is_show_stats_text("SELECT INFO(show);"));
    }
}
