//! Shard-side answers to the coordinator's partial requests.
//!
//! When a dataset is split across shards by temporal ownership slice (see
//! `docs/SHARDING.md`), each shard answers only the sub-chunks / trajectories
//! it *owns* — the coordinator reassembles the partials into the exact
//! single-node answer. These helpers compute the per-shard shares from the
//! engine's public APIs; routing and reassembly live in `hermes-coord`.

use crate::protocol::PartialInfo;
use hermes_core::{EngineError, HermesEngine};
use hermes_retratree::{OwnedSlice, QutParams, QutPartial};
use hermes_s2t::S2TParams;
use hermes_trajectory::{TimeInterval, Trajectory};

/// Answers [`crate::protocol::Request::QutPartial`]: the owned share of
/// `QUT(W)` with the full (un-clipped) window and, when given, the query's
/// `(τ, δ, t)` overrides on top of the tree's indexing-time S2T parameters —
/// exactly how the single-node QUT path builds its parameters. The merge
/// fields stay at their defaults because merging happens at the coordinator.
pub fn qut_partial(
    engine: &HermesEngine,
    dataset: &str,
    owned: &OwnedSlice,
    window: &TimeInterval,
    overrides: Option<(f64, f64, i64)>,
) -> Result<QutPartial, EngineError> {
    let base = engine.tree(dataset)?.params().s2t.clone();
    let s2t = match overrides {
        Some((tau, delta, min_duration_ms)) => S2TParams {
            tau,
            delta,
            min_duration_ms,
            ..base
        },
        None => base,
    };
    let params = QutParams {
        s2t,
        ..QutParams::default()
    };
    engine.run_qut_partial(dataset, owned, window, &params)
}

/// Answers [`crate::protocol::Request::GatherTrajectories`]: the raw
/// trajectories whose first sample falls inside the ownership slice. With
/// boundary-spanning trajectories ingested to every intersecting shard, the
/// gather shares of a slice partition are disjoint and their union is the
/// full dataset.
pub fn gather_trajectories(
    engine: &HermesEngine,
    dataset: &str,
    owned: &OwnedSlice,
) -> Result<Vec<Trajectory>, EngineError> {
    Ok(engine
        .trajectories(dataset)?
        .iter()
        .filter(|t| owned.contains(t.start_time()))
        .cloned()
        .collect())
}

/// Answers [`crate::protocol::Request::InfoPartial`]: counts over the owned
/// trajectories plus the level-3 entries of the owned sub-chunks, so the
/// coordinator's sums reproduce the single-node `INFO` numbers.
pub fn info_partial(
    engine: &HermesEngine,
    dataset: &str,
    owned: &OwnedSlice,
) -> Result<PartialInfo, EngineError> {
    let mut info = PartialInfo {
        trajectories: 0,
        points: 0,
        lifespan: None,
        indexed: false,
        cluster_entries: 0,
    };
    for t in engine
        .trajectories(dataset)?
        .iter()
        .filter(|t| owned.contains(t.start_time()))
    {
        info.trajectories += 1;
        info.points += t.points().len() as u64;
        let l = t.lifespan();
        info.lifespan = Some(match info.lifespan {
            Some((a, b)) => (a.min(l.start.millis()), b.max(l.end.millis())),
            None => (l.start.millis(), l.end.millis()),
        });
    }
    if let Ok(tree) = engine.tree(dataset) {
        info.indexed = true;
        info.cluster_entries = tree
            .chunks()
            .flat_map(|c| c.subchunks.iter())
            .filter(|sc| owned.contains(sc.interval.start))
            .map(|sc| sc.num_clusters() as u64)
            .sum();
    }
    Ok(info)
}
