//! Serving-edge implementation of `SHOW TRACES` / `SHOW TRACE <id>`.
//!
//! The SQL executor returns empty frames for these statements — an embedded
//! session has no span store — so the server and the coordinator intercept
//! them before the session sees them and answer from their in-process
//! [`SpanStore`]. Both edges share the detection and frame-building logic
//! here, which keeps the two answers schema-identical.

use hermes_obs::{Span, SpanStore};
use hermes_sql::{push_trace_span, push_trace_summary, trace_frame, traces_frame, QueryOutcome};

/// A trace-inspection statement recognized at the serving edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceQuery {
    /// `SHOW TRACES;`
    Traces,
    /// `SHOW TRACE <id>;`
    Trace(i64),
}

/// Detects `SHOW TRACES` / `SHOW TRACE <id>` statement text without paying
/// for a parse (the trace-statement sibling of `is_show_stats_text`).
/// Returns `None` for anything else — including `SHOW TRACE $1`, which must
/// go through a prepared statement to bind its placeholder.
pub fn sniff_trace_text(sql: &str) -> Option<TraceQuery> {
    let mut words = sql.trim().trim_end_matches(';').split_whitespace();
    let (Some(a), Some(b)) = (words.next(), words.next()) else {
        return None;
    };
    if !a.eq_ignore_ascii_case("show") {
        return None;
    }
    match (b, words.next(), words.next()) {
        (t, None, _) if t.eq_ignore_ascii_case("traces") => Some(TraceQuery::Traces),
        (t, Some(id), None) if t.eq_ignore_ascii_case("trace") => {
            id.parse::<i64>().ok().map(TraceQuery::Trace)
        }
        _ => None,
    }
}

/// Answers `SHOW TRACES` from the span store: one row per locally recorded
/// trace, newest first.
pub fn traces_outcome(spans: &SpanStore) -> QueryOutcome {
    let mut frame = traces_frame();
    for s in spans.recent() {
        push_trace_summary(
            &mut frame,
            s.trace_id as i64,
            &s.root,
            s.spans as i64,
            s.duration_us as i64,
        );
    }
    QueryOutcome::rows(frame)
}

/// Answers `SHOW TRACE <id>`: the trace's spans in start order, attributes
/// rendered as comma-joined `key=value` pairs. An unknown id yields an empty
/// frame, not an error — spans are ring-buffered and expire silently.
pub fn trace_outcome(spans: &SpanStore, id: i64) -> QueryOutcome {
    let mut frame = trace_frame();
    for span in spans.trace(id as u64) {
        let attrs = render_attrs(&span);
        push_trace_span(
            &mut frame,
            span.span_id as i64,
            span.parent_span_id as i64,
            &span.name,
            span.start_us as i64,
            span.duration_us as i64,
            &attrs,
        );
    }
    QueryOutcome::rows(frame)
}

fn render_attrs(span: &Span) -> String {
    let parts: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_obs::QueryTrace;
    use hermes_sql::Value;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn sniffs_only_trace_statements() {
        assert_eq!(sniff_trace_text("SHOW TRACES;"), Some(TraceQuery::Traces));
        assert_eq!(
            sniff_trace_text("  show   trace   42  "),
            Some(TraceQuery::Trace(42))
        );
        assert_eq!(sniff_trace_text("SHOW TRACE $1;"), None);
        assert_eq!(sniff_trace_text("SHOW STATS;"), None);
        assert_eq!(sniff_trace_text("SELECT INFO(traces);"), None);
        assert_eq!(sniff_trace_text("SHOW TRACE 1 2;"), None);
    }

    #[test]
    fn outcomes_render_the_span_tree() {
        let store = Arc::new(SpanStore::default());
        let trace = QueryTrace::root(Arc::clone(&store));
        let (child, _ctx) = trace.child_ctx();
        trace.record_child(
            child,
            "shard:early".to_string(),
            Instant::now(),
            Duration::from_micros(250),
            vec![("voting_ms", "1.5".to_string())],
        );
        trace.finish_root("query".to_string(), Duration::from_micros(900), vec![]);

        let summary = traces_outcome(&store);
        let frame = summary.frame().unwrap();
        assert_eq!(frame.num_rows(), 1);
        assert_eq!(
            frame.rows().next().unwrap()[0],
            &Value::Int(trace.trace_id() as i64)
        );

        let tree = trace_outcome(&store, trace.trace_id() as i64);
        let frame = tree.frame().unwrap();
        assert_eq!(frame.num_rows(), 2);
        let rows: Vec<Vec<&Value>> = frame.rows().collect();
        // Exactly one root (parent = 0), and the child's attributes carry the
        // rendered phase timing.
        let roots: Vec<_> = rows.iter().filter(|r| r[1] == &Value::Int(0)).collect();
        assert_eq!(roots.len(), 1);
        let child_row = rows
            .iter()
            .find(|r| r[2] == &Value::Text("shard:early".to_string()))
            .unwrap();
        assert_eq!(child_row[5], &Value::Text("voting_ms=1.5".to_string()));

        // Unknown ids answer with an empty frame, not an error.
        let missing = trace_outcome(&store, 1);
        assert_eq!(missing.frame().unwrap().num_rows(), 0);
    }
}
