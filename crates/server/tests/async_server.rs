//! End-to-end tests of the readiness-driven server core: request
//! pipelining, snapshot-epoch reads racing `BUILD INDEX`, per-request
//! deadlines, admission-control backpressure and recovery, and the
//! stalled-client regression.

use hermes_core::SharedEngine;
use hermes_server::{
    ClientError, ErrorCode, HermesClient, Request, Response, Server, ServerConfig, ServerCore,
    ServerHandle,
};
use hermes_sql::Value;
use hermes_trajectory::{Point, Timestamp, Trajectory};
use std::thread;
use std::time::{Duration, Instant};

fn traj(id: u64, y: f64, t0: i64) -> Trajectory {
    Trajectory::new(
        id,
        id,
        (0..30)
            .map(|i| Point::new(i as f64 * 100.0, y, Timestamp(t0 + i as i64 * 60_000)))
            .collect(),
    )
    .unwrap()
}

fn dataset() -> Vec<Trajectory> {
    (0..18)
        .map(|i| traj(i, i as f64 * 10.0, (i as i64 % 2) * 3_600_000))
        .collect()
}

fn spawn_server(config: ServerConfig) -> ServerHandle {
    let engine = SharedEngine::default();
    engine.with_write(|e| {
        e.create_dataset("flights").unwrap();
        e.load_trajectories("flights", dataset()).unwrap();
    });
    Server::bind("127.0.0.1:0", engine, config)
        .unwrap()
        .spawn()
        .unwrap()
}

const BUILD: &str = "BUILD INDEX ON flights WITH CHUNK 4 HOURS SIGMA 60 EPSILON 400;";
const QUT: &str = "SELECT QUT(flights, 0, 1800000, 0.35, 0.05, 120000, 400, 1800000);";

#[test]
fn pipelined_prepared_statements_interleave_on_one_connection() {
    let server = spawn_server(ServerConfig {
        core: ServerCore::Event,
        ..ServerConfig::default()
    });
    let mut client = HermesClient::connect(server.addr()).unwrap();
    client.query(BUILD).unwrap();
    let range = client.prepare("SELECT RANGE(flights, $1, $2);").unwrap();
    let info = client.prepare("SELECT INFO(flights);").unwrap();

    // Burst a mixed pipeline of prepared executions and plain queries
    // without reading a single response, then drain: responses must come
    // back in request order, each with its own correct shape.
    const ROUNDS: usize = 25;
    for i in 0..ROUNDS {
        client
            .send(&Request::ExecutePrepared {
                handle: range.0,
                params: vec![Value::Int(0), Value::Int(900_000 + i as i64 * 10_000)],
            })
            .unwrap();
        client
            .send(&Request::ExecutePrepared {
                handle: info.0,
                params: vec![],
            })
            .unwrap();
        client
            .send(&Request::Query {
                sql: "SHOW DATASETS;".into(),
            })
            .unwrap();
    }
    for _ in 0..ROUNDS {
        let range_resp = client.receive().unwrap();
        let Response::Rows { frame, .. } = range_resp else {
            panic!("RANGE answered {range_resp:?}");
        };
        assert!(frame.get(0, "sub_trajectories_in_window").is_some());
        let info_resp = client.receive().unwrap();
        let Response::Rows { frame, .. } = info_resp else {
            panic!("INFO answered {info_resp:?}");
        };
        assert_eq!(frame.get(0, "trajectories"), Some(&Value::Int(18)));
        let show_resp = client.receive().unwrap();
        let Response::Rows { frame, .. } = show_resp else {
            panic!("SHOW answered {show_resp:?}");
        };
        assert_eq!(
            frame.get(0, "dataset"),
            Some(&Value::Text("flights".into()))
        );
    }
    let served = server.metrics().queries_served.get();
    assert!(served >= 3 * ROUNDS as u64, "served {served}");
    server.shutdown();
}

#[test]
fn reads_pin_the_published_epoch_while_an_index_builds() {
    let server = spawn_server(ServerConfig {
        core: ServerCore::Event,
        workers: 4,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let engine = server.engine();

    let mut client = HermesClient::connect(addr).unwrap();
    client.query(BUILD).unwrap();
    let baseline = client.query(QUT).unwrap();
    let baseline_frame = baseline.expect_frame("QUT").clone();
    assert!(baseline_frame.num_rows() >= 1);

    // An artificially slowed writer: holds the commit mutex (exactly what a
    // big BUILD INDEX does) for 600ms, then republishes.
    let writer = thread::spawn(move || {
        engine.with_write(|_| thread::sleep(Duration::from_millis(600)));
    });
    thread::sleep(Duration::from_millis(100)); // let the writer take the lock

    // Reads during the build must answer from the pinned epoch: identical
    // frames, and far sooner than the writer's hold time.
    for _ in 0..3 {
        let started = Instant::now();
        let mid_build = client.query(QUT).unwrap();
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_millis(400),
            "read blocked behind the writer for {elapsed:?}"
        );
        assert_eq!(
            mid_build.expect_frame("QUT"),
            &baseline_frame,
            "mid-build read must be bit-identical to the pre-build epoch"
        );
    }
    writer.join().unwrap();

    // After the writer publishes, SHOW STATS reports the advanced epoch.
    let stats = client.query("SHOW STATS;").unwrap();
    let frame = stats.expect_frame("SHOW STATS");
    let epoch = frame
        .rows()
        .find(|r| r[0].as_str() == Some("server") && r[1].as_str() == Some("epoch"))
        .and_then(|r| r[2].as_i64())
        .expect("server/epoch row");
    assert!(epoch >= 2, "epoch {epoch} after ingest + builds");
    server.shutdown();
}

#[test]
fn deadline_overrun_is_a_typed_error() {
    let server = spawn_server(ServerConfig {
        core: ServerCore::Event,
        deadline_ms: Some(150),
        workers: 2,
        ..ServerConfig::default()
    });
    let engine = server.engine();

    // Hold the commit mutex longer than the deadline; a write statement
    // dispatched meanwhile serializes behind it and finishes late.
    let blocker = thread::spawn(move || {
        engine.with_write(|_| thread::sleep(Duration::from_millis(500)));
    });
    thread::sleep(Duration::from_millis(50));

    let mut client = HermesClient::connect(server.addr()).unwrap();
    let err = client.query("CREATE DATASET late;").unwrap_err();
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code, ErrorCode::Deadline, "{message}");
            assert!(message.contains("deadline"), "{message}");
        }
        other => panic!("expected a typed deadline error, got {other:?}"),
    }
    blocker.join().unwrap();
    assert!(server.metrics().deadline_misses.get() >= 1);

    // The connection survives and fast statements still answer in time.
    assert_eq!(client.query("SHOW THREADS;").unwrap().num_rows(), 1);
    server.shutdown();
}

#[test]
fn backpressure_floods_get_typed_errors_and_drain() {
    let server = spawn_server(ServerConfig {
        core: ServerCore::Event,
        workers: 1,
        max_pending: 2,
        ..ServerConfig::default()
    });
    let engine = server.engine();

    // Pin the lone worker on a slow write so pipelined requests pile up.
    let blocker = thread::spawn(move || {
        engine.with_write(|_| thread::sleep(Duration::from_millis(400)));
    });
    thread::sleep(Duration::from_millis(50));

    let mut client = HermesClient::connect(server.addr()).unwrap();
    // Request 1 is a write: it occupies the lone worker, serialized behind
    // the blocker's commit mutex. Request 2 fills the pending bound; 3..=5
    // must be refused with typed backpressure errors, in pipeline order.
    client
        .send(&Request::Query {
            sql: "CREATE DATASET flood;".into(),
        })
        .unwrap();
    for _ in 0..4 {
        client
            .send(&Request::Query {
                sql: "SHOW DATASETS;".into(),
            })
            .unwrap();
    }
    assert!(matches!(client.receive().unwrap(), Response::Command(_)));
    assert!(matches!(client.receive().unwrap(), Response::Rows { .. }));
    for i in 2..5 {
        match client.receive() {
            Err(ClientError::Server { code, message }) => {
                assert_eq!(code, ErrorCode::Backpressure, "req {i}: {message}");
                assert!(message.contains("overloaded"), "req {i}: {message}");
            }
            other => panic!("req {i}: expected backpressure, got {other:?}"),
        }
    }
    blocker.join().unwrap();
    assert_eq!(server.metrics().backpressure_rejections.get(), 3);

    // The flood over, the same connection serves normally again.
    assert_eq!(client.query("SHOW THREADS;").unwrap().num_rows(), 1);
    assert_eq!(server.metrics().connections_rejected.get(), 0);
    server.shutdown();
}

#[test]
fn stalled_client_cannot_block_build_index() {
    let server = spawn_server(ServerConfig {
        core: ServerCore::Event,
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = server.addr();

    // A client that floods queries with fat result frames and never reads a
    // byte back: its responses pile up in the server-side write buffer.
    let mut stalled = HermesClient::connect(addr).unwrap();
    stalled.query(BUILD).unwrap();
    for _ in 0..64 {
        stalled
            .send(&Request::GatherTrajectories {
                dataset: "flights".into(),
                owned_start_ms: i64::MIN,
                owned_end_ms: i64::MAX,
            })
            .unwrap();
    }
    // ... and never calls receive().

    // A healthy connection must still get its BUILD INDEX through promptly:
    // responding to the stalled peer is buffered socket I/O on the loop,
    // never a lock held across a write.
    let mut healthy = HermesClient::connect(addr).unwrap();
    let started = Instant::now();
    let built = healthy.query(BUILD).unwrap();
    assert_eq!(built.command().unwrap().affected, 18);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "BUILD INDEX stalled behind an unread client for {:?}",
        started.elapsed()
    );
    drop(stalled);
    server.shutdown();
}

#[test]
fn threaded_core_remains_available_and_compatible() {
    let server = spawn_server(ServerConfig {
        core: ServerCore::Threaded,
        ..ServerConfig::default()
    });
    let mut client = HermesClient::connect(server.addr()).unwrap();
    client.query(BUILD).unwrap();
    let qut = client.query(QUT).unwrap();
    assert!(qut.num_rows() >= 1);
    assert!(qut.stats().is_some());
    server.shutdown();
}
