//! End-to-end tests of the network subsystem: round trips over real TCP
//! sockets, concurrent readers racing an index build, per-connection prepared
//! statements, the connection cap and the `SHOW STATS` scopes.

use hermes_core::SharedEngine;
use hermes_server::{ClientError, HermesClient, Server, ServerConfig, ServerHandle};
use hermes_sql::{CommandTag, Value};
use hermes_trajectory::{Point, Timestamp, Trajectory};
use std::thread;

fn traj(id: u64, y: f64, t0: i64) -> Trajectory {
    Trajectory::new(
        id,
        id,
        (0..30)
            .map(|i| Point::new(i as f64 * 100.0, y, Timestamp(t0 + i as i64 * 60_000)))
            .collect(),
    )
    .unwrap()
}

fn dataset() -> Vec<Trajectory> {
    let mut trajs = Vec::new();
    for i in 0..10 {
        trajs.push(traj(i, i as f64 * 10.0, 0));
    }
    for i in 10..18 {
        trajs.push(traj(i, 50_000.0 + i as f64 * 10.0, 4 * 3_600_000));
    }
    trajs
}

fn spawn_server(config: ServerConfig) -> ServerHandle {
    let engine = SharedEngine::default();
    engine.with_write(|e| {
        e.create_dataset("flights").unwrap();
        e.load_trajectories("flights", dataset()).unwrap();
    });
    Server::bind("127.0.0.1:0", engine, config)
        .unwrap()
        .spawn()
        .unwrap()
}

const BUILD: &str = "BUILD INDEX ON flights WITH CHUNK 4 HOURS SIGMA 60 EPSILON 400;";

#[test]
fn queries_round_trip_with_typed_frames() {
    let server = spawn_server(ServerConfig::default());
    let mut client = HermesClient::connect(server.addr()).unwrap();

    let shown = client.query("SHOW DATASETS;").unwrap();
    assert_eq!(
        shown.expect_frame("SHOW DATASETS").get(0, "dataset"),
        Some(&Value::Text("flights".into()))
    );

    let info = client.query("SELECT INFO(flights);").unwrap();
    let frame = info.expect_frame("INFO");
    // Values survive the wire as their engine types, not strings.
    assert_eq!(frame.get(0, "trajectories"), Some(&Value::Int(18)));
    assert_eq!(frame.get(0, "start"), Some(&Value::Timestamp(Timestamp(0))));

    let built = client.query(BUILD).unwrap();
    let status = built.command().unwrap();
    assert_eq!(status.tag, CommandTag::BuildIndex);
    assert_eq!(status.affected, 18);

    let qut = client
        .query("SELECT QUT(flights, 0, 1800000, 0.35, 0.05, 120000, 400, 1800000);")
        .unwrap();
    assert!(qut.num_rows() >= 1);
    assert!(qut.stats().is_some(), "QuT statistics frame rides along");

    let err = client.query("SELECT INFO(nope);").unwrap_err();
    assert!(
        matches!(err, ClientError::Server { ref message, .. } if message.contains("unknown dataset"))
    );
    // The connection survives a server-side error.
    assert_eq!(client.query("SHOW DATASETS;").unwrap().num_rows(), 1);

    server.shutdown();
}

#[test]
fn concurrent_readers_while_an_index_builds() {
    let server = spawn_server(ServerConfig::default());
    let addr = server.addr();

    // Index once so readers have something to range-query.
    let mut writer = HermesClient::connect(addr).unwrap();
    writer.query(BUILD).unwrap();
    let expected = {
        let mut c = HermesClient::connect(addr).unwrap();
        let frame = c.query("SELECT RANGE(flights, 0, 1800000);").unwrap();
        frame
            .expect_frame("RANGE")
            .get(0, "sub_trajectories_in_window")
            .unwrap()
            .as_i64()
            .unwrap()
    };
    assert!(expected > 0);

    // Four reader connections hammer range queries while the writer
    // connection rebuilds the index (the write-lock path) repeatedly.
    let readers: Vec<_> = (0..4)
        .map(|_| {
            thread::spawn(move || {
                let mut client = HermesClient::connect(addr).unwrap();
                for _ in 0..15 {
                    let outcome = client.query("SELECT RANGE(flights, 0, 1800000);").unwrap();
                    let count = outcome
                        .expect_frame("RANGE")
                        .get(0, "sub_trajectories_in_window")
                        .unwrap()
                        .as_i64()
                        .unwrap();
                    assert_eq!(count, expected, "readers must never see a torn index");
                }
            })
        })
        .collect();
    for _ in 0..3 {
        let status = writer.query(BUILD).unwrap();
        assert_eq!(status.command().unwrap().affected, 18);
    }
    for r in readers {
        r.join().unwrap();
    }

    let metrics = server.metrics();
    assert!(metrics.queries_served.get() >= 4 * 15 + 4);
    server.shutdown();
}

#[test]
fn prepared_statements_are_isolated_per_connection() {
    let server = spawn_server(ServerConfig::default());
    let mut a = HermesClient::connect(server.addr()).unwrap();
    let mut b = HermesClient::connect(server.addr()).unwrap();
    a.query(BUILD).unwrap();

    let ha = a.prepare("SELECT RANGE(flights, $1, $2);").unwrap();
    let first = a
        .execute_prepared(ha, &[Value::Int(0), Value::Int(1_800_000)])
        .unwrap();
    assert_eq!(first.num_rows(), 1);
    // Timestamps bind over the wire like ints do locally.
    let typed = a
        .execute_prepared(
            ha,
            &[
                Value::Timestamp(Timestamp(0)),
                Value::Timestamp(Timestamp(1_800_000)),
            ],
        )
        .unwrap();
    assert_eq!(typed.num_rows(), 1);

    // b never prepared anything: a's handle must not resolve there.
    let err = b
        .execute_prepared(ha, &[Value::Int(0), Value::Int(1_800_000)])
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Server { ref message, .. } if message.contains("unknown prepared statement")),
        "{err}"
    );

    // b's own prepared statement works and does not disturb a's.
    let hb = b.prepare("SELECT INFO(flights);").unwrap();
    assert_eq!(b.execute_prepared(hb, &[]).unwrap().num_rows(), 1);
    assert_eq!(
        a.execute_prepared(ha, &[Value::Int(0), Value::Int(900_000)])
            .unwrap()
            .num_rows(),
        1
    );
    server.shutdown();
}

#[test]
fn connection_cap_rejects_excess_clients() {
    let server = spawn_server(ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    });
    let mut c1 = HermesClient::connect(server.addr()).unwrap();
    let mut c2 = HermesClient::connect(server.addr()).unwrap();
    // Force both connections through the accept loop before the third tries.
    c1.query("SHOW DATASETS;").unwrap();
    c2.query("SHOW DATASETS;").unwrap();

    let mut c3 = HermesClient::connect(server.addr()).unwrap();
    let err = c3.query("SHOW DATASETS;").unwrap_err();
    assert!(
        matches!(err, ClientError::Server { ref message, .. } if message.contains("capacity")),
        "{err}"
    );
    assert_eq!(server.metrics().connections_rejected.get(), 1);

    // Admitted clients keep working, and capacity frees up on disconnect.
    drop(c2);
    assert_eq!(c1.query("SHOW DATASETS;").unwrap().num_rows(), 1);
    server.shutdown();
}

#[test]
fn large_ingests_are_split_across_wire_messages() {
    let server = spawn_server(ServerConfig::default());
    let mut client = HermesClient::connect(server.addr()).unwrap();
    // ~70k points per trajectory ≈ 1.7 MB encoded; 40 of them overflow one
    // half-cap batch (32 MiB), forcing at least two Ingest requests.
    let big: Vec<Trajectory> = (0..40)
        .map(|id| {
            Trajectory::new(
                id,
                id,
                (0..70_000)
                    .map(|i| Point::new(i as f64, id as f64, Timestamp(i as i64 * 1_000)))
                    .collect(),
            )
            .unwrap()
        })
        .collect();
    assert_eq!(client.ingest("big", &big).unwrap(), 40);
    let info = client.query("SELECT INFO(big);").unwrap();
    assert_eq!(
        info.expect_frame("INFO").get(0, "trajectories"),
        Some(&Value::Int(40))
    );
    server.shutdown();
}

#[test]
fn set_threads_is_honored_over_the_wire_unchanged() {
    // No protocol change: SET/SHOW THREADS travel as ordinary Query text and
    // come back as a Command / one-row frame.
    let server = spawn_server(ServerConfig::default());
    let mut a = HermesClient::connect(server.addr()).unwrap();
    let mut b = HermesClient::connect(server.addr()).unwrap();

    let set = a.query("SET threads = 2;").unwrap();
    let status = set.command().unwrap();
    assert_eq!(status.tag, CommandTag::Set);
    assert_eq!(status.affected, 2);

    // The engine-wide setting is visible from another connection, and the
    // queries it governs still answer correctly.
    let shown = b.query("SHOW THREADS;").unwrap();
    assert_eq!(
        shown.expect_frame("SHOW THREADS").get(0, "threads"),
        Some(&Value::Int(2))
    );
    b.query(BUILD).unwrap();
    let qut = b
        .query("SELECT QUT(flights, 0, 1800000, 0.35, 0.05, 120000, 400, 1800000);")
        .unwrap();
    assert!(qut.num_rows() >= 1);

    // Rejection carries the arity-style message across the wire.
    let err = a.query("SET threads = 0;").unwrap_err();
    assert!(
        matches!(err, ClientError::Server { ref message, .. } if message.contains("positive thread count")),
        "{err:?}"
    );
    server.shutdown();
}

#[test]
fn ingest_creates_the_dataset_and_stats_report_all_scopes() {
    let server = spawn_server(ServerConfig::default());
    let mut client = HermesClient::connect(server.addr()).unwrap();

    let loaded = client.ingest("fresh", &dataset()).unwrap();
    assert_eq!(loaded, 18);
    let info = client.query("SELECT INFO(fresh);").unwrap();
    assert_eq!(
        info.expect_frame("INFO").get(0, "trajectories"),
        Some(&Value::Int(18))
    );
    client
        .query("BUILD INDEX ON fresh WITH CHUNK 4 HOURS SIGMA 60 EPSILON 400;")
        .unwrap();
    client.query("SELECT RANGE(fresh, 0, 1800000);").unwrap();

    let stats = client.query("SHOW STATS;").unwrap();
    let frame = stats.expect_frame("SHOW STATS");
    let value = |scope: &str, metric: &str| -> i64 {
        frame
            .rows()
            .find(|r| r[0].as_str() == Some(scope) && r[1].as_str() == Some(metric))
            .and_then(|r| r[2].as_i64())
            .unwrap_or_else(|| panic!("{scope}/{metric} missing"))
    };
    // Engine scope: storage + buffer counters from the satellite task.
    assert_eq!(value("engine", "indexed_datasets"), 1);
    assert!(value("engine", "indexed_partitions") > 0);
    assert!(value("engine", "buffer_hits") + value("engine", "buffer_misses") > 0);
    // Session scope: this connection parsed its statements.
    assert!(value("session", "parses") >= 3);
    // Server scope: connection and traffic counters, latency histogram.
    assert_eq!(value("server", "connections_accepted"), 1);
    assert_eq!(value("server", "connections_active"), 1);
    assert!(value("server", "queries_served") >= 4);
    assert!(value("server", "bytes_in") > 0);
    assert!(value("server", "bytes_out") > 0);
    let latency_total: i64 = frame
        .rows()
        .filter(|r| {
            r[0].as_str() == Some("server")
                && r[1].as_str().is_some_and(|m| {
                    m.starts_with("latency_us_le") || m.starts_with("latency_us_gt")
                })
        })
        .filter_map(|r| r[2].as_i64())
        .sum();
    assert!(
        latency_total >= 4,
        "every request lands in a latency bucket"
    );
    server.shutdown();
}
