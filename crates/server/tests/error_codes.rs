//! Protocol v5 error-class gate at the client layer: the one-byte
//! [`ErrorCode`] on every `Error` frame must round-trip exactly, **every**
//! possible wire byte (0..=255) must decode — unknown classes from a future
//! peer conservatively as [`ErrorCode::Query`] — and the pipelined client
//! must keep its stream bookkeeping honest: in-order responses, `Error`
//! frames as values in their slot, and [`HermesClient::is_clean`] turning
//! false the moment a stream owes responses, tears mid-frame, or receives a
//! `Capacity` goodbye.

use hermes_core::SharedEngine;
use hermes_server::protocol::{
    read_handshake, read_response, write_handshake, write_request, write_response, Request,
    Response,
};
use hermes_server::{ClientError, ErrorCode, HermesClient, Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpListener;

const ALL_CODES: [ErrorCode; 5] = [
    ErrorCode::Query,
    ErrorCode::Protocol,
    ErrorCode::Capacity,
    ErrorCode::Backpressure,
    ErrorCode::Deadline,
];

/// The encoded wire frame of an `Error` response:
/// `[len:4][kind=104][code:1][message…]`.
fn error_frame(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    write_response(
        &mut buf,
        &Response::Error {
            code,
            message: message.to_string(),
        },
    )
    .expect("encode");
    buf
}

#[test]
fn every_error_code_round_trips_bit_exactly() {
    for code in ALL_CODES {
        let buf = error_frame(code, "boom");
        assert_eq!(buf[4], 104, "Error frames carry wire kind 104");
        assert_eq!(
            buf[5], code as u8,
            "{code:?} must encode as its discriminant"
        );
        let (back, n) = read_response(&mut buf.as_slice()).expect("decode");
        assert_eq!(n as usize, buf.len());
        match back {
            Response::Error { code: got, message } => {
                assert_eq!(got, code);
                assert_eq!(message, "boom");
            }
            other => panic!("expected an Error frame, got {other:?}"),
        }
    }
}

/// Exhaustive: all 256 possible code bytes decode; the four non-default
/// classes map to themselves, everything else — including bytes minted by
/// protocol versions that do not exist yet — decodes as the conservative
/// `Query` class (relay, never retry) and re-encodes canonically as 0.
#[test]
fn every_wire_byte_decodes_and_unknown_codes_become_query() {
    let template = error_frame(ErrorCode::Query, "future says hi");
    for byte in 0u8..=255 {
        let mut buf = template.clone();
        buf[5] = byte;
        let (back, _) = read_response(&mut buf.as_slice())
            .unwrap_or_else(|e| panic!("code byte {byte} must decode: {e}"));
        let Response::Error { code, message } = back else {
            panic!("code byte {byte} decoded as a non-Error frame");
        };
        assert_eq!(message, "future says hi");
        let expected = match byte {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::Capacity,
            3 => ErrorCode::Backpressure,
            4 => ErrorCode::Deadline,
            _ => ErrorCode::Query,
        };
        assert_eq!(code, expected, "code byte {byte}");
        assert_eq!(ErrorCode::from_u8(byte), expected);
        // Canonical re-encode: the class survives, unknown bytes do not.
        let reencoded = error_frame(code, &message);
        assert_eq!(reencoded[5], expected as u8);
    }
}

/// The retry taxonomy the replica failover ladder keys on: admission and
/// deadline classes are safe to replay on another endpoint, answers are not.
#[test]
fn retryable_classes_are_exactly_the_admission_and_deadline_ones() {
    for code in ALL_CODES {
        let expected = matches!(
            code,
            ErrorCode::Capacity | ErrorCode::Backpressure | ErrorCode::Deadline
        );
        assert_eq!(code.is_retryable(), expected, "{code:?}");
    }
}

fn spawn_server() -> ServerHandle {
    let engine = SharedEngine::default();
    engine.with_write(|e| e.create_dataset("flights").unwrap());
    Server::bind("127.0.0.1:0", engine, ServerConfig::default())
        .unwrap()
        .spawn()
        .unwrap()
}

/// The pipelined half-steps against a real server: every request is written
/// before the first response is read, responses come back **in order**, an
/// `Error` frame sits as a value in its own slot without derailing the
/// batch, and the stream ends the exchange balanced and clean.
#[test]
fn pipelined_batches_answer_in_order_with_error_frames_in_their_slot() {
    let server = spawn_server();
    let mut client = HermesClient::connect(server.addr()).unwrap();
    assert!(client.is_clean());

    let batch = [
        Request::Query {
            sql: "SHOW DATASETS;".into(),
        },
        Request::Query {
            sql: "SELECT INFO(nowhere);".into(), // answered with an Error frame
        },
        Request::Query {
            sql: "SELECT INFO(flights);".into(),
        },
    ];
    let responses = client.pipeline(&batch).expect("pipelined batch");
    assert_eq!(responses.len(), 3);
    assert!(
        matches!(&responses[0], Response::Rows { .. }),
        "slot 0 must hold the SHOW DATASETS rows, got {:?}",
        responses[0]
    );
    match &responses[1] {
        Response::Error { code, message } => {
            assert_eq!(*code, ErrorCode::Query);
            assert!(
                message.contains("nowhere"),
                "the error must be the engine's own text: {message:?}"
            );
        }
        other => panic!("slot 1 must hold the Error frame, got {other:?}"),
    }
    assert!(
        matches!(&responses[2], Response::Rows { .. }),
        "slot 2 must hold the INFO rows — the Error frame must not shift \
         later answers, got {:?}",
        responses[2]
    );
    // Balanced and unpoisoned: safe to pool and to keep using.
    assert!(client.is_clean());
    client
        .query("SHOW DATASETS;")
        .expect("stream still in sync");
}

/// A stream that owes responses is not clean: `send` without `receive`
/// leaves `pending` outstanding (the hedge-loser shape) and the pool must
/// refuse it until the balance is restored.
#[test]
fn a_stream_owing_responses_is_not_clean_until_drained() {
    let server = spawn_server();
    let mut client = HermesClient::connect(server.addr()).unwrap();
    client
        .send(&Request::Query {
            sql: "SHOW DATASETS;".into(),
        })
        .expect("send");
    assert!(
        !client.is_clean(),
        "an in-flight request must mark the stream unclean"
    );
    client.receive().expect("receive");
    assert!(client.is_clean(), "a balanced stream is clean again");
}

/// A response torn mid-frame poisons the client for good: the stream
/// position is unknown, so `is_clean` stays false even after the error is
/// observed — this is the regression gate for the pool check-in leak.
#[test]
fn a_mid_frame_tear_poisons_the_connection_permanently() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let truncator = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        // The server speaks first in the handshake.
        write_handshake(&mut conn).unwrap();
        read_handshake(&mut conn).unwrap();
        // Consume the request, then answer with a torn frame: the length
        // header promises more bytes than ever arrive.
        let mut scratch = [0u8; 4096];
        let _ = conn.read(&mut scratch);
        let frame = error_frame(ErrorCode::Query, "you will never read all of me");
        conn.write_all(&frame[..frame.len() / 2]).unwrap();
        // FIN mid-frame.
    });

    let mut client = HermesClient::connect(addr).unwrap();
    let err = client.query("SHOW DATASETS;").unwrap_err();
    assert!(
        matches!(err, ClientError::Io(_) | ClientError::Protocol(_)),
        "a torn frame is a transport failure, got {err:?}"
    );
    assert!(
        !client.is_clean(),
        "a torn stream must stay poisoned — pooling it would desynchronize \
         the next caller"
    );
    truncator.join().unwrap();
}

/// A `Capacity` goodbye poisons the stream even though the frame itself
/// decodes fine: the server closes the connection behind it.
#[test]
fn a_capacity_goodbye_poisons_the_stream() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let refuser = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        write_handshake(&mut conn).unwrap();
        read_handshake(&mut conn).unwrap();
        let mut scratch = [0u8; 4096];
        let _ = conn.read(&mut scratch);
        conn.write_all(&error_frame(ErrorCode::Capacity, "connection cap reached"))
            .unwrap();
    });

    let mut client = HermesClient::connect(addr).unwrap();
    let response = client
        .exchange(&Request::Query {
            sql: "SHOW DATASETS;".into(),
        })
        .expect("the Capacity frame itself decodes");
    assert!(matches!(&response, Response::Error { code, .. } if *code == ErrorCode::Capacity));
    assert!(
        !client.is_clean(),
        "the server hangs up behind a Capacity frame; the stream must not \
         be reused"
    );
    refuser.join().unwrap();
}

/// Requests also frame cleanly — the pipelined writer puts each request on
/// the wire as one self-delimiting frame, so a batch is just concatenation.
#[test]
fn pipelined_requests_are_self_delimiting_frames() {
    let mut batch = Vec::new();
    let mut lengths = Vec::new();
    for sql in ["SHOW DATASETS;", "SELECT INFO(flights);"] {
        let n = write_request(
            &mut batch,
            &Request::Query {
                sql: sql.to_string(),
            },
        )
        .expect("encode");
        lengths.push(n as usize);
    }
    assert_eq!(batch.len(), lengths.iter().sum::<usize>());
    // Each frame's length header accounts for exactly its own tail.
    let first = u32::from_be_bytes(batch[..4].try_into().unwrap()) as usize;
    assert_eq!(4 + first, lengths[0]);
}
