//! How a [`Session`](crate::Session) reaches an engine.
//!
//! A [`EngineBackend`] hides whether the session owns exclusive access to a
//! [`HermesEngine`] (`&mut` — the single-threaded CLI and tests) or shares
//! one through epoch publication (a [`SharedEngine`] — every server
//! connection). The shared implementation is where the read/write split pays
//! off: statements for which [`is_write_statement`] is false pin the
//! published snapshot and never block, so any number of sessions answer
//! queries in parallel while `BUILD INDEX`, ingest and DDL serialize through
//! the commit mutex and publish new epochs.

use crate::executor::{execute_read_statement, execute_statement, is_write_statement, SqlError};
use crate::frame::QueryOutcome;
use crate::parser::Statement;
use hermes_core::{HermesEngine, SharedEngine};

/// An execution target for fully bound statements.
pub trait EngineBackend {
    /// Executes one fully bound statement.
    fn execute(&mut self, stmt: &Statement) -> Result<QueryOutcome, SqlError>;
}

impl EngineBackend for &mut HermesEngine {
    fn execute(&mut self, stmt: &Statement) -> Result<QueryOutcome, SqlError> {
        execute_statement(self, stmt)
    }
}

impl EngineBackend for SharedEngine {
    fn execute(&mut self, stmt: &Statement) -> Result<QueryOutcome, SqlError> {
        if is_write_statement(stmt) {
            self.with_write(|e| execute_statement(e, stmt))
        } else {
            execute_read_statement(&self.read(), stmt)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn shared_backend_routes_reads_and_writes() {
        let mut shared = SharedEngine::default();
        let create = parse("CREATE DATASET a;").unwrap();
        shared.execute(&create).unwrap();
        let show = parse("SHOW DATASETS;").unwrap();
        let outcome = shared.execute(&show).unwrap();
        assert_eq!(outcome.num_rows(), 1);
        // A clone sees the same engine.
        let mut other = shared.clone();
        assert_eq!(other.execute(&show).unwrap().num_rows(), 1);
    }
}
