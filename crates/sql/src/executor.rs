//! Executes parsed statements against a [`HermesEngine`], emitting typed
//! [`Frame`]s and [`CommandStatus`]es — never strings (rendering is the
//! display edge's job, see [`crate::fmt`]).

use crate::frame::{CommandStatus, CommandTag, Frame, QueryOutcome};
use crate::parser::{parse, ParseError, Statement};
use crate::value::{Value, ValueType};
use hermes_core::{DatasetInfo, EngineError, ExecPolicy, HermesEngine};
use hermes_retratree::{QutParams, QutStats, ReTraTreeParams};
use hermes_s2t::{ClusteringResult, S2TParams};
use hermes_trajectory::{Duration, TimeInterval, Timestamp};
use std::fmt;

/// Errors produced while executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// The statement failed to parse.
    Parse(ParseError),
    /// A placeholder stayed unbound or a bound value had the wrong type.
    Bind(String),
    /// The engine rejected the operation.
    Engine(EngineError),
    /// A mutating statement reached a read-only execution path (see
    /// [`execute_read_statement`]).
    ReadOnly(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "{e}"),
            SqlError::Bind(reason) => write!(f, "SQL bind error: {reason}"),
            SqlError::Engine(e) => write!(f, "{e}"),
            SqlError::ReadOnly(stmt) => {
                write!(
                    f,
                    "statement '{stmt}' mutates the engine and cannot run on a read-only path"
                )
            }
        }
    }
}

impl std::error::Error for SqlError {}

impl From<ParseError> for SqlError {
    fn from(e: ParseError) -> Self {
        SqlError::Parse(e)
    }
}

impl From<EngineError> for SqlError {
    fn from(e: EngineError) -> Self {
        SqlError::Engine(e)
    }
}

fn push(frame: &mut Frame, row: Vec<Value>) {
    frame
        .push_row(row)
        .expect("executor rows match their frame schema");
}

/// One row per cluster plus a trailing outlier row (`cluster = -1`, matching
/// the histogram's outlier label), with window bounds as real timestamps.
///
/// Public so a coordinator that assembles a [`ClusteringResult`] from shard
/// partials can render the exact frame a single-node engine would produce.
pub fn clusters_frame(result: &ClusteringResult) -> Frame {
    let mut frame = Frame::with_columns(&[
        ("cluster", ValueType::Int),
        ("representative", ValueType::Int),
        ("size", ValueType::Int),
        ("mean_distance", ValueType::Float),
        ("start", ValueType::Timestamp),
        ("end", ValueType::Timestamp),
    ]);
    for c in &result.clusters {
        let lifespan = c.lifespan();
        push(
            &mut frame,
            vec![
                Value::Int(c.id as i64),
                Value::Int(c.representative.trajectory_id as i64),
                Value::Int(c.size() as i64),
                Value::Float(c.mean_distance()),
                Value::Timestamp(lifespan.start),
                Value::Timestamp(lifespan.end),
            ],
        );
    }
    push(
        &mut frame,
        vec![
            Value::Int(-1),
            Value::Null,
            Value::Int(result.num_outliers() as i64),
            Value::Null,
            Value::Null,
            Value::Null,
        ],
    );
    frame
}

/// The `\timing` companion of a whole-dataset clustering run.
pub fn s2t_stats_frame(result: &ClusteringResult, elapsed_ms: f64) -> Frame {
    let mut stats = Frame::with_columns(&[
        ("elapsed_ms", ValueType::Float),
        ("clusters", ValueType::Int),
        ("outliers", ValueType::Int),
    ]);
    push(
        &mut stats,
        vec![
            Value::Float(elapsed_ms),
            Value::Int(result.num_clusters() as i64),
            Value::Int(result.num_outliers() as i64),
        ],
    );
    stats
}

/// The `\timing` companion of a window (QuT / rebuild) run, including the
/// reuse counters that make the QuT-vs-rebuild tradeoff visible.
pub fn qut_stats_frame(result: &ClusteringResult, stats: &QutStats) -> Frame {
    let mut frame = Frame::with_columns(&[
        ("elapsed_ms", ValueType::Float),
        ("clusters", ValueType::Int),
        ("outliers", ValueType::Int),
        ("reused_subchunks", ValueType::Int),
        ("reclustered_subchunks", ValueType::Int),
        ("loaded_sub_trajectories", ValueType::Int),
    ]);
    push(
        &mut frame,
        vec![
            Value::Float(stats.elapsed_ms),
            Value::Int(result.num_clusters() as i64),
            Value::Int(result.num_outliers() as i64),
            Value::Int(stats.reused_subchunks as i64),
            Value::Int(stats.reclustered_subchunks as i64),
            Value::Int(stats.loaded_sub_trajectories as i64),
        ],
    );
    frame
}

/// The `(scope, metric, value)` schema shared by every `SHOW STATS` scope:
/// the executor fills the `engine` scope, a [`Session`](crate::Session)
/// appends its `session` scope, and a server appends its own.
pub fn stats_frame() -> Frame {
    Frame::with_columns(&[
        ("scope", ValueType::Text),
        ("metric", ValueType::Text),
        ("value", ValueType::Int),
    ])
}

/// Appends one `SHOW STATS` row to a [`stats_frame`]-shaped frame.
pub fn push_stat(frame: &mut Frame, scope: &str, metric: &str, value: i64) {
    push(
        frame,
        vec![
            Value::Text(scope.to_string()),
            Value::Text(metric.to_string()),
            Value::Int(value),
        ],
    );
}

/// Sorts a [`stats_frame`]-shaped frame by `(scope, metric)`.
///
/// `SHOW STATS` ordering is part of the statement's contract: every scope
/// appender (executor, session, server, coordinator) sorts after its append,
/// so the final frame is deterministic regardless of which edges contributed
/// rows. See `docs/OBSERVABILITY.md`.
pub fn sort_stats_rows(frame: &mut Frame) {
    let mut rows: Vec<Vec<Value>> = frame
        .rows()
        .map(|row| row.into_iter().cloned().collect())
        .collect();
    rows.sort_by(|a, b| {
        let key = |r: &Vec<Value>| {
            (
                r[0].as_str().unwrap_or("").to_string(),
                r[1].as_str().unwrap_or("").to_string(),
            )
        };
        key(a).cmp(&key(b))
    });
    let mut sorted = stats_frame();
    for row in rows {
        push(&mut sorted, row);
    }
    *frame = sorted;
}

/// The `SHOW TRACES` answer schema: one row per trace in the serving edge's
/// span store, newest first.
pub fn traces_frame() -> Frame {
    Frame::with_columns(&[
        ("trace", ValueType::Int),
        ("root", ValueType::Text),
        ("spans", ValueType::Int),
        ("duration_us", ValueType::Int),
    ])
}

/// Appends one trace summary row to a [`traces_frame`]-shaped frame.
pub fn push_trace_summary(frame: &mut Frame, trace: i64, root: &str, spans: i64, duration_us: i64) {
    push(
        frame,
        vec![
            Value::Int(trace),
            Value::Text(root.to_string()),
            Value::Int(spans),
            Value::Int(duration_us),
        ],
    );
}

/// The `SHOW TRACE <id>` answer schema: the trace's spans as a flat
/// parent-linked tree (`parent = 0` marks the root), ordered by start offset.
pub fn trace_frame() -> Frame {
    Frame::with_columns(&[
        ("span", ValueType::Int),
        ("parent", ValueType::Int),
        ("name", ValueType::Text),
        ("start_us", ValueType::Int),
        ("duration_us", ValueType::Int),
        ("attributes", ValueType::Text),
    ])
}

/// Appends one span row to a [`trace_frame`]-shaped frame.
pub fn push_trace_span(
    frame: &mut Frame,
    span: i64,
    parent: i64,
    name: &str,
    start_us: i64,
    duration_us: i64,
    attributes: &str,
) {
    push(
        frame,
        vec![
            Value::Int(span),
            Value::Int(parent),
            Value::Text(name.to_string()),
            Value::Int(start_us),
            Value::Int(duration_us),
            Value::Text(attributes.to_string()),
        ],
    );
}

fn push_engine_stats(frame: &mut Frame, engine: &HermesEngine) {
    let s = engine.stats();
    for (metric, value) in [
        ("datasets", s.datasets as i64),
        ("indexed_datasets", s.indexed_datasets as i64),
        ("indexed_partitions", s.indexed_partitions as i64),
        ("stored_records", s.stored_records as i64),
        ("buffer_hits", s.buffer.hits as i64),
        ("buffer_misses", s.buffer.misses as i64),
        ("buffer_evictions", s.buffer.evictions as i64),
        ("threads", s.threads as i64),
        // Cumulative S2T pipeline phase work (milliseconds) across every
        // clustering query — S2T direct, QuT border re-clustering and the
        // window-rebuild baseline alike.
        ("s2t_index_build_ms", s.phases.index_build_ms as i64),
        ("s2t_voting_ms", s.phases.voting_ms as i64),
        ("s2t_segmentation_ms", s.phases.segmentation_ms as i64),
        ("s2t_sampling_ms", s.phases.sampling_ms as i64),
        ("s2t_clustering_ms", s.phases.clustering_ms as i64),
        // Voting-kernel pruning ladder: exact evaluations vs lower-bound
        // rejects, cumulative over the same queries as the phase counters.
        ("kernel_evaluated", s.kernel_evaluated as i64),
        ("kernel_pruned", s.kernel_pruned as i64),
        // Persistence scope: all zero on an in-memory engine (durable = 0).
        ("durable", s.durable as i64),
        ("snapshot_bytes", s.snapshot_bytes as i64),
        ("wal_bytes", s.wal_bytes as i64),
        ("last_checkpoint_ms", s.last_checkpoint_ms as i64),
    ] {
        push_stat(frame, "engine", metric, value);
    }
}

fn window(wi: i64, we: i64) -> TimeInterval {
    TimeInterval::new(Timestamp(wi), Timestamp(we.max(wi)))
}

/// Parses and executes one statement against the engine. Statements with
/// placeholders must go through [`Statement::bind`] (or a
/// [`Session`](crate::Session)) first; an unbound placeholder surfaces as
/// [`SqlError::Bind`].
pub fn execute(engine: &mut HermesEngine, sql: &str) -> Result<QueryOutcome, SqlError> {
    execute_statement(engine, &parse(sql)?)
}

/// True when executing the statement mutates engine state. Shared deployments
/// (the server's [`SharedEngine`](hermes_core::SharedEngine)) route these
/// through the write lock and everything else through the read lock.
pub fn is_write_statement(stmt: &Statement) -> bool {
    matches!(
        stmt,
        Statement::CreateDataset { .. }
            | Statement::DropDataset { .. }
            | Statement::BuildIndex { .. }
            | Statement::SetThreads { .. }
            | Statement::Checkpoint
    )
}

/// Executes an already parsed (and fully bound) statement. This is the entry
/// point prepared statements re-enter per execution, skipping the parser.
pub fn execute_statement(
    engine: &mut HermesEngine,
    stmt: &Statement,
) -> Result<QueryOutcome, SqlError> {
    let f64_of = |s: &crate::parser::Scalar| s.as_f64().map_err(SqlError::Bind);
    match stmt {
        Statement::CreateDataset { name } => {
            engine.create_dataset(name)?;
            Ok(QueryOutcome::Command(CommandStatus {
                tag: CommandTag::CreateDataset,
                affected: 1,
            }))
        }
        Statement::DropDataset { name } => {
            engine.drop_dataset(name)?;
            Ok(QueryOutcome::Command(CommandStatus {
                tag: CommandTag::DropDataset,
                affected: 1,
            }))
        }
        Statement::BuildIndex {
            name,
            chunk_hours,
            sigma,
            epsilon,
        } => {
            let mut s2t = S2TParams::builder();
            if let Some(s) = sigma {
                s2t = s2t.sigma(f64_of(s)?);
            }
            if let Some(e) = epsilon {
                s2t = s2t.epsilon(f64_of(e)?);
            }
            let chunk_ms = (f64_of(chunk_hours)? * 3_600_000.0) as i64;
            let params = ReTraTreeParams::builder()
                .chunk_duration(Duration::from_millis(chunk_ms))
                .s2t(s2t.build().map_err(EngineError::InvalidParameters)?)
                .build()
                .map_err(EngineError::InvalidParameters)?;
            let indexed = engine.build_index(name, params)?;
            Ok(QueryOutcome::Command(CommandStatus {
                tag: CommandTag::BuildIndex,
                affected: indexed as u64,
            }))
        }
        Statement::Checkpoint => {
            // Snapshot + WAL truncation; the affected count carries the
            // snapshot size so scripts can assert something observable.
            let info = engine.checkpoint()?;
            Ok(QueryOutcome::Command(CommandStatus {
                tag: CommandTag::Checkpoint,
                affected: info.snapshot_bytes,
            }))
        }
        Statement::SetThreads { threads } => {
            let n = threads.as_i64().map_err(SqlError::Bind)?;
            // A negative count cannot reach ExecPolicy (usize); report it
            // with the same arity-style wording the engine's validation uses
            // for 0 and for counts over the cap.
            let count = usize::try_from(n).map_err(|_| {
                SqlError::Engine(EngineError::InvalidParameters(format!(
                    "SET threads expects a positive thread count, got {n}"
                )))
            })?;
            engine.set_exec_policy(ExecPolicy { threads: count })?;
            Ok(QueryOutcome::Command(CommandStatus {
                tag: CommandTag::Set,
                affected: count as u64,
            }))
        }
        _ => execute_read_statement(engine, stmt),
    }
}

/// Executes a read-only statement against a shared engine reference. Every
/// statement for which [`is_write_statement`] is false runs here — this is
/// what lets concurrent sessions answer queries in parallel under a read
/// lock while `BUILD INDEX` waits for the write lock. Mutating statements
/// are rejected with [`SqlError::ReadOnly`].
pub fn execute_read_statement(
    engine: &HermesEngine,
    stmt: &Statement,
) -> Result<QueryOutcome, SqlError> {
    let f64_of = |s: &crate::parser::Scalar| s.as_f64().map_err(SqlError::Bind);
    let i64_of = |s: &crate::parser::Scalar| s.as_i64().map_err(SqlError::Bind);
    match stmt {
        Statement::CreateDataset { .. }
        | Statement::DropDataset { .. }
        | Statement::BuildIndex { .. }
        | Statement::SetThreads { .. }
        | Statement::Checkpoint => Err(SqlError::ReadOnly(stmt.to_string())),
        Statement::ShowThreads => {
            let mut frame = Frame::with_columns(&[("threads", ValueType::Int)]);
            push(
                &mut frame,
                vec![Value::Int(engine.exec_policy().threads as i64)],
            );
            Ok(QueryOutcome::rows(frame))
        }
        Statement::ShowDatasets => {
            let mut frame = Frame::with_columns(&[("dataset", ValueType::Text)]);
            for name in engine.list_datasets() {
                push(&mut frame, vec![Value::Text(name)]);
            }
            Ok(QueryOutcome::rows(frame))
        }
        Statement::ShowStats => {
            let mut frame = stats_frame();
            push_engine_stats(&mut frame, engine);
            sort_stats_rows(&mut frame);
            Ok(QueryOutcome::rows(frame))
        }
        // Embedded (engine-local) execution has no span store; the server and
        // coordinator intercept these at their serving edge and answer from
        // their in-process stores. Locally they answer with the empty schema.
        Statement::ShowTraces => Ok(QueryOutcome::rows(traces_frame())),
        Statement::ShowTrace { .. } => Ok(QueryOutcome::rows(trace_frame())),
        Statement::Info { name } => {
            let info = engine.dataset_info(name)?;
            Ok(QueryOutcome::rows(info_frame(&info)))
        }
        Statement::S2T {
            name,
            sigma,
            tau,
            delta,
            min_duration_ms,
            epsilon,
            naive,
        } => {
            let params = S2TParams::builder()
                .sigma(f64_of(sigma)?)
                .tau(f64_of(tau)?)
                .delta(f64_of(delta)?)
                .min_duration_ms(i64_of(min_duration_ms)?)
                .epsilon(f64_of(epsilon)?)
                .build()
                .map_err(EngineError::InvalidParameters)?;
            let outcome = if *naive {
                engine.run_s2t_naive(name, &params)?
            } else {
                engine.run_s2t(name, &params)?
            };
            Ok(QueryOutcome::Rows {
                frame: clusters_frame(&outcome.result),
                stats: Some(s2t_stats_frame(&outcome.result, outcome.timings.total_ms())),
            })
        }
        Statement::Qut {
            name,
            wi,
            we,
            tau,
            delta,
            min_duration_ms,
            merge_distance,
            merge_gap_ms,
            rebuild,
        } => {
            let w = window(i64_of(wi)?, i64_of(we)?);
            // τ, δ and t come from the query; the data-scale parameters
            // (σ, ε) are inherited from the ReTraTree the dataset was indexed
            // with, exactly as the in-DBMS QUT call operates on the clusters
            // the index already maintains.
            let base = engine.tree(name)?.params().s2t.clone();
            let s2t = S2TParams {
                tau: f64_of(tau)?,
                delta: f64_of(delta)?,
                min_duration_ms: i64_of(min_duration_ms)?,
                ..base
            };
            if *rebuild {
                let (result, stats) = engine.run_window_rebuild(name, &w, &s2t)?;
                Ok(QueryOutcome::Rows {
                    frame: clusters_frame(&result),
                    stats: Some(qut_stats_frame(&result, &stats)),
                })
            } else {
                let params = QutParams::builder()
                    .s2t(s2t)
                    .merge_distance(f64_of(merge_distance)?)
                    .merge_gap(Duration::from_millis(i64_of(merge_gap_ms)?))
                    .build()
                    .map_err(EngineError::InvalidParameters)?;
                let (result, stats) = engine.run_qut(name, &w, &params)?;
                Ok(QueryOutcome::Rows {
                    frame: clusters_frame(&result),
                    stats: Some(qut_stats_frame(&result, &stats)),
                })
            }
        }
        Statement::Range { name, wi, we } => {
            let w = window(i64_of(wi)?, i64_of(we)?);
            let tree = engine.tree(name)?;
            let subs = tree.window_sub_trajectories(&w);
            Ok(QueryOutcome::rows(range_frame(subs.len())))
        }
        Statement::Histogram {
            name,
            wi,
            we,
            bucket_ms,
        } => {
            let bucket_ms = i64_of(bucket_ms)?;
            if bucket_ms <= 0 {
                return Err(SqlError::Engine(EngineError::InvalidParameters(
                    "histogram bucket width must be positive".into(),
                )));
            }
            let w = window(i64_of(wi)?, i64_of(we)?);
            let params = QutParams {
                s2t: engine.tree(name)?.params().s2t.clone(),
                ..QutParams::default()
            };
            let (result, _) = engine.run_qut(name, &w, &params)?;
            Ok(QueryOutcome::rows(histogram_frame(&result, bucket_ms)))
        }
    }
}

/// Renders the `INFO <dataset>` answer frame for a [`DatasetInfo`]. Public so
/// a coordinator can render the union of per-shard infos identically.
pub fn info_frame(info: &DatasetInfo) -> Frame {
    let mut frame = Frame::with_columns(&[
        ("dataset", ValueType::Text),
        ("trajectories", ValueType::Int),
        ("points", ValueType::Int),
        ("start", ValueType::Timestamp),
        ("end", ValueType::Timestamp),
        ("indexed", ValueType::Bool),
        ("cluster_entries", ValueType::Int),
    ]);
    push(
        &mut frame,
        vec![
            Value::Text(info.name.clone()),
            Value::Int(info.num_trajectories as i64),
            Value::Int(info.num_points as i64),
            info.lifespan
                .map(|l| Value::Timestamp(l.start))
                .unwrap_or(Value::Null),
            info.lifespan
                .map(|l| Value::Timestamp(l.end))
                .unwrap_or(Value::Null),
            Value::Bool(info.indexed),
            Value::Int(info.num_cluster_entries as i64),
        ],
    );
    frame
}

/// Renders the single-cell `RANGE` answer frame for a window count.
pub fn range_frame(count: usize) -> Frame {
    let mut frame = Frame::with_columns(&[("sub_trajectories_in_window", ValueType::Int)]);
    push(&mut frame, vec![Value::Int(count as i64)]);
    frame
}

/// Renders the `HISTOGRAM` answer frame (one row per bucket × cluster, plus a
/// `cluster = -1` outlier row per bucket) from an assembled window clustering.
pub fn histogram_frame(result: &ClusteringResult, bucket_ms: i64) -> Frame {
    let hist = hermes_va::time_histogram(result, Duration::from_millis(bucket_ms));
    let mut frame = Frame::with_columns(&[
        ("bucket_start", ValueType::Timestamp),
        ("cluster", ValueType::Int),
        ("cardinality", ValueType::Int),
    ]);
    for (b, start) in hist.bucket_starts.iter().enumerate() {
        for (cluster, counts) in hist.counts.iter().enumerate() {
            push(
                &mut frame,
                vec![
                    Value::Timestamp(*start),
                    Value::Int(cluster as i64),
                    Value::Int(counts[b] as i64),
                ],
            );
        }
        push(
            &mut frame,
            vec![
                Value::Timestamp(*start),
                Value::Int(-1),
                Value::Int(hist.outlier_counts[b] as i64),
            ],
        );
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::{Point, Trajectory};

    fn traj(id: u64, y: f64, t0: i64) -> Trajectory {
        Trajectory::new(
            id,
            id,
            (0..30)
                .map(|i| Point::new(i as f64 * 100.0, y, Timestamp(t0 + i as i64 * 60_000)))
                .collect(),
        )
        .unwrap()
    }

    fn engine() -> HermesEngine {
        let mut e = HermesEngine::new();
        execute(&mut e, "CREATE DATASET flights;").unwrap();
        let trajs: Vec<Trajectory> = (0..12).map(|i| traj(i, i as f64 * 10.0, 0)).collect();
        e.load_trajectories("flights", trajs).unwrap();
        e
    }

    #[test]
    fn ddl_returns_typed_command_status() {
        let mut e = HermesEngine::new();
        let created = execute(&mut e, "CREATE DATASET a;").unwrap();
        assert_eq!(
            created.command(),
            Some(&CommandStatus {
                tag: CommandTag::CreateDataset,
                affected: 1
            })
        );
        assert!(
            created.frame().is_none(),
            "DDL must not fabricate a row table"
        );
        execute(&mut e, "CREATE DATASET b;").unwrap();
        let shown = execute(&mut e, "SHOW DATASETS;").unwrap();
        let names = shown
            .expect_frame("SHOW DATASETS")
            .column("dataset")
            .unwrap()
            .to_vec();
        assert_eq!(names, vec![Value::from("a"), Value::from("b")]);
        let dropped = execute(&mut e, "DROP DATASET a;").unwrap();
        assert_eq!(dropped.command().unwrap().tag, CommandTag::DropDataset);
        assert_eq!(execute(&mut e, "SHOW DATASETS;").unwrap().num_rows(), 1);
        assert!(matches!(
            execute(&mut e, "DROP DATASET nope;"),
            Err(SqlError::Engine(EngineError::UnknownDataset(_)))
        ));
    }

    #[test]
    fn info_reports_the_loaded_data_in_typed_columns() {
        let mut e = engine();
        let info = execute(&mut e, "SELECT INFO(flights);").unwrap();
        let frame = info.expect_frame("INFO");
        assert_eq!(frame.get(0, "trajectories"), Some(&Value::Int(12)));
        assert_eq!(frame.get(0, "indexed"), Some(&Value::Bool(false)));
        assert_eq!(frame.get(0, "start"), Some(&Value::Timestamp(Timestamp(0))));
        assert_eq!(
            frame.schema()[frame.column_index("end").unwrap()].ty,
            ValueType::Timestamp
        );
    }

    #[test]
    fn build_index_reports_indexed_trajectories() {
        let mut e = engine();
        let built = execute(&mut e, "BUILD INDEX ON flights WITH CHUNK 4 HOURS;").unwrap();
        assert_eq!(
            built.command(),
            Some(&CommandStatus {
                tag: CommandTag::BuildIndex,
                affected: 12
            })
        );
    }

    #[test]
    fn s2t_via_sql_produces_a_typed_cluster_frame() {
        let mut e = engine();
        let result = execute(&mut e, "SELECT S2T(flights, 60, 0.35, 0.05, 120000, 400);").unwrap();
        let frame = result.expect_frame("S2T");
        assert_eq!(frame.schema()[0].name, "cluster");
        assert!(frame.num_rows() >= 2);
        // The trailing outlier row is labelled cluster = -1.
        let clusters = frame.column("cluster").unwrap();
        assert_eq!(clusters.last(), Some(&Value::Int(-1)));
        // Lifespans are typed timestamps, not strings.
        assert!(matches!(frame.get(0, "start"), Some(Value::Timestamp(_))));
        assert!(matches!(
            frame.get(0, "mean_distance"),
            Some(Value::Float(_))
        ));
        // Execution statistics ride along as a one-row typed frame.
        let stats = result.stats().unwrap();
        assert!(matches!(stats.get(0, "elapsed_ms"), Some(Value::Float(_))));
        assert_eq!(
            stats.get(0, "clusters"),
            Some(&Value::Int((frame.num_rows() - 1) as i64))
        );

        let naive = execute(
            &mut e,
            "SELECT S2T_NAIVE(flights, 60, 0.35, 0.05, 120000, 400);",
        )
        .unwrap();
        assert_eq!(naive.num_rows(), result.num_rows());
    }

    #[test]
    fn qut_via_sql_requires_and_uses_the_index() {
        let mut e = engine();
        let attempt = execute(
            &mut e,
            "SELECT QUT(flights, 0, 1800000, 0.35, 0.05, 120000, 400, 1800000);",
        );
        assert!(matches!(
            attempt,
            Err(SqlError::Engine(EngineError::NotIndexed(_)))
        ));

        execute(&mut e, "BUILD INDEX ON flights WITH CHUNK 4 HOURS;").unwrap();
        let qut = execute(
            &mut e,
            "SELECT QUT(flights, 0, 1800000, 0.35, 0.05, 120000, 400, 1800000);",
        )
        .unwrap();
        assert!(qut.num_rows() >= 1);
        let stats = qut.stats().unwrap();
        assert!(matches!(
            stats.get(0, "reused_subchunks"),
            Some(Value::Int(_))
        ));
        let rebuild = execute(
            &mut e,
            "SELECT QUT_REBUILD(flights, 0, 1800000, 0.35, 0.05, 120000);",
        )
        .unwrap();
        assert!(rebuild.num_rows() >= 1);

        let range = execute(&mut e, "SELECT RANGE(flights, 0, 1800000);").unwrap();
        let count = range
            .expect_frame("RANGE")
            .get(0, "sub_trajectories_in_window")
            .unwrap()
            .as_i64()
            .unwrap();
        assert!(count > 0);

        let hist = execute(&mut e, "SELECT HISTOGRAM(flights, 0, 1800000, 600000);").unwrap();
        let frame = hist.expect_frame("HISTOGRAM");
        assert_eq!(
            frame
                .schema()
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["bucket_start", "cluster", "cardinality"]
        );
        assert_eq!(frame.schema()[0].ty, ValueType::Timestamp);
        assert!(!frame.is_empty());
        assert!(matches!(
            execute(&mut e, "SELECT HISTOGRAM(flights, 0, 1800000, 0);"),
            Err(SqlError::Engine(EngineError::InvalidParameters(_)))
        ));
    }

    #[test]
    fn read_statements_run_on_a_shared_reference() {
        let mut e = engine();
        execute(&mut e, "BUILD INDEX ON flights WITH CHUNK 4 HOURS;").unwrap();
        let range = parse("SELECT RANGE(flights, 0, 1800000);").unwrap();
        assert!(!is_write_statement(&range));
        assert_eq!(execute_read_statement(&e, &range).unwrap().num_rows(), 1);

        let ddl = parse("CREATE DATASET other;").unwrap();
        assert!(is_write_statement(&ddl));
        let err = execute_read_statement(&e, &ddl).unwrap_err();
        assert!(
            matches!(err, SqlError::ReadOnly(ref s) if s.contains("CREATE DATASET")),
            "{err}"
        );
        assert!(err.to_string().contains("read-only"));
    }

    #[test]
    fn show_stats_surfaces_buffer_and_index_counters() {
        let mut e = engine();
        execute(&mut e, "BUILD INDEX ON flights WITH CHUNK 4 HOURS;").unwrap();
        execute(&mut e, "SELECT RANGE(flights, 0, 1800000);").unwrap();
        let outcome = execute(&mut e, "SHOW STATS;").unwrap();
        let frame = outcome.expect_frame("SHOW STATS");
        let metric = |name: &str| -> i64 {
            frame
                .rows()
                .find(|row| row[1].as_str() == Some(name))
                .and_then(|row| row[2].as_i64())
                .unwrap_or_else(|| panic!("metric {name} missing"))
        };
        assert_eq!(metric("datasets"), 1);
        assert_eq!(metric("indexed_datasets"), 1);
        assert!(metric("indexed_partitions") > 0);
        assert!(metric("stored_records") > 0);
        assert!(metric("buffer_hits") + metric("buffer_misses") > 0);
        // The cumulative phase counters are always present (non-negative,
        // zero until enough clustering work accumulates a millisecond).
        for phase in [
            "s2t_index_build_ms",
            "s2t_voting_ms",
            "s2t_segmentation_ms",
            "s2t_sampling_ms",
            "s2t_clustering_ms",
            "kernel_evaluated",
            "kernel_pruned",
        ] {
            assert!(metric(phase) >= 0, "{phase}");
        }
        assert!(frame
            .column("scope")
            .unwrap()
            .iter()
            .all(|v| v.as_str() == Some("engine")));
    }

    #[test]
    fn show_stats_phase_counters_grow_with_clustering_work() {
        let mut e = engine();
        let metric = |e: &mut HermesEngine, name: &str| -> i64 {
            let outcome = execute(e, "SHOW STATS;").unwrap();
            let frame = outcome.expect_frame("SHOW STATS");
            let value = frame
                .rows()
                .find(|row| row[1].as_str() == Some(name))
                .and_then(|row| row[2].as_i64())
                .unwrap_or_else(|| panic!("metric {name} missing"));
            value
        };
        let before = metric(&mut e, "s2t_voting_ms");
        for _ in 0..50 {
            execute(&mut e, "SELECT S2T(flights, 60, 0.35, 0.05, 120000, 400);").unwrap();
        }
        let after = metric(&mut e, "s2t_voting_ms")
            + metric(&mut e, "s2t_index_build_ms")
            + metric(&mut e, "s2t_segmentation_ms")
            + metric(&mut e, "s2t_sampling_ms")
            + metric(&mut e, "s2t_clustering_ms");
        assert!(
            after > before,
            "phase counters must accumulate: {after} vs {before}"
        );
        // The arena voting path ran, so the kernel counters grew with it.
        assert!(
            metric(&mut e, "kernel_evaluated") > 0,
            "clustering work must evaluate kernel pairs"
        );
    }

    #[test]
    fn set_threads_round_trips_and_rejects_nonpositive_counts() {
        let mut e = engine();
        let set = execute(&mut e, "SET threads = 3;").unwrap();
        assert_eq!(
            set.command(),
            Some(&CommandStatus {
                tag: CommandTag::Set,
                affected: 3
            })
        );
        let shown = execute(&mut e, "SHOW THREADS;").unwrap();
        assert_eq!(
            shown.expect_frame("SHOW THREADS").get(0, "threads"),
            Some(&Value::Int(3))
        );
        // SHOW STATS surfaces the same value in the engine scope.
        let stats = execute(&mut e, "SHOW STATS;").unwrap();
        let frame = stats.expect_frame("SHOW STATS");
        let threads = frame
            .rows()
            .find(|r| r[1].as_str() == Some("threads"))
            .and_then(|r| r[2].as_i64());
        assert_eq!(threads, Some(3));

        for bad in ["SET threads = 0;", "SET threads = -2;"] {
            let err = execute(&mut e, bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    SqlError::Engine(EngineError::InvalidParameters(ref m))
                        if m.contains("positive thread count")
                ),
                "{bad}: {err}"
            );
        }
        // An absurd count is rejected before any thread is spawned.
        let err = execute(&mut e, "SET threads = 1000000;").unwrap_err();
        assert!(
            matches!(
                err,
                SqlError::Engine(EngineError::InvalidParameters(ref m)) if m.contains("at most")
            ),
            "{err}"
        );
        // The failed statements left the setting untouched.
        let shown = execute(&mut e, "SHOW THREADS;").unwrap();
        assert_eq!(
            shown.expect_frame("SHOW THREADS").get(0, "threads"),
            Some(&Value::Int(3))
        );
        // SET mutates the engine, so it is a write statement and refuses the
        // read-only path.
        let stmt = parse("SET threads = 2;").unwrap();
        assert!(is_write_statement(&stmt));
        assert!(matches!(
            execute_read_statement(&e, &stmt),
            Err(SqlError::ReadOnly(_))
        ));
    }

    #[test]
    fn checkpoint_requires_a_durable_engine() {
        let mut e = engine();
        let err = execute(&mut e, "CHECKPOINT;").unwrap_err();
        assert!(
            matches!(err, SqlError::Engine(EngineError::NotDurable)),
            "{err}"
        );
        // CHECKPOINT mutates durable state: write statement, read path refuses.
        let stmt = parse("CHECKPOINT;").unwrap();
        assert!(is_write_statement(&stmt));
        assert!(matches!(
            execute_read_statement(&e, &stmt),
            Err(SqlError::ReadOnly(_))
        ));
    }

    #[test]
    fn checkpoint_and_persistence_stats_over_a_durable_engine() {
        let dir =
            std::env::temp_dir().join(format!("hermes-sql-checkpoint-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut e = HermesEngine::open(&dir).unwrap();
        execute(&mut e, "CREATE DATASET flights;").unwrap();
        let trajs: Vec<Trajectory> = (0..12).map(|i| traj(i, i as f64 * 10.0, 0)).collect();
        e.load_trajectories("flights", trajs).unwrap();
        execute(&mut e, "BUILD INDEX ON flights WITH CHUNK 4 HOURS;").unwrap();

        let metric = |e: &mut HermesEngine, name: &str| -> i64 {
            let outcome = execute(e, "SHOW STATS;").unwrap();
            let frame = outcome.expect_frame("SHOW STATS");
            let value = frame
                .rows()
                .find(|row| row[1].as_str() == Some(name))
                .and_then(|row| row[2].as_i64())
                .unwrap_or_else(|| panic!("metric {name} missing"));
            value
        };
        assert_eq!(metric(&mut e, "durable"), 1);
        assert!(metric(&mut e, "wal_bytes") > 8, "mutations were journaled");
        assert_eq!(metric(&mut e, "snapshot_bytes"), 0);

        let outcome = execute(&mut e, "CHECKPOINT;").unwrap();
        let status = outcome.command().unwrap();
        assert_eq!(status.tag, CommandTag::Checkpoint);
        assert!(status.affected > 0, "affected carries the snapshot bytes");
        assert_eq!(
            outcome.to_string(),
            format!("CHECKPOINT {}\n", status.affected)
        );
        assert_eq!(metric(&mut e, "snapshot_bytes"), status.affected as i64);
        assert_eq!(metric(&mut e, "wal_bytes"), 8, "log reset to its header");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unbound_placeholders_are_a_bind_error() {
        let mut e = engine();
        execute(&mut e, "BUILD INDEX ON flights WITH CHUNK 4 HOURS;").unwrap();
        let stmt = parse("SELECT RANGE(flights, $1, $2);").unwrap();
        let err = execute_statement(&mut e, &stmt).unwrap_err();
        assert!(
            matches!(err, SqlError::Bind(ref m) if m.contains("$1")),
            "{err}"
        );
        let bound = stmt.bind(&[Value::Int(0), Value::Int(1_800_000)]).unwrap();
        assert!(execute_statement(&mut e, &bound).unwrap().num_rows() == 1);
    }

    #[test]
    fn parse_errors_are_reported() {
        let mut e = engine();
        assert!(matches!(
            execute(&mut e, "SELEKT S2T(flights);"),
            Err(SqlError::Parse(_))
        ));
    }

    #[test]
    fn outcome_renders_as_text_at_the_display_edge() {
        let mut e = engine();
        let info = execute(&mut e, "SELECT INFO(flights);").unwrap();
        let text = info.to_string();
        assert!(text.contains("dataset"));
        assert!(text.contains("flights"));
        assert!(text.ends_with("(1 row)\n"));
    }
}
