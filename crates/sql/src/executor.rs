//! Executes parsed statements against a [`HermesEngine`].

use crate::parser::{parse, ParseError, Statement};
use hermes_core::{EngineError, HermesEngine};
use hermes_retratree::{QutParams, ReTraTreeParams};
use hermes_s2t::{ClusteringResult, S2TParams};
use hermes_trajectory::{Duration, TimeInterval, Timestamp};
use std::fmt;

/// A tabular query result (every value rendered as text, like `psql`).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Column names.
    pub columns: Vec<String>,
    /// Rows of values, one string per column.
    pub rows: Vec<Vec<String>>,
}

impl QueryResult {
    fn message(text: impl Into<String>) -> Self {
        QueryResult {
            columns: vec!["result".into()],
            rows: vec![vec![text.into()]],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(" | "))?;
        }
        Ok(())
    }
}

/// Errors produced while executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// The statement failed to parse.
    Parse(ParseError),
    /// The engine rejected the operation.
    Engine(EngineError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "{e}"),
            SqlError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<ParseError> for SqlError {
    fn from(e: ParseError) -> Self {
        SqlError::Parse(e)
    }
}

impl From<EngineError> for SqlError {
    fn from(e: EngineError) -> Self {
        SqlError::Engine(e)
    }
}

fn clusters_table(result: &ClusteringResult, elapsed_ms: f64) -> QueryResult {
    let mut rows = Vec::new();
    for c in &result.clusters {
        rows.push(vec![
            c.id.to_string(),
            c.representative.trajectory_id.to_string(),
            c.size().to_string(),
            format!("{:.1}", c.mean_distance()),
            c.lifespan().start.millis().to_string(),
            c.lifespan().end.millis().to_string(),
        ]);
    }
    rows.push(vec![
        "outliers".into(),
        String::new(),
        result.num_outliers().to_string(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    rows.push(vec![
        "elapsed_ms".into(),
        String::new(),
        format!("{elapsed_ms:.2}"),
        String::new(),
        String::new(),
        String::new(),
    ]);
    QueryResult {
        columns: vec![
            "cluster".into(),
            "representative".into(),
            "size".into(),
            "mean_distance".into(),
            "start_ms".into(),
            "end_ms".into(),
        ],
        rows,
    }
}

/// Parses and executes one statement against the engine.
pub fn execute(engine: &mut HermesEngine, sql: &str) -> Result<QueryResult, SqlError> {
    let stmt = parse(sql)?;
    match stmt {
        Statement::CreateDataset { name } => {
            engine.create_dataset(&name)?;
            Ok(QueryResult::message(format!("dataset '{name}' created")))
        }
        Statement::DropDataset { name } => {
            engine.drop_dataset(&name)?;
            Ok(QueryResult::message(format!("dataset '{name}' dropped")))
        }
        Statement::ShowDatasets => Ok(QueryResult {
            columns: vec!["dataset".into()],
            rows: engine.list_datasets().into_iter().map(|n| vec![n]).collect(),
        }),
        Statement::BuildIndex {
            name,
            chunk_hours,
            sigma,
            epsilon,
        } => {
            let mut s2t = S2TParams::default();
            if let Some(s) = sigma {
                s2t.sigma = s;
            }
            if let Some(e) = epsilon {
                s2t.epsilon = e;
            }
            let params = ReTraTreeParams {
                chunk_duration: Duration::from_millis((chunk_hours * 3_600_000.0) as i64),
                s2t,
                ..ReTraTreeParams::default()
            };
            engine.build_index(&name, params)?;
            Ok(QueryResult::message(format!(
                "ReTraTree built on '{name}' with {chunk_hours} hour chunks"
            )))
        }
        Statement::Info { name } => {
            let info = engine.dataset_info(&name)?;
            Ok(QueryResult {
                columns: vec![
                    "dataset".into(),
                    "trajectories".into(),
                    "points".into(),
                    "start_ms".into(),
                    "end_ms".into(),
                    "indexed".into(),
                    "cluster_entries".into(),
                ],
                rows: vec![vec![
                    info.name,
                    info.num_trajectories.to_string(),
                    info.num_points.to_string(),
                    info.lifespan.map(|l| l.start.millis().to_string()).unwrap_or_default(),
                    info.lifespan.map(|l| l.end.millis().to_string()).unwrap_or_default(),
                    info.indexed.to_string(),
                    info.num_cluster_entries.to_string(),
                ]],
            })
        }
        Statement::S2T {
            name,
            sigma,
            tau,
            delta,
            min_duration_ms,
            epsilon,
            naive,
        } => {
            let params = S2TParams {
                sigma,
                tau,
                delta,
                min_duration_ms,
                epsilon,
                ..S2TParams::default()
            };
            let outcome = if naive {
                engine.run_s2t_naive(&name, &params)?
            } else {
                engine.run_s2t(&name, &params)?
            };
            Ok(clusters_table(&outcome.result, outcome.timings.total_ms()))
        }
        Statement::Qut {
            name,
            wi,
            we,
            tau,
            delta,
            min_duration_ms,
            merge_distance,
            merge_gap_ms,
            rebuild,
        } => {
            let window = TimeInterval::new(Timestamp(wi), Timestamp(we.max(wi)));
            // τ, δ and t come from the query; the data-scale parameters
            // (σ, ε) are inherited from the ReTraTree the dataset was indexed
            // with, exactly as the in-DBMS QUT call operates on the clusters
            // the index already maintains.
            let base = engine.tree(&name)?.params().s2t.clone();
            let s2t = S2TParams {
                tau,
                delta,
                min_duration_ms,
                ..base
            };
            if rebuild {
                let (result, stats) = engine.run_window_rebuild(&name, &window, &s2t)?;
                Ok(clusters_table(&result, stats.elapsed_ms))
            } else {
                let params = QutParams {
                    s2t,
                    merge_distance,
                    merge_gap: Duration::from_millis(merge_gap_ms),
                };
                let (result, stats) = engine.run_qut(&name, &window, &params)?;
                Ok(clusters_table(&result, stats.elapsed_ms))
            }
        }
        Statement::Range { name, wi, we } => {
            let window = TimeInterval::new(Timestamp(wi), Timestamp(we.max(wi)));
            let tree = engine.tree(&name)?;
            let subs = tree.window_sub_trajectories(&window);
            Ok(QueryResult {
                columns: vec!["sub_trajectories_in_window".into()],
                rows: vec![vec![subs.len().to_string()]],
            })
        }
        Statement::Histogram {
            name,
            wi,
            we,
            bucket_ms,
        } => {
            if bucket_ms <= 0 {
                return Err(SqlError::Engine(EngineError::InvalidParameters(
                    "histogram bucket width must be positive".into(),
                )));
            }
            let window = TimeInterval::new(Timestamp(wi), Timestamp(we.max(wi)));
            let params = QutParams {
                s2t: engine.tree(&name)?.params().s2t.clone(),
                ..QutParams::default()
            };
            let (result, _) = engine.run_qut(&name, &window, &params)?;
            let hist = hermes_va::time_histogram(&result, Duration::from_millis(bucket_ms));
            let mut rows = Vec::new();
            for (b, start) in hist.bucket_starts.iter().enumerate() {
                for (cluster, counts) in hist.counts.iter().enumerate() {
                    rows.push(vec![
                        start.millis().to_string(),
                        cluster.to_string(),
                        counts[b].to_string(),
                    ]);
                }
                rows.push(vec![
                    start.millis().to_string(),
                    "-1".into(),
                    hist.outlier_counts[b].to_string(),
                ]);
            }
            Ok(QueryResult {
                columns: vec!["bucket_start_ms".into(), "cluster".into(), "cardinality".into()],
                rows,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::{Point, Trajectory};

    fn traj(id: u64, y: f64, t0: i64) -> Trajectory {
        Trajectory::new(
            id,
            id,
            (0..30)
                .map(|i| Point::new(i as f64 * 100.0, y, Timestamp(t0 + i as i64 * 60_000)))
                .collect(),
        )
        .unwrap()
    }

    fn engine() -> HermesEngine {
        let mut e = HermesEngine::new();
        execute(&mut e, "CREATE DATASET flights;").unwrap();
        let trajs: Vec<Trajectory> = (0..12).map(|i| traj(i, i as f64 * 10.0, 0)).collect();
        e.load_trajectories("flights", trajs).unwrap();
        e
    }

    #[test]
    fn ddl_round_trip() {
        let mut e = HermesEngine::new();
        execute(&mut e, "CREATE DATASET a;").unwrap();
        execute(&mut e, "CREATE DATASET b;").unwrap();
        let shown = execute(&mut e, "SHOW DATASETS;").unwrap();
        assert_eq!(shown.rows, vec![vec!["a".to_string()], vec!["b".to_string()]]);
        execute(&mut e, "DROP DATASET a;").unwrap();
        assert_eq!(execute(&mut e, "SHOW DATASETS;").unwrap().len(), 1);
        assert!(matches!(
            execute(&mut e, "DROP DATASET nope;"),
            Err(SqlError::Engine(EngineError::UnknownDataset(_)))
        ));
    }

    #[test]
    fn info_reports_the_loaded_data() {
        let mut e = engine();
        let info = execute(&mut e, "SELECT INFO(flights);").unwrap();
        assert_eq!(info.rows[0][1], "12");
        assert_eq!(info.rows[0][5], "false");
    }

    #[test]
    fn s2t_via_sql_produces_a_cluster_table() {
        let mut e = engine();
        let result = execute(&mut e, "SELECT S2T(flights, 60, 0.35, 0.05, 120000, 400);").unwrap();
        assert_eq!(result.columns[0], "cluster");
        // One data row per cluster + the outlier and elapsed summary rows.
        assert!(result.len() >= 3);
        assert!(result.rows.iter().any(|r| r[0] == "outliers"));
        let naive =
            execute(&mut e, "SELECT S2T_NAIVE(flights, 60, 0.35, 0.05, 120000, 400);").unwrap();
        assert_eq!(naive.len(), result.len());
    }

    #[test]
    fn qut_via_sql_requires_and_uses_the_index() {
        let mut e = engine();
        let attempt = execute(
            &mut e,
            "SELECT QUT(flights, 0, 1800000, 0.35, 0.05, 120000, 400, 1800000);",
        );
        assert!(matches!(attempt, Err(SqlError::Engine(EngineError::NotIndexed(_)))));

        execute(&mut e, "BUILD INDEX ON flights WITH CHUNK 4 HOURS;").unwrap();
        let qut = execute(
            &mut e,
            "SELECT QUT(flights, 0, 1800000, 0.35, 0.05, 120000, 400, 1800000);",
        )
        .unwrap();
        assert!(qut.len() >= 2);
        let rebuild = execute(
            &mut e,
            "SELECT QUT_REBUILD(flights, 0, 1800000, 0.35, 0.05, 120000);",
        )
        .unwrap();
        assert!(rebuild.len() >= 2);

        let range = execute(&mut e, "SELECT RANGE(flights, 0, 1800000);").unwrap();
        let count: usize = range.rows[0][0].parse().unwrap();
        assert!(count > 0);

        let hist = execute(&mut e, "SELECT HISTOGRAM(flights, 0, 1800000, 600000);").unwrap();
        assert_eq!(hist.columns, vec!["bucket_start_ms", "cluster", "cardinality"]);
        assert!(!hist.is_empty());
        assert!(matches!(
            execute(&mut e, "SELECT HISTOGRAM(flights, 0, 1800000, 0);"),
            Err(SqlError::Engine(EngineError::InvalidParameters(_)))
        ));
    }

    #[test]
    fn parse_errors_are_reported() {
        let mut e = engine();
        assert!(matches!(
            execute(&mut e, "SELEKT S2T(flights);"),
            Err(SqlError::Parse(_))
        ));
    }

    #[test]
    fn query_result_renders_as_text() {
        let mut e = engine();
        let info = execute(&mut e, "SELECT INFO(flights);").unwrap();
        let text = info.to_string();
        assert!(text.contains("dataset"));
        assert!(text.contains("flights"));
        assert!(!info.is_empty());
    }
}
