//! The display edge: everything that turns typed results into text lives
//! here, and only here. The executor, the `Session` and the engine never
//! stringify values; front ends call [`render_frame`] / [`render_outcome`]
//! (or the `Display` impls that delegate to them) at the last moment.

use crate::frame::{Frame, QueryOutcome};

/// Renders a frame as a psql-style aligned table:
///
/// ```text
///  dataset | trajectories
/// ---------+--------------
///  flights |           36
/// (1 row)
/// ```
///
/// Numeric columns (ints, floats, timestamps, intervals) are right-aligned,
/// text and booleans left-aligned; nulls render as empty cells.
pub fn render_frame(frame: &Frame) -> String {
    let cells: Vec<Vec<String>> = frame
        .rows()
        .map(|row| row.iter().map(|v| v.to_string()).collect())
        .collect();
    let widths: Vec<usize> = frame
        .schema()
        .iter()
        .enumerate()
        .map(|(c, def)| {
            cells
                .iter()
                .map(|row| row[c].len())
                .chain(std::iter::once(def.name.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();

    let mut out = String::new();
    for (c, def) in frame.schema().iter().enumerate() {
        if c > 0 {
            out.push('|');
        }
        out.push(' ');
        out.push_str(&format!("{:^width$}", def.name, width = widths[c]));
        out.push(' ');
    }
    out.push('\n');
    for (c, w) in widths.iter().enumerate() {
        if c > 0 {
            out.push('+');
        }
        out.push_str(&"-".repeat(w + 2));
    }
    out.push('\n');
    for row in &cells {
        for (c, cell) in row.iter().enumerate() {
            if c > 0 {
                out.push('|');
            }
            out.push(' ');
            if frame.schema()[c].ty.is_numeric() {
                out.push_str(&format!("{:>width$}", cell, width = widths[c]));
            } else {
                out.push_str(&format!("{:<width$}", cell, width = widths[c]));
            }
            out.push(' ');
        }
        out.push('\n');
    }
    let n = frame.num_rows();
    out.push_str(&format!("({n} row{})\n", if n == 1 { "" } else { "s" }));
    out
}

/// Renders a full statement outcome: the result table for row-producing
/// statements, the command tag (`CREATE DATASET 1`) for commands. Execution
/// statistics are *not* included — front ends opt into them via
/// [`render_stats`] (the CLI's `\timing`).
pub fn render_outcome(outcome: &QueryOutcome) -> String {
    match outcome {
        QueryOutcome::Rows { frame, .. } => render_frame(frame),
        QueryOutcome::Command(status) => format!("{status}\n"),
    }
}

/// Renders the one-row statistics frame of an outcome as a compact
/// `name: value` line, e.g. `elapsed_ms: 12.51, outliers: 4`. Empty when the
/// statement measured nothing.
pub fn render_stats(outcome: &QueryOutcome) -> String {
    let Some(stats) = outcome.stats() else {
        return String::new();
    };
    let mut parts = Vec::with_capacity(stats.num_columns());
    if let Some(row) = stats.rows().next() {
        for (def, value) in stats.schema().iter().zip(row) {
            parts.push(format!("{}: {}", def.name, value));
        }
    }
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{CommandStatus, CommandTag};
    use crate::value::{Value, ValueType};

    fn frame() -> Frame {
        let mut f = Frame::with_columns(&[
            ("dataset", ValueType::Text),
            ("points", ValueType::Int),
            ("elapsed", ValueType::Float),
        ]);
        f.push_row(vec![
            Value::from("flights"),
            Value::Int(540),
            Value::Float(1.5),
        ])
        .unwrap();
        f.push_row(vec![Value::from("ships"), Value::Null, Value::Float(0.25)])
            .unwrap();
        f
    }

    #[test]
    fn table_is_aligned_and_counts_rows() {
        let text = render_frame(&frame());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("dataset"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[1].contains('+'));
        // Numeric columns right-aligned: the int 540 ends at its column edge.
        assert!(lines[2].contains("540 |"), "{text}");
        assert!(text.ends_with("(2 rows)\n"));
        let one_row = {
            let mut f = Frame::with_columns(&[("n", ValueType::Int)]);
            f.push_row(vec![Value::Int(1)]).unwrap();
            f
        };
        assert!(render_frame(&one_row).ends_with("(1 row)\n"));
    }

    #[test]
    fn outcome_rendering() {
        let cmd = QueryOutcome::Command(CommandStatus {
            tag: CommandTag::CreateDataset,
            affected: 1,
        });
        assert_eq!(render_outcome(&cmd), "CREATE DATASET 1\n");
        assert_eq!(render_stats(&cmd), "");

        let mut stats = Frame::with_columns(&[
            ("elapsed_ms", ValueType::Float),
            ("outliers", ValueType::Int),
        ]);
        stats
            .push_row(vec![Value::Float(12.5), Value::Int(4)])
            .unwrap();
        let rows = QueryOutcome::Rows {
            frame: frame(),
            stats: Some(stats),
        };
        assert_eq!(render_stats(&rows), "elapsed_ms: 12.5, outliers: 4");
        assert!(render_outcome(&rows).contains("flights"));
    }
}
