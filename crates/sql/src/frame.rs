//! Columnar, schema-carrying result frames — the typed replacement for the
//! stringly `columns: Vec<String> / rows: Vec<Vec<String>>` result tables.
//!
//! A [`Frame`] stores one `Vec<Value>` per column plus a schema of
//! [`ColumnDef`]s, so consumers (the CLI renderer, tests, future wire
//! protocols) read `Timestamp`/`Float` cells as what they are. DDL and
//! utility statements do not produce rows at all: they complete with a
//! [`CommandStatus`], PostgreSQL-command-tag style. [`QueryOutcome`] is the
//! sum of the two.

use crate::value::{Value, ValueType};
use std::fmt;

/// Name and type of one frame column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type; cells are values of this type or [`Value::Null`].
    pub ty: ValueType,
}

impl ColumnDef {
    /// Creates a column definition.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
        }
    }
}

/// A typed, columnar query result: a schema plus one value vector per column.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    schema: Vec<ColumnDef>,
    columns: Vec<Vec<Value>>,
}

impl Frame {
    /// Creates an empty frame with the given schema.
    pub fn new(schema: Vec<ColumnDef>) -> Self {
        let columns = schema.iter().map(|_| Vec::new()).collect();
        Frame { schema, columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn with_columns(defs: &[(&str, ValueType)]) -> Self {
        Frame::new(
            defs.iter()
                .map(|(name, ty)| ColumnDef::new(*name, *ty))
                .collect(),
        )
    }

    /// The frame schema.
    pub fn schema(&self) -> &[ColumnDef] {
        &self.schema
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.schema.len()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map(Vec::len).unwrap_or(0)
    }

    /// True when the frame holds no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Index of the column named `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema.iter().position(|c| c.name == name)
    }

    /// The values of the column named `name`.
    pub fn column(&self, name: &str) -> Option<&[Value]> {
        self.column_index(name).map(|i| self.columns[i].as_slice())
    }

    /// The cell at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> &Value {
        &self.columns[col][row]
    }

    /// The cell at `row` in the column named `name`.
    pub fn get(&self, row: usize, name: &str) -> Option<&Value> {
        self.column(name).and_then(|c| c.get(row))
    }

    /// Iterates over the rows, materializing each as a `Vec<&Value>`.
    pub fn rows(&self) -> impl Iterator<Item = Vec<&Value>> + '_ {
        (0..self.num_rows()).map(move |r| self.columns.iter().map(|c| &c[r]).collect())
    }

    /// Appends one row. Each cell must match its column's type or be
    /// [`Value::Null`]; on mismatch the frame is unchanged and an error
    /// naming the offending column is returned.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), String> {
        if row.len() != self.schema.len() {
            return Err(format!(
                "row has {} cells but the frame has {} columns",
                row.len(),
                self.schema.len()
            ));
        }
        for (cell, def) in row.iter().zip(&self.schema) {
            if let Some(ty) = cell.type_of() {
                if ty != def.ty {
                    return Err(format!(
                        "column '{}' holds {} values, got {}",
                        def.name, def.ty, ty
                    ));
                }
            }
        }
        for (column, cell) in self.columns.iter_mut().zip(row) {
            column.push(cell);
        }
        Ok(())
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::fmt::render_frame(self))
    }
}

/// What a completed DDL/utility command did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandTag {
    /// `CREATE DATASET`.
    CreateDataset,
    /// `DROP DATASET`.
    DropDataset,
    /// `BUILD INDEX`.
    BuildIndex,
    /// A bulk trajectory load (the server's ingest path; there is no SQL
    /// spelling — clients send it as a protocol message).
    Ingest,
    /// `SET threads = N` (the affected count carries the new value).
    Set,
    /// `CHECKPOINT` (the affected count carries the snapshot size in bytes).
    Checkpoint,
}

impl fmt::Display for CommandTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self {
            CommandTag::CreateDataset => "CREATE DATASET",
            CommandTag::DropDataset => "DROP DATASET",
            CommandTag::BuildIndex => "BUILD INDEX",
            CommandTag::Ingest => "INGEST",
            CommandTag::Set => "SET",
            CommandTag::Checkpoint => "CHECKPOINT",
        };
        f.write_str(tag)
    }
}

/// Typed completion status of a statement that returns no rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandStatus {
    /// Which command completed.
    pub tag: CommandTag,
    /// Objects affected: datasets created/dropped, trajectories indexed.
    pub affected: u64,
}

impl fmt::Display for CommandStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.tag, self.affected)
    }
}

/// The result of executing one statement: rows or a command status.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// A query produced rows, and possibly a one-row frame of typed
    /// execution statistics (elapsed milliseconds, outlier counts, reuse
    /// counters) rendered by `\timing`-style front ends.
    Rows {
        /// The result rows.
        frame: Frame,
        /// Typed per-execution statistics, when the statement measures any.
        stats: Option<Frame>,
    },
    /// A DDL/utility command completed without producing rows.
    Command(CommandStatus),
}

impl QueryOutcome {
    /// Wraps a frame with no statistics.
    pub fn rows(frame: Frame) -> Self {
        QueryOutcome::Rows { frame, stats: None }
    }

    /// The result frame, if the statement produced rows.
    pub fn frame(&self) -> Option<&Frame> {
        match self {
            QueryOutcome::Rows { frame, .. } => Some(frame),
            QueryOutcome::Command(_) => None,
        }
    }

    /// The statistics frame, if the statement measured any.
    pub fn stats(&self) -> Option<&Frame> {
        match self {
            QueryOutcome::Rows { stats, .. } => stats.as_ref(),
            QueryOutcome::Command(_) => None,
        }
    }

    /// The command status, if the statement was a command.
    pub fn command(&self) -> Option<&CommandStatus> {
        match self {
            QueryOutcome::Rows { .. } => None,
            QueryOutcome::Command(status) => Some(status),
        }
    }

    /// Number of result rows (0 for commands).
    pub fn num_rows(&self) -> usize {
        self.frame().map(Frame::num_rows).unwrap_or(0)
    }

    /// The result frame, panicking with `context` when the statement was a
    /// command. For callers (tests, examples) that know the statement kind.
    pub fn expect_frame(&self, context: &str) -> &Frame {
        self.frame()
            .unwrap_or_else(|| panic!("expected rows, got a command status: {context}"))
    }
}

impl fmt::Display for QueryOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::fmt::render_outcome(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        let mut f = Frame::with_columns(&[("name", ValueType::Text), ("n", ValueType::Int)]);
        f.push_row(vec![Value::from("ships"), Value::Int(3)])
            .unwrap();
        f.push_row(vec![Value::from("flights"), Value::Null])
            .unwrap();
        f
    }

    #[test]
    fn shape_and_access() {
        let f = sample();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.num_columns(), 2);
        assert!(!f.is_empty());
        assert_eq!(f.column_index("n"), Some(1));
        assert_eq!(f.get(0, "n"), Some(&Value::Int(3)));
        assert_eq!(f.value(1, 1), &Value::Null);
        assert_eq!(f.rows().count(), 2);
        assert_eq!(f.column("missing"), None);
    }

    #[test]
    fn push_row_type_checks() {
        let mut f = sample();
        let err = f.push_row(vec![Value::Int(1), Value::Int(2)]).unwrap_err();
        assert!(err.contains("'name'"), "{err}");
        let err = f.push_row(vec![Value::from("x")]).unwrap_err();
        assert!(err.contains("2 columns"), "{err}");
        // Nulls are admissible in any column.
        f.push_row(vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(f.num_rows(), 3);
    }

    #[test]
    fn outcome_accessors() {
        let rows = QueryOutcome::rows(sample());
        assert_eq!(rows.num_rows(), 2);
        assert!(rows.command().is_none());
        assert!(rows.stats().is_none());
        assert_eq!(rows.expect_frame("test").num_columns(), 2);

        let cmd = QueryOutcome::Command(CommandStatus {
            tag: CommandTag::BuildIndex,
            affected: 18,
        });
        assert_eq!(cmd.num_rows(), 0);
        assert!(cmd.frame().is_none());
        assert_eq!(cmd.command().unwrap().to_string(), "BUILD INDEX 18");
    }
}
