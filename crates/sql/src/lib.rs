//! # hermes-sql
//!
//! The SQL face of the engine: the demo's selling point is that
//! sub-trajectory clustering runs "via simple SQL" inside the DBMS, e.g.
//!
//! ```sql
//! SELECT QUT(D, Wi, We, τ, δ, t, d, γ);
//! ```
//!
//! This crate implements a small SQL dialect covering exactly the statements
//! the demonstration walks through, parsed by a hand-written recursive
//! descent parser and executed against a [`HermesEngine`]:
//!
//! | Statement | Effect |
//! |---|---|
//! | `CREATE DATASET name;` | register a dataset |
//! | `DROP DATASET name;` | remove it |
//! | `SHOW DATASETS;` | list registered datasets |
//! | `BUILD INDEX ON name WITH CHUNK <hours> HOURS [SIGMA <σ> EPSILON <ε>];` | build the ReTraTree (σ/ε tune the per-sub-chunk S2T runs) |
//! | `SELECT INFO(name);` | dataset summary |
//! | `SELECT S2T(name, σ, τ, δ, t, ε);` | whole-dataset sub-trajectory clustering |
//! | `SELECT S2T_NAIVE(name, σ, τ, δ, t, ε);` | the index-free baseline |
//! | `SELECT QUT(name, Wi, We, τ, δ, t, d, γ);` | window-constrained clustering from the ReTraTree |
//! | `SELECT QUT_REBUILD(name, Wi, We, τ, δ, t);` | the rebuild-from-scratch strategy QuT is compared against |
//! | `SELECT RANGE(name, Wi, We);` | temporal range query (row count) |
//! | `SELECT HISTOGRAM(name, Wi, We, bucket_ms);` | cluster-cardinality time histogram over the window (Fig. 1 middle) |
//!
//! Numeric parameters follow the paper's ordering; times are milliseconds.
//!
//! [`HermesEngine`]: hermes_core::HermesEngine

pub mod executor;
pub mod parser;

pub use executor::{execute, QueryResult};
pub use parser::{parse, ParseError, Statement};
