//! # hermes-sql
//!
//! The SQL face of the engine: the demo's selling point is that
//! sub-trajectory clustering runs "via simple SQL" inside the DBMS, e.g.
//!
//! ```sql
//! SELECT QUT(D, Wi, We, τ, δ, t, d, γ);
//! ```
//!
//! This crate implements a small SQL dialect covering exactly the statements
//! the demonstration walks through, parsed by a hand-written recursive
//! descent parser and executed against a [`HermesEngine`]:
//!
//! | Statement | Effect | Result |
//! |---|---|---|
//! | `CREATE DATASET name;` | register a dataset | command status |
//! | `DROP DATASET name;` | remove it | command status |
//! | `SHOW DATASETS;` | list registered datasets | frame |
//! | `BUILD INDEX ON name WITH CHUNK <hours> HOURS [SIGMA <σ>] [EPSILON <ε>];` | build the ReTraTree (σ/ε tune the per-sub-chunk S2T runs) | command status (trajectories indexed) |
//! | `SELECT INFO(name);` | dataset summary | frame |
//! | `SELECT S2T(name, σ, τ, δ, t, ε);` | whole-dataset sub-trajectory clustering | frame + stats |
//! | `SELECT S2T_NAIVE(name, σ, τ, δ, t, ε);` | the index-free baseline | frame + stats |
//! | `SELECT QUT(name, Wi, We, τ, δ, t, d, γ);` | window-constrained clustering from the ReTraTree | frame + stats |
//! | `SELECT QUT_REBUILD(name, Wi, We, τ, δ, t);` | the rebuild-from-scratch strategy QuT is compared against | frame + stats |
//! | `SELECT RANGE(name, Wi, We);` | temporal range query (row count) | frame |
//! | `SELECT HISTOGRAM(name, Wi, We, bucket_ms);` | cluster-cardinality time histogram over the window (Fig. 1 middle) | frame |
//! | `CHECKPOINT;` | snapshot the engine state, truncate the WAL (durable engines only, see `docs/STORAGE.md`) | command status (snapshot bytes) |
//! | `SHOW TRACES;` | list recently traced statements (served at the serving edge, see `docs/OBSERVABILITY.md`) | frame |
//! | `SHOW TRACE <id>;` | span tree of one trace | frame |
//!
//! Numeric parameters follow the paper's ordering; times are milliseconds.
//!
//! ## Placeholders and prepared statements
//!
//! Every numeric argument position also accepts a PostgreSQL-style `$n`
//! placeholder (1-based):
//!
//! ```sql
//! SELECT QUT(data, $1, $2, 0.35, 0.05, 300000, 6000, 1800000);
//! ```
//!
//! A statement with placeholders is prepared through a [`Session`], which
//! parses it once and binds typed [`Value`]s (ints, floats, timestamps,
//! intervals) per execution — see [`Session::prepare`] and
//! [`Session::execute_prepared`]. Results come back as columnar, typed
//! [`Frame`]s (or a [`CommandStatus`] for DDL); rendering to text happens
//! only at the display edge, in [`fmt`].
//!
//! [`HermesEngine`]: hermes_core::HermesEngine

#![deny(missing_docs)]

pub mod backend;
pub mod executor;
pub mod fmt;
pub mod frame;
pub mod parser;
pub mod session;
pub mod value;

pub use backend::EngineBackend;
pub use executor::{
    clusters_frame, execute, execute_read_statement, execute_statement, histogram_frame,
    info_frame, is_write_statement, push_stat, push_trace_span, push_trace_summary,
    qut_stats_frame, range_frame, s2t_stats_frame, sort_stats_rows, stats_frame, trace_frame,
    traces_frame, SqlError,
};
pub use frame::{ColumnDef, CommandStatus, CommandTag, Frame, QueryOutcome};
pub use parser::{parse, ParseError, Scalar, Statement};
pub use session::{Prepared, Session, SessionStats};
pub use value::{Value, ValueType};
