//! Lexer, AST and recursive-descent parser for the Hermes SQL dialect.

use std::fmt;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE DATASET name;`
    CreateDataset {
        /// Dataset name.
        name: String,
    },
    /// `DROP DATASET name;`
    DropDataset {
        /// Dataset name.
        name: String,
    },
    /// `SHOW DATASETS;`
    ShowDatasets,
    /// `BUILD INDEX ON name WITH CHUNK h HOURS [SIGMA s EPSILON e];`
    BuildIndex {
        /// Dataset name.
        name: String,
        /// Chunk duration in hours.
        chunk_hours: f64,
        /// Optional voting bandwidth σ for the per-sub-chunk S2T runs.
        sigma: Option<f64>,
        /// Optional clustering distance bound ε for the per-sub-chunk S2T runs.
        epsilon: Option<f64>,
    },
    /// `SELECT INFO(name);`
    Info {
        /// Dataset name.
        name: String,
    },
    /// `SELECT S2T(name, sigma, tau, delta, t, epsilon);` — `naive` selects
    /// the index-free variant (`S2T_NAIVE`).
    S2T {
        /// Dataset name.
        name: String,
        /// Voting kernel bandwidth σ.
        sigma: f64,
        /// Segmentation threshold τ.
        tau: f64,
        /// Sampling stop criterion δ.
        delta: f64,
        /// Minimum sub-trajectory duration `t` in milliseconds.
        min_duration_ms: i64,
        /// Clustering distance bound ε.
        epsilon: f64,
        /// Use the index-free voting baseline.
        naive: bool,
    },
    /// `SELECT QUT(name, Wi, We, tau, delta, t, d, gamma);` — `rebuild`
    /// selects the range-query-then-recluster strategy (`QUT_REBUILD`, which
    /// takes only `Wi, We, tau, delta, t`).
    Qut {
        /// Dataset name.
        name: String,
        /// Window start (ms).
        wi: i64,
        /// Window end (ms).
        we: i64,
        /// Segmentation threshold τ.
        tau: f64,
        /// Sampling stop criterion δ.
        delta: f64,
        /// Minimum sub-trajectory duration `t` in milliseconds.
        min_duration_ms: i64,
        /// Merge distance `d` (unused for the rebuild strategy).
        merge_distance: f64,
        /// Merge gap `γ` in milliseconds (unused for the rebuild strategy).
        merge_gap_ms: i64,
        /// Use the rebuild-from-scratch strategy.
        rebuild: bool,
    },
    /// `SELECT RANGE(name, Wi, We);`
    Range {
        /// Dataset name.
        name: String,
        /// Window start (ms).
        wi: i64,
        /// Window end (ms).
        we: i64,
    },
    /// `SELECT HISTOGRAM(name, Wi, We, bucket_ms);` — the cluster-cardinality
    /// time histogram of Fig. 1 (middle) over the clustering of window `W`.
    Histogram {
        /// Dataset name.
        name: String,
        /// Window start (ms).
        wi: i64,
        /// Window end (ms).
        we: i64,
        /// Histogram bucket width in milliseconds.
        bucket_ms: i64,
    },
}

/// A parse failure with a human-readable description.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    LParen,
    RParen,
    Comma,
    Semicolon,
}

fn lex(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != quote {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(ParseError("unterminated string literal".into()));
                }
                tokens.push(Token::Ident(chars[start..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let start = i;
                i += 1;
                while i < chars.len()
                    && (chars[i].is_ascii_digit() || chars[i] == '.' || chars[i] == 'e' || chars[i] == 'E')
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value = text
                    .parse::<f64>()
                    .map_err(|_| ParseError(format!("invalid number '{text}'")))?;
                tokens.push(Token::Number(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(ParseError(format!("unexpected character '{other}'"))),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseError("unexpected end of statement".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(ParseError(format!("expected '{kw}', found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(ParseError(format!("expected an identifier, found {other:?}"))),
        }
    }

    fn expect_token(&mut self, t: Token) -> Result<(), ParseError> {
        let got = self.next()?;
        if got == t {
            Ok(())
        } else {
            Err(ParseError(format!("expected {t:?}, found {got:?}")))
        }
    }

    fn expect_number(&mut self) -> Result<f64, ParseError> {
        match self.next()? {
            Token::Number(n) => Ok(n),
            other => Err(ParseError(format!("expected a number, found {other:?}"))),
        }
    }

    /// Parses `name, n1, n2, …` inside parentheses, given the expected number
    /// of numeric arguments.
    fn call_args(&mut self, expected_numbers: usize) -> Result<(String, Vec<f64>), ParseError> {
        self.expect_token(Token::LParen)?;
        let name = self.expect_ident()?;
        let mut numbers = Vec::with_capacity(expected_numbers);
        for _ in 0..expected_numbers {
            self.expect_token(Token::Comma)?;
            numbers.push(self.expect_number()?);
        }
        self.expect_token(Token::RParen)?;
        Ok((name, numbers))
    }

    fn finish(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), Some(Token::Semicolon)) {
            self.pos += 1;
        }
        if self.pos != self.tokens.len() {
            return Err(ParseError("trailing tokens after statement".into()));
        }
        Ok(())
    }
}

/// Parses one statement.
pub fn parse(input: &str) -> Result<Statement, ParseError> {
    let tokens = lex(input)?;
    if tokens.is_empty() {
        return Err(ParseError("empty statement".into()));
    }
    let mut p = Parser { tokens, pos: 0 };
    let head = p.expect_ident()?;
    let stmt = if head.eq_ignore_ascii_case("create") {
        p.expect_keyword("dataset")?;
        Statement::CreateDataset {
            name: p.expect_ident()?,
        }
    } else if head.eq_ignore_ascii_case("drop") {
        p.expect_keyword("dataset")?;
        Statement::DropDataset {
            name: p.expect_ident()?,
        }
    } else if head.eq_ignore_ascii_case("show") {
        p.expect_keyword("datasets")?;
        Statement::ShowDatasets
    } else if head.eq_ignore_ascii_case("build") {
        p.expect_keyword("index")?;
        p.expect_keyword("on")?;
        let name = p.expect_ident()?;
        p.expect_keyword("with")?;
        p.expect_keyword("chunk")?;
        let chunk_hours = p.expect_number()?;
        p.expect_keyword("hours")?;
        let mut sigma = None;
        let mut epsilon = None;
        if matches!(p.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("sigma")) {
            p.expect_keyword("sigma")?;
            sigma = Some(p.expect_number()?);
            p.expect_keyword("epsilon")?;
            epsilon = Some(p.expect_number()?);
        }
        Statement::BuildIndex {
            name,
            chunk_hours,
            sigma,
            epsilon,
        }
    } else if head.eq_ignore_ascii_case("select") {
        let func = p.expect_ident()?;
        if func.eq_ignore_ascii_case("info") {
            let (name, _) = p.call_args(0)?;
            Statement::Info { name }
        } else if func.eq_ignore_ascii_case("s2t") || func.eq_ignore_ascii_case("s2t_naive") {
            let (name, args) = p.call_args(5)?;
            Statement::S2T {
                name,
                sigma: args[0],
                tau: args[1],
                delta: args[2],
                min_duration_ms: args[3] as i64,
                epsilon: args[4],
                naive: func.eq_ignore_ascii_case("s2t_naive"),
            }
        } else if func.eq_ignore_ascii_case("qut") {
            let (name, args) = p.call_args(7)?;
            Statement::Qut {
                name,
                wi: args[0] as i64,
                we: args[1] as i64,
                tau: args[2],
                delta: args[3],
                min_duration_ms: args[4] as i64,
                merge_distance: args[5],
                merge_gap_ms: args[6] as i64,
                rebuild: false,
            }
        } else if func.eq_ignore_ascii_case("qut_rebuild") {
            let (name, args) = p.call_args(5)?;
            Statement::Qut {
                name,
                wi: args[0] as i64,
                we: args[1] as i64,
                tau: args[2],
                delta: args[3],
                min_duration_ms: args[4] as i64,
                merge_distance: 0.0,
                merge_gap_ms: 0,
                rebuild: true,
            }
        } else if func.eq_ignore_ascii_case("range") {
            let (name, args) = p.call_args(2)?;
            Statement::Range {
                name,
                wi: args[0] as i64,
                we: args[1] as i64,
            }
        } else if func.eq_ignore_ascii_case("histogram") {
            let (name, args) = p.call_args(3)?;
            Statement::Histogram {
                name,
                wi: args[0] as i64,
                we: args[1] as i64,
                bucket_ms: args[2] as i64,
            }
        } else {
            return Err(ParseError(format!("unknown function '{func}'")));
        }
    } else {
        return Err(ParseError(format!("unknown statement '{head}'")));
    };
    p.finish()?;
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddl_statements() {
        assert_eq!(
            parse("CREATE DATASET flights;").unwrap(),
            Statement::CreateDataset {
                name: "flights".into()
            }
        );
        assert_eq!(
            parse("drop dataset flights").unwrap(),
            Statement::DropDataset {
                name: "flights".into()
            }
        );
        assert_eq!(parse("SHOW DATASETS;").unwrap(), Statement::ShowDatasets);
        assert_eq!(
            parse("BUILD INDEX ON flights WITH CHUNK 6 HOURS;").unwrap(),
            Statement::BuildIndex {
                name: "flights".into(),
                chunk_hours: 6.0,
                sigma: None,
                epsilon: None,
            }
        );
        assert_eq!(
            parse("BUILD INDEX ON flights WITH CHUNK 2 HOURS SIGMA 2000 EPSILON 6000;").unwrap(),
            Statement::BuildIndex {
                name: "flights".into(),
                chunk_hours: 2.0,
                sigma: Some(2000.0),
                epsilon: Some(6000.0),
            }
        );
    }

    #[test]
    fn s2t_call_matches_the_paper_signature() {
        let stmt = parse("SELECT S2T(flights, 2000, 0.35, 0.05, 120000, 5000);").unwrap();
        assert_eq!(
            stmt,
            Statement::S2T {
                name: "flights".into(),
                sigma: 2000.0,
                tau: 0.35,
                delta: 0.05,
                min_duration_ms: 120_000,
                epsilon: 5000.0,
                naive: false,
            }
        );
        let naive = parse("SELECT S2T_NAIVE('flights', 2000, 0.35, 0.05, 120000, 5000);").unwrap();
        assert!(matches!(naive, Statement::S2T { naive: true, .. }));
    }

    #[test]
    fn qut_call_matches_the_paper_signature() {
        // SELECT QUT(D, Wi, We, τ, δ, t, d, γ);
        let stmt = parse("SELECT QUT(flights, 0, 7200000, 0.35, 0.05, 120000, 3000, 1800000);").unwrap();
        assert_eq!(
            stmt,
            Statement::Qut {
                name: "flights".into(),
                wi: 0,
                we: 7_200_000,
                tau: 0.35,
                delta: 0.05,
                min_duration_ms: 120_000,
                merge_distance: 3000.0,
                merge_gap_ms: 1_800_000,
                rebuild: false,
            }
        );
        let rebuild = parse("SELECT QUT_REBUILD(flights, 0, 7200000, 0.35, 0.05, 120000);").unwrap();
        assert!(matches!(rebuild, Statement::Qut { rebuild: true, .. }));
    }

    #[test]
    fn range_and_info() {
        assert_eq!(
            parse("SELECT RANGE(flights, 0, 3600000);").unwrap(),
            Statement::Range {
                name: "flights".into(),
                wi: 0,
                we: 3_600_000
            }
        );
        assert_eq!(
            parse("SELECT INFO(flights);").unwrap(),
            Statement::Info {
                name: "flights".into()
            }
        );
        assert_eq!(
            parse("SELECT HISTOGRAM(flights, 0, 7200000, 900000);").unwrap(),
            Statement::Histogram {
                name: "flights".into(),
                wi: 0,
                we: 7_200_000,
                bucket_ms: 900_000
            }
        );
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse("").unwrap_err().0.contains("empty"));
        assert!(parse("SELECT NOPE(flights);").unwrap_err().0.contains("unknown function"));
        assert!(parse("CREATE TABLE x;").unwrap_err().0.contains("expected 'dataset'"));
        assert!(parse("SELECT S2T(flights, 1, 2);").is_err());
        assert!(parse("SELECT RANGE(flights, 0, 10) extra;").unwrap_err().0.contains("trailing"));
        assert!(parse("SELECT RANGE(flights, 0, 'ten');").is_err());
        assert!(parse("SELECT INFO('unterminated);").unwrap_err().0.contains("unterminated"));
        assert!(parse("€").is_err());
    }

    #[test]
    fn negative_and_scientific_numbers() {
        let stmt = parse("SELECT RANGE(flights, -3600000, 1e7);").unwrap();
        assert_eq!(
            stmt,
            Statement::Range {
                name: "flights".into(),
                wi: -3_600_000,
                we: 10_000_000
            }
        );
    }
}
