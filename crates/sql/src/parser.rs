//! Lexer, AST and recursive-descent parser for the Hermes SQL dialect.
//!
//! Numeric argument positions accept either a literal or a `$n` placeholder
//! (1-based, PostgreSQL style). A statement with placeholders is *prepared*:
//! it parses once and is completed per execution by [`Statement::bind`],
//! which substitutes [`Value`]s for the placeholders without re-parsing.

use crate::value::{fmt_float, Value};
use std::fmt;

/// A numeric argument position: a literal value or a `$n` placeholder
/// awaiting a bind.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// A literal parsed from the statement text.
    Lit(Value),
    /// The 1-based placeholder `$n`.
    Param(usize),
}

impl Scalar {
    /// Literal integer shorthand.
    pub fn int(v: i64) -> Self {
        Scalar::Lit(Value::Int(v))
    }

    /// Literal float shorthand.
    pub fn float(v: f64) -> Self {
        Scalar::Lit(Value::Float(v))
    }

    /// The scalar as an `f64`; errors on unbound placeholders and non-numeric
    /// bound values.
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Scalar::Lit(v) => v
                .as_f64()
                .or_else(|| v.as_i64().map(|i| i as f64))
                .ok_or_else(|| format!("expected a number, got {v:?}")),
            Scalar::Param(n) => Err(format!("placeholder ${n} is unbound")),
        }
    }

    /// The scalar as an `i64` (integers, integral floats, timestamps and
    /// intervals as milliseconds); errors on unbound placeholders.
    pub fn as_i64(&self) -> Result<i64, String> {
        match self {
            Scalar::Lit(v) => v
                .as_i64()
                .ok_or_else(|| format!("expected an integer, got {v:?}")),
            Scalar::Param(n) => Err(format!("placeholder ${n} is unbound")),
        }
    }

    fn bind_with(&self, params: &[Value]) -> Result<Scalar, ParseError> {
        match self {
            Scalar::Lit(v) => Ok(Scalar::Lit(v.clone())),
            Scalar::Param(n) => n
                .checked_sub(1)
                .and_then(|i| params.get(i))
                .map(|v| Scalar::Lit(v.clone()))
                .ok_or_else(|| {
                    ParseError(format!(
                        "no value bound for placeholder ${n} ({} provided)",
                        params.len()
                    ))
                }),
        }
    }

    fn param_index(&self) -> usize {
        match self {
            Scalar::Lit(_) => 0,
            // A hand-built `Param(0)` (the lexer rejects `$0`) still counts
            // as a placeholder so `is_fully_bound` cannot claim otherwise.
            Scalar::Param(n) => (*n).max(1),
        }
    }
}

impl From<i64> for Scalar {
    fn from(v: i64) -> Self {
        Scalar::int(v)
    }
}

impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar::float(v)
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Lit(Value::Float(v)) => f.write_str(&fmt_float(*v)),
            Scalar::Lit(v) => write!(f, "{v}"),
            Scalar::Param(n) => write!(f, "${n}"),
        }
    }
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE DATASET name;`
    CreateDataset {
        /// Dataset name.
        name: String,
    },
    /// `DROP DATASET name;`
    DropDataset {
        /// Dataset name.
        name: String,
    },
    /// `SHOW DATASETS;`
    ShowDatasets,
    /// `SHOW STATS;` — engine resource counters (buffer pool hits/misses,
    /// indexed partitions), plus whatever scope the executing front end adds
    /// (session parse/cache counters, server connection metrics).
    ShowStats,
    /// `SHOW TRACES;` — summaries of the traces in the serving edge's
    /// in-process span store, newest first. Embedded (non-server) sessions
    /// have no span store and answer with an empty frame.
    ShowTraces,
    /// `SHOW TRACE <id>;` — the recorded spans of one trace as a flat
    /// parent-linked tree. Embedded sessions answer with an empty frame.
    ShowTrace {
        /// The trace id to look up.
        id: Scalar,
    },
    /// `SET threads = N;` — intra-query parallelism: how many compute
    /// threads S2T/QuT/`BUILD INDEX` may fan out on (1 = serial). `N = 0` is
    /// rejected at execution with a descriptive error.
    SetThreads {
        /// The requested thread count.
        threads: Scalar,
    },
    /// `SHOW THREADS;` — the current thread count as a one-row frame.
    ShowThreads,
    /// `CHECKPOINT;` — write a snapshot of the whole engine state and
    /// truncate the write-ahead log. Only meaningful on an engine opened
    /// over a data directory; in-memory engines reject it at execution.
    Checkpoint,
    /// `BUILD INDEX ON name WITH CHUNK h HOURS [SIGMA s] [EPSILON e];`
    BuildIndex {
        /// Dataset name.
        name: String,
        /// Chunk duration in hours.
        chunk_hours: Scalar,
        /// Optional voting bandwidth σ for the per-sub-chunk S2T runs.
        sigma: Option<Scalar>,
        /// Optional clustering distance bound ε for the per-sub-chunk S2T runs.
        epsilon: Option<Scalar>,
    },
    /// `SELECT INFO(name);`
    Info {
        /// Dataset name.
        name: String,
    },
    /// `SELECT S2T(name, sigma, tau, delta, t, epsilon);` — `naive` selects
    /// the index-free variant (`S2T_NAIVE`).
    S2T {
        /// Dataset name.
        name: String,
        /// Voting kernel bandwidth σ.
        sigma: Scalar,
        /// Segmentation threshold τ.
        tau: Scalar,
        /// Sampling stop criterion δ.
        delta: Scalar,
        /// Minimum sub-trajectory duration `t` in milliseconds.
        min_duration_ms: Scalar,
        /// Clustering distance bound ε.
        epsilon: Scalar,
        /// Use the index-free voting baseline.
        naive: bool,
    },
    /// `SELECT QUT(name, Wi, We, tau, delta, t, d, gamma);` — `rebuild`
    /// selects the range-query-then-recluster strategy (`QUT_REBUILD`, which
    /// takes only `Wi, We, tau, delta, t`).
    Qut {
        /// Dataset name.
        name: String,
        /// Window start (ms).
        wi: Scalar,
        /// Window end (ms).
        we: Scalar,
        /// Segmentation threshold τ.
        tau: Scalar,
        /// Sampling stop criterion δ.
        delta: Scalar,
        /// Minimum sub-trajectory duration `t` in milliseconds.
        min_duration_ms: Scalar,
        /// Merge distance `d` (unused for the rebuild strategy).
        merge_distance: Scalar,
        /// Merge gap `γ` in milliseconds (unused for the rebuild strategy).
        merge_gap_ms: Scalar,
        /// Use the rebuild-from-scratch strategy.
        rebuild: bool,
    },
    /// `SELECT RANGE(name, Wi, We);`
    Range {
        /// Dataset name.
        name: String,
        /// Window start (ms).
        wi: Scalar,
        /// Window end (ms).
        we: Scalar,
    },
    /// `SELECT HISTOGRAM(name, Wi, We, bucket_ms);` — the cluster-cardinality
    /// time histogram of Fig. 1 (middle) over the clustering of window `W`.
    Histogram {
        /// Dataset name.
        name: String,
        /// Window start (ms).
        wi: Scalar,
        /// Window end (ms).
        we: Scalar,
        /// Histogram bucket width in milliseconds.
        bucket_ms: Scalar,
    },
}

impl Statement {
    fn scalars(&self) -> Vec<&Scalar> {
        match self {
            Statement::CreateDataset { .. }
            | Statement::DropDataset { .. }
            | Statement::ShowDatasets
            | Statement::ShowStats
            | Statement::ShowTraces
            | Statement::ShowThreads
            | Statement::Checkpoint
            | Statement::Info { .. } => Vec::new(),
            Statement::ShowTrace { id } => vec![id],
            Statement::SetThreads { threads } => vec![threads],
            Statement::BuildIndex {
                chunk_hours,
                sigma,
                epsilon,
                ..
            } => std::iter::once(chunk_hours)
                .chain(sigma.iter())
                .chain(epsilon.iter())
                .collect(),
            Statement::S2T {
                sigma,
                tau,
                delta,
                min_duration_ms,
                epsilon,
                ..
            } => vec![sigma, tau, delta, min_duration_ms, epsilon],
            Statement::Qut {
                wi,
                we,
                tau,
                delta,
                min_duration_ms,
                merge_distance,
                merge_gap_ms,
                ..
            } => vec![
                wi,
                we,
                tau,
                delta,
                min_duration_ms,
                merge_distance,
                merge_gap_ms,
            ],
            Statement::Range { wi, we, .. } => vec![wi, we],
            Statement::Histogram {
                wi, we, bucket_ms, ..
            } => vec![wi, we, bucket_ms],
        }
    }

    /// Number of parameters the statement expects: the highest `$n` used
    /// (0 when fully literal).
    pub fn num_placeholders(&self) -> usize {
        self.scalars()
            .into_iter()
            .map(Scalar::param_index)
            .max()
            .unwrap_or(0)
    }

    /// True when every argument position holds a literal.
    pub fn is_fully_bound(&self) -> bool {
        self.num_placeholders() == 0
    }

    /// Substitutes `params` (1-based: `params[0]` binds `$1`) for the
    /// placeholders, returning a fully bound copy. The receiver is unchanged,
    /// so a prepared statement binds any number of times without re-parsing.
    pub fn bind(&self, params: &[Value]) -> Result<Statement, ParseError> {
        let b = |s: &Scalar| s.bind_with(params);
        Ok(match self {
            Statement::CreateDataset { name } => Statement::CreateDataset { name: name.clone() },
            Statement::DropDataset { name } => Statement::DropDataset { name: name.clone() },
            Statement::ShowDatasets => Statement::ShowDatasets,
            Statement::ShowStats => Statement::ShowStats,
            Statement::ShowTraces => Statement::ShowTraces,
            Statement::ShowTrace { id } => Statement::ShowTrace { id: b(id)? },
            Statement::ShowThreads => Statement::ShowThreads,
            Statement::Checkpoint => Statement::Checkpoint,
            Statement::SetThreads { threads } => Statement::SetThreads {
                threads: b(threads)?,
            },
            Statement::Info { name } => Statement::Info { name: name.clone() },
            Statement::BuildIndex {
                name,
                chunk_hours,
                sigma,
                epsilon,
            } => Statement::BuildIndex {
                name: name.clone(),
                chunk_hours: b(chunk_hours)?,
                sigma: sigma.as_ref().map(&b).transpose()?,
                epsilon: epsilon.as_ref().map(&b).transpose()?,
            },
            Statement::S2T {
                name,
                sigma,
                tau,
                delta,
                min_duration_ms,
                epsilon,
                naive,
            } => Statement::S2T {
                name: name.clone(),
                sigma: b(sigma)?,
                tau: b(tau)?,
                delta: b(delta)?,
                min_duration_ms: b(min_duration_ms)?,
                epsilon: b(epsilon)?,
                naive: *naive,
            },
            Statement::Qut {
                name,
                wi,
                we,
                tau,
                delta,
                min_duration_ms,
                merge_distance,
                merge_gap_ms,
                rebuild,
            } => Statement::Qut {
                name: name.clone(),
                wi: b(wi)?,
                we: b(we)?,
                tau: b(tau)?,
                delta: b(delta)?,
                min_duration_ms: b(min_duration_ms)?,
                merge_distance: b(merge_distance)?,
                merge_gap_ms: b(merge_gap_ms)?,
                rebuild: *rebuild,
            },
            Statement::Range { name, wi, we } => Statement::Range {
                name: name.clone(),
                wi: b(wi)?,
                we: b(we)?,
            },
            Statement::Histogram {
                name,
                wi,
                we,
                bucket_ms,
            } => Statement::Histogram {
                name: name.clone(),
                wi: b(wi)?,
                we: b(we)?,
                bucket_ms: b(bucket_ms)?,
            },
        })
    }
}

impl fmt::Display for Statement {
    /// Renders the statement back to dialect text; `parse(render(stmt))`
    /// reproduces `stmt` (the round-trip property the test suite checks).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateDataset { name } => write!(f, "CREATE DATASET {name};"),
            Statement::DropDataset { name } => write!(f, "DROP DATASET {name};"),
            Statement::ShowDatasets => write!(f, "SHOW DATASETS;"),
            Statement::ShowStats => write!(f, "SHOW STATS;"),
            Statement::ShowTraces => write!(f, "SHOW TRACES;"),
            Statement::ShowTrace { id } => write!(f, "SHOW TRACE {id};"),
            Statement::ShowThreads => write!(f, "SHOW THREADS;"),
            Statement::Checkpoint => write!(f, "CHECKPOINT;"),
            Statement::SetThreads { threads } => write!(f, "SET threads = {threads};"),
            Statement::BuildIndex {
                name,
                chunk_hours,
                sigma,
                epsilon,
            } => {
                write!(f, "BUILD INDEX ON {name} WITH CHUNK {chunk_hours} HOURS")?;
                if let Some(s) = sigma {
                    write!(f, " SIGMA {s}")?;
                }
                if let Some(e) = epsilon {
                    write!(f, " EPSILON {e}")?;
                }
                write!(f, ";")
            }
            Statement::Info { name } => write!(f, "SELECT INFO({name});"),
            Statement::S2T {
                name,
                sigma,
                tau,
                delta,
                min_duration_ms,
                epsilon,
                naive,
            } => {
                let func = if *naive { "S2T_NAIVE" } else { "S2T" };
                write!(
                    f,
                    "SELECT {func}({name}, {sigma}, {tau}, {delta}, {min_duration_ms}, {epsilon});"
                )
            }
            Statement::Qut {
                name,
                wi,
                we,
                tau,
                delta,
                min_duration_ms,
                merge_distance,
                merge_gap_ms,
                rebuild,
            } => {
                if *rebuild {
                    write!(
                        f,
                        "SELECT QUT_REBUILD({name}, {wi}, {we}, {tau}, {delta}, {min_duration_ms});"
                    )
                } else {
                    write!(
                        f,
                        "SELECT QUT({name}, {wi}, {we}, {tau}, {delta}, {min_duration_ms}, {merge_distance}, {merge_gap_ms});"
                    )
                }
            }
            Statement::Range { name, wi, we } => write!(f, "SELECT RANGE({name}, {wi}, {we});"),
            Statement::Histogram {
                name,
                wi,
                we,
                bucket_ms,
            } => write!(f, "SELECT HISTOGRAM({name}, {wi}, {we}, {bucket_ms});"),
        }
    }
}

/// A parse failure with a human-readable description.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(Value),
    Placeholder(usize),
    LParen,
    RParen,
    Comma,
    Semicolon,
    Equals,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "'{s}'"),
            Token::Number(v) => write!(f, "number {v}"),
            Token::Placeholder(n) => write!(f, "placeholder ${n}"),
            Token::LParen => write!(f, "'('"),
            Token::RParen => write!(f, "')'"),
            Token::Comma => write!(f, "','"),
            Token::Semicolon => write!(f, "';'"),
            Token::Equals => write!(f, "'='"),
        }
    }
}

fn lex(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Equals);
                i += 1;
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(ParseError("expected digits after '$'".into()));
                }
                let text: String = chars[start..j].iter().collect();
                let n = text
                    .parse::<usize>()
                    .map_err(|_| ParseError(format!("invalid placeholder '${text}'")))?;
                if n == 0 {
                    return Err(ParseError("placeholders are numbered from $1".into()));
                }
                tokens.push(Token::Placeholder(n));
                i = j;
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != quote {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(ParseError("unterminated string literal".into()));
                }
                tokens.push(Token::Ident(chars[start..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let start = i;
                i += 1;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '-' || chars[i] == '+')
                            && matches!(chars[i - 1], 'e' | 'E')))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                // Plain digit runs become Int; a '.', exponent, or i64
                // overflow falls back to Float.
                let value = match text.parse::<i64>() {
                    Ok(v) if !text.contains(['.', 'e', 'E']) => Value::Int(v),
                    _ => Value::Float(
                        text.parse::<f64>()
                            .map_err(|_| ParseError(format!("invalid number '{text}'")))?,
                    ),
                };
                tokens.push(Token::Number(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(ParseError(format!("unexpected character '{other}'"))),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseError("unexpected end of statement".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(ParseError(format!("expected '{kw}', found {other}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(ParseError(format!("expected an identifier, found {other}"))),
        }
    }

    fn expect_token(&mut self, t: Token) -> Result<(), ParseError> {
        let got = self.next()?;
        if got == t {
            Ok(())
        } else {
            Err(ParseError(format!("expected {t}, found {got}")))
        }
    }

    fn expect_scalar(&mut self) -> Result<Scalar, ParseError> {
        match self.next()? {
            Token::Number(v) => Ok(Scalar::Lit(v)),
            Token::Placeholder(n) => Ok(Scalar::Param(n)),
            other => Err(ParseError(format!(
                "expected a number or placeholder, found {other}"
            ))),
        }
    }

    /// Parses `(name, s1, s2, …)` and checks the argument count against the
    /// function's arity, so wrong-arity calls report "expected N" instead of
    /// a token-level error.
    fn call_args(&mut self, func: &str, arity: usize) -> Result<(String, Vec<Scalar>), ParseError> {
        self.expect_token(Token::LParen)?;
        let name = self.expect_ident()?;
        let mut scalars = Vec::with_capacity(arity);
        while matches!(self.peek(), Some(Token::Comma)) {
            self.pos += 1;
            scalars.push(self.expect_scalar()?);
        }
        self.expect_token(Token::RParen)?;
        if scalars.len() != arity {
            return Err(ParseError(format!(
                "{} expects {arity} numeric argument{} after the dataset name, got {}",
                func.to_ascii_uppercase(),
                if arity == 1 { "" } else { "s" },
                scalars.len()
            )));
        }
        Ok((name, scalars))
    }

    fn finish(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), Some(Token::Semicolon)) {
            self.pos += 1;
        }
        if self.pos != self.tokens.len() {
            return Err(ParseError("trailing tokens after statement".into()));
        }
        Ok(())
    }
}

/// Parses one statement.
pub fn parse(input: &str) -> Result<Statement, ParseError> {
    let tokens = lex(input)?;
    if tokens.is_empty() {
        return Err(ParseError("empty statement".into()));
    }
    let mut p = Parser { tokens, pos: 0 };
    let head = p.expect_ident()?;
    let stmt = if head.eq_ignore_ascii_case("create") {
        p.expect_keyword("dataset")?;
        Statement::CreateDataset {
            name: p.expect_ident()?,
        }
    } else if head.eq_ignore_ascii_case("drop") {
        p.expect_keyword("dataset")?;
        Statement::DropDataset {
            name: p.expect_ident()?,
        }
    } else if head.eq_ignore_ascii_case("show") {
        match p.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case("datasets") => Statement::ShowDatasets,
            Token::Ident(s) if s.eq_ignore_ascii_case("stats") => Statement::ShowStats,
            Token::Ident(s) if s.eq_ignore_ascii_case("threads") => Statement::ShowThreads,
            Token::Ident(s) if s.eq_ignore_ascii_case("traces") => Statement::ShowTraces,
            Token::Ident(s) if s.eq_ignore_ascii_case("trace") => Statement::ShowTrace {
                id: p.expect_scalar()?,
            },
            other => {
                return Err(ParseError(format!(
                "expected 'DATASETS', 'STATS', 'THREADS', 'TRACES' or 'TRACE <id>', found {other}"
            )))
            }
        }
    } else if head.eq_ignore_ascii_case("checkpoint") {
        Statement::Checkpoint
    } else if head.eq_ignore_ascii_case("set") {
        let variable = p.expect_ident()?;
        if !variable.eq_ignore_ascii_case("threads") {
            return Err(ParseError(format!(
                "unknown session variable '{variable}' (expected 'threads')"
            )));
        }
        p.expect_token(Token::Equals)?;
        Statement::SetThreads {
            threads: p.expect_scalar()?,
        }
    } else if head.eq_ignore_ascii_case("build") {
        p.expect_keyword("index")?;
        p.expect_keyword("on")?;
        let name = p.expect_ident()?;
        p.expect_keyword("with")?;
        p.expect_keyword("chunk")?;
        let chunk_hours = p.expect_scalar()?;
        p.expect_keyword("hours")?;
        // SIGMA and EPSILON are independent optional clauses (each at most
        // once, any order), so every representable AST has a rendering.
        let mut sigma = None;
        let mut epsilon = None;
        loop {
            match p.peek() {
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("sigma") && sigma.is_none() => {
                    p.pos += 1;
                    sigma = Some(p.expect_scalar()?);
                }
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("epsilon") && epsilon.is_none() => {
                    p.pos += 1;
                    epsilon = Some(p.expect_scalar()?);
                }
                _ => break,
            }
        }
        Statement::BuildIndex {
            name,
            chunk_hours,
            sigma,
            epsilon,
        }
    } else if head.eq_ignore_ascii_case("select") {
        let func = p.expect_ident()?;
        if func.eq_ignore_ascii_case("info") {
            let (name, _) = p.call_args(&func, 0)?;
            Statement::Info { name }
        } else if func.eq_ignore_ascii_case("s2t") || func.eq_ignore_ascii_case("s2t_naive") {
            let (name, mut args) = p.call_args(&func, 5)?;
            let mut take = || args.remove(0);
            Statement::S2T {
                name,
                sigma: take(),
                tau: take(),
                delta: take(),
                min_duration_ms: take(),
                epsilon: take(),
                naive: func.eq_ignore_ascii_case("s2t_naive"),
            }
        } else if func.eq_ignore_ascii_case("qut") {
            let (name, mut args) = p.call_args(&func, 7)?;
            let mut take = || args.remove(0);
            Statement::Qut {
                name,
                wi: take(),
                we: take(),
                tau: take(),
                delta: take(),
                min_duration_ms: take(),
                merge_distance: take(),
                merge_gap_ms: take(),
                rebuild: false,
            }
        } else if func.eq_ignore_ascii_case("qut_rebuild") {
            let (name, mut args) = p.call_args(&func, 5)?;
            let mut take = || args.remove(0);
            Statement::Qut {
                name,
                wi: take(),
                we: take(),
                tau: take(),
                delta: take(),
                min_duration_ms: take(),
                merge_distance: Scalar::float(0.0),
                merge_gap_ms: Scalar::int(0),
                rebuild: true,
            }
        } else if func.eq_ignore_ascii_case("range") {
            let (name, mut args) = p.call_args(&func, 2)?;
            let mut take = || args.remove(0);
            Statement::Range {
                name,
                wi: take(),
                we: take(),
            }
        } else if func.eq_ignore_ascii_case("histogram") {
            let (name, mut args) = p.call_args(&func, 3)?;
            let mut take = || args.remove(0);
            Statement::Histogram {
                name,
                wi: take(),
                we: take(),
                bucket_ms: take(),
            }
        } else {
            return Err(ParseError(format!("unknown function '{func}'")));
        }
    } else {
        return Err(ParseError(format!("unknown statement '{head}'")));
    };
    p.finish()?;
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddl_statements() {
        assert_eq!(
            parse("CREATE DATASET flights;").unwrap(),
            Statement::CreateDataset {
                name: "flights".into()
            }
        );
        assert_eq!(
            parse("drop dataset flights").unwrap(),
            Statement::DropDataset {
                name: "flights".into()
            }
        );
        assert_eq!(parse("SHOW DATASETS;").unwrap(), Statement::ShowDatasets);
        assert_eq!(parse("show stats").unwrap(), Statement::ShowStats);
        assert!(parse("SHOW TABLES;")
            .unwrap_err()
            .0
            .contains("'DATASETS', 'STATS', 'THREADS', 'TRACES' or 'TRACE <id>'"));
        assert_eq!(
            parse("BUILD INDEX ON flights WITH CHUNK 6 HOURS;").unwrap(),
            Statement::BuildIndex {
                name: "flights".into(),
                chunk_hours: Scalar::int(6),
                sigma: None,
                epsilon: None,
            }
        );
        assert_eq!(
            parse("BUILD INDEX ON flights WITH CHUNK 2 HOURS SIGMA 2000 EPSILON 6000;").unwrap(),
            Statement::BuildIndex {
                name: "flights".into(),
                chunk_hours: Scalar::int(2),
                sigma: Some(Scalar::int(2000)),
                epsilon: Some(Scalar::int(6000)),
            }
        );
    }

    #[test]
    fn show_trace_parses_and_binds() {
        assert_eq!(parse("SHOW TRACES;").unwrap(), Statement::ShowTraces);
        assert_eq!(parse("show traces").unwrap(), Statement::ShowTraces);
        assert_eq!(
            parse("SHOW TRACE 42;").unwrap(),
            Statement::ShowTrace {
                id: Scalar::int(42)
            }
        );
        // The id position binds like any other scalar.
        let stmt = parse("SHOW TRACE $1;").unwrap();
        assert_eq!(stmt.num_placeholders(), 1);
        assert_eq!(
            stmt.bind(&[Value::Int(9)]).unwrap(),
            Statement::ShowTrace { id: Scalar::int(9) }
        );
        // A non-numeric id is a parse error, not a fallthrough.
        assert!(parse("SHOW TRACE abc;")
            .unwrap_err()
            .0
            .contains("number or placeholder"));
    }

    #[test]
    fn checkpoint_parses_and_round_trips() {
        assert_eq!(parse("CHECKPOINT;").unwrap(), Statement::Checkpoint);
        assert_eq!(parse("checkpoint").unwrap(), Statement::Checkpoint);
        let stmt = parse("CHECKPOINT;").unwrap();
        assert!(stmt.is_fully_bound());
        assert_eq!(stmt.bind(&[]).unwrap(), Statement::Checkpoint);
        assert!(parse("CHECKPOINT now;").unwrap_err().0.contains("trailing"));
    }

    #[test]
    fn set_and_show_threads() {
        assert_eq!(
            parse("SET threads = 4;").unwrap(),
            Statement::SetThreads {
                threads: Scalar::int(4)
            }
        );
        assert_eq!(
            parse("set THREADS=8").unwrap(),
            Statement::SetThreads {
                threads: Scalar::int(8)
            }
        );
        assert_eq!(parse("SHOW THREADS;").unwrap(), Statement::ShowThreads);
        // Placeholders bind like any other scalar position.
        let stmt = parse("SET threads = $1;").unwrap();
        assert_eq!(stmt.num_placeholders(), 1);
        let bound = stmt.bind(&[Value::Int(2)]).unwrap();
        assert_eq!(
            bound,
            Statement::SetThreads {
                threads: Scalar::int(2)
            }
        );
        // Unknown variables and missing '=' are descriptive errors.
        assert!(parse("SET sockets = 4;")
            .unwrap_err()
            .0
            .contains("unknown session variable"));
        assert!(parse("SET threads 4;").unwrap_err().0.contains("'='"));
    }

    #[test]
    fn s2t_call_matches_the_paper_signature() {
        let stmt = parse("SELECT S2T(flights, 2000, 0.35, 0.05, 120000, 5000);").unwrap();
        assert_eq!(
            stmt,
            Statement::S2T {
                name: "flights".into(),
                sigma: Scalar::int(2000),
                tau: Scalar::float(0.35),
                delta: Scalar::float(0.05),
                min_duration_ms: Scalar::int(120_000),
                epsilon: Scalar::int(5000),
                naive: false,
            }
        );
        let naive = parse("SELECT S2T_NAIVE('flights', 2000, 0.35, 0.05, 120000, 5000);").unwrap();
        assert!(matches!(naive, Statement::S2T { naive: true, .. }));
    }

    #[test]
    fn qut_call_matches_the_paper_signature() {
        // SELECT QUT(D, Wi, We, τ, δ, t, d, γ);
        let stmt =
            parse("SELECT QUT(flights, 0, 7200000, 0.35, 0.05, 120000, 3000, 1800000);").unwrap();
        assert_eq!(
            stmt,
            Statement::Qut {
                name: "flights".into(),
                wi: Scalar::int(0),
                we: Scalar::int(7_200_000),
                tau: Scalar::float(0.35),
                delta: Scalar::float(0.05),
                min_duration_ms: Scalar::int(120_000),
                merge_distance: Scalar::int(3000),
                merge_gap_ms: Scalar::int(1_800_000),
                rebuild: false,
            }
        );
        let rebuild =
            parse("SELECT QUT_REBUILD(flights, 0, 7200000, 0.35, 0.05, 120000);").unwrap();
        assert!(matches!(rebuild, Statement::Qut { rebuild: true, .. }));
    }

    #[test]
    fn range_and_info() {
        assert_eq!(
            parse("SELECT RANGE(flights, 0, 3600000);").unwrap(),
            Statement::Range {
                name: "flights".into(),
                wi: Scalar::int(0),
                we: Scalar::int(3_600_000)
            }
        );
        assert_eq!(
            parse("SELECT INFO(flights);").unwrap(),
            Statement::Info {
                name: "flights".into()
            }
        );
        assert_eq!(
            parse("SELECT HISTOGRAM(flights, 0, 7200000, 900000);").unwrap(),
            Statement::Histogram {
                name: "flights".into(),
                wi: Scalar::int(0),
                we: Scalar::int(7_200_000),
                bucket_ms: Scalar::int(900_000)
            }
        );
    }

    #[test]
    fn placeholders_parse_and_bind() {
        let stmt =
            parse("SELECT QUT(flights, $1, $2, 0.35, 0.05, 120000, 3000, 1800000);").unwrap();
        assert_eq!(stmt.num_placeholders(), 2);
        assert!(!stmt.is_fully_bound());

        let bound = stmt.bind(&[Value::Int(0), Value::Int(7_200_000)]).unwrap();
        assert!(bound.is_fully_bound());
        assert!(matches!(
            bound,
            Statement::Qut { ref wi, ref we, .. }
                if *wi == Scalar::int(0) && *we == Scalar::int(7_200_000)
        ));
        // The prepared statement is unchanged and binds again.
        let again = stmt
            .bind(&[
                Value::Timestamp(hermes_trajectory::Timestamp(100)),
                Value::Timestamp(hermes_trajectory::Timestamp(200)),
            ])
            .unwrap();
        assert!(again.is_fully_bound());
        assert_eq!(stmt.num_placeholders(), 2);

        // Binding with too few values is a descriptive error.
        let err = stmt.bind(&[Value::Int(0)]).unwrap_err();
        assert!(err.0.contains("$2"), "{err}");
        // Unbound placeholders refuse scalar conversion.
        if let Statement::Qut { wi, .. } = &stmt {
            assert!(wi.as_i64().unwrap_err().contains("unbound"));
            assert!(wi.as_f64().unwrap_err().contains("unbound"));
        }
    }

    #[test]
    fn hand_built_param_zero_is_a_bind_error_not_a_panic() {
        let stmt = Statement::Range {
            name: "flights".into(),
            wi: Scalar::Param(0),
            we: Scalar::int(10),
        };
        assert!(!stmt.is_fully_bound());
        let err = stmt.bind(&[Value::Int(1)]).unwrap_err();
        assert!(err.0.contains("$0"), "{err}");
    }

    #[test]
    fn sigma_and_epsilon_clauses_are_independent() {
        let sigma_only = parse("BUILD INDEX ON d WITH CHUNK 2 HOURS SIGMA 900;").unwrap();
        assert_eq!(
            sigma_only,
            Statement::BuildIndex {
                name: "d".into(),
                chunk_hours: Scalar::int(2),
                sigma: Some(Scalar::int(900)),
                epsilon: None,
            }
        );
        let epsilon_only = parse("BUILD INDEX ON d WITH CHUNK 2 HOURS EPSILON 400;").unwrap();
        assert!(matches!(
            epsilon_only,
            Statement::BuildIndex {
                sigma: None,
                epsilon: Some(_),
                ..
            }
        ));
        // Any order parses; rendering canonicalizes to SIGMA then EPSILON and
        // round-trips, including the half-set forms.
        let both = parse("BUILD INDEX ON d WITH CHUNK 2 HOURS EPSILON 400 SIGMA 900;").unwrap();
        for stmt in [sigma_only, epsilon_only, both] {
            assert_eq!(parse(&stmt.to_string()).unwrap(), stmt);
        }
        // Duplicate clauses are rejected.
        assert!(parse("BUILD INDEX ON d WITH CHUNK 2 HOURS SIGMA 1 SIGMA 2;").is_err());
    }

    #[test]
    fn placeholder_lexing_errors() {
        assert!(parse("SELECT RANGE(flights, $, 1);")
            .unwrap_err()
            .0
            .contains("digits"));
        assert!(parse("SELECT RANGE(flights, $0, 1);")
            .unwrap_err()
            .0
            .contains("numbered from $1"));
    }

    #[test]
    fn wrong_arity_is_reported_with_the_expected_count() {
        let err = parse("SELECT S2T(flights, 1, 2);").unwrap_err();
        assert!(err.0.contains("S2T expects 5"), "{err}");
        assert!(err.0.contains("got 2"), "{err}");
        let err = parse("SELECT QUT(flights, 0, 1, 2, 3, 4, 5, 6, 7);").unwrap_err();
        assert!(err.0.contains("QUT expects 7"), "{err}");
        let err = parse("SELECT INFO(flights, 9);").unwrap_err();
        assert!(err.0.contains("expects 0"), "{err}");
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse("").unwrap_err().0.contains("empty"));
        assert!(parse("SELECT NOPE(flights);")
            .unwrap_err()
            .0
            .contains("unknown function"));
        assert!(parse("CREATE TABLE x;")
            .unwrap_err()
            .0
            .contains("expected 'dataset'"));
        assert!(parse("SELECT RANGE(flights, 0, 10) extra;")
            .unwrap_err()
            .0
            .contains("trailing"));
        assert!(parse("SELECT RANGE(flights, 0, 'ten');").is_err());
        assert!(parse("SELECT INFO('unterminated);")
            .unwrap_err()
            .0
            .contains("unterminated"));
        assert!(parse("€").is_err());
    }

    #[test]
    fn negative_and_scientific_numbers() {
        let stmt = parse("SELECT RANGE(flights, -3600000, 1e7);").unwrap();
        assert_eq!(
            stmt,
            Statement::Range {
                name: "flights".into(),
                wi: Scalar::int(-3_600_000),
                we: Scalar::float(10_000_000.0)
            }
        );
        // Negative exponents keep their sign inside the number token.
        let stmt = parse("SELECT RANGE(flights, 1e-3, 2E+4);").unwrap();
        assert_eq!(
            stmt,
            Statement::Range {
                name: "flights".into(),
                wi: Scalar::float(0.001),
                we: Scalar::float(20_000.0)
            }
        );
    }

    #[test]
    fn statements_render_back_to_parseable_text() {
        for sql in [
            "CREATE DATASET flights;",
            "DROP DATASET flights;",
            "SHOW DATASETS;",
            "SHOW STATS;",
            "SHOW THREADS;",
            "SHOW TRACES;",
            "SHOW TRACE 7;",
            "SHOW TRACE $1;",
            "CHECKPOINT;",
            "SET threads = 4;",
            "SET threads = $1;",
            "BUILD INDEX ON flights WITH CHUNK 6 HOURS;",
            "BUILD INDEX ON flights WITH CHUNK 2 HOURS SIGMA 2000 EPSILON 6000;",
            "SELECT INFO(flights);",
            "SELECT S2T(flights, 2000, 0.35, 0.05, 120000, 5000);",
            "SELECT S2T_NAIVE(flights, 2000, 0.35, 0.05, 120000, 5000);",
            "SELECT QUT(flights, $1, $2, 0.35, 0.05, 120000, 3000, 1800000);",
            "SELECT QUT_REBUILD(flights, 0, 7200000, 0.35, 0.05, 120000);",
            "SELECT RANGE(flights, -5, 1e7);",
            "SELECT HISTOGRAM(flights, 0, 7200000, 900000);",
        ] {
            let stmt = parse(sql).unwrap();
            let rendered = stmt.to_string();
            assert_eq!(
                parse(&rendered).unwrap(),
                stmt,
                "render of {sql}: {rendered}"
            );
        }
    }
}
