//! The client-facing [`Session`]: a connection-like wrapper around the
//! engine that owns prepared statements.
//!
//! ```
//! use hermes_core::HermesEngine;
//! use hermes_sql::{Session, Value};
//!
//! let mut engine = HermesEngine::new();
//! let mut session = Session::new(&mut engine);
//! session.execute("CREATE DATASET flights;").unwrap();
//! // Parse once…
//! let range = session.prepare("SELECT RANGE(flights, $1, $2);").unwrap();
//! // …bind per execution (would run if the dataset were indexed):
//! let _ = session.execute_prepared(range, &[Value::Int(0), Value::Int(3_600_000)]);
//! let _ = session.execute_prepared(range, &[Value::Int(0), Value::Int(7_200_000)]);
//! assert_eq!(session.stats().parses, 2); // CREATE + the prepared RANGE
//! ```

use crate::executor::{execute_statement, SqlError};
use crate::frame::QueryOutcome;
use crate::parser::{parse, Statement};
use crate::value::Value;
use hermes_core::HermesEngine;
use std::collections::HashMap;

/// Handle to a statement prepared in a [`Session`]. Copyable; only
/// meaningful with the session that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prepared(usize);

/// Parser- and cache-activity counters of a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Times the parser actually ran.
    pub parses: usize,
    /// Statement texts answered from the prepared-statement cache.
    pub cache_hits: usize,
    /// Statements executed (prepared or direct).
    pub executions: usize,
}

/// A client session over a [`HermesEngine`].
///
/// The session owns the prepared-statement cache: [`Session::prepare`] parses
/// a statement once and returns a [`Prepared`] handle; every
/// [`Session::execute_prepared`] binds fresh parameter [`Value`]s into the
/// cached AST without touching the parser again. Plain [`Session::execute`]
/// also consults the cache (keyed by statement text), so a front end looping
/// over the same statement re-parses nothing.
pub struct Session<'e> {
    engine: &'e mut HermesEngine,
    statements: Vec<Statement>,
    by_text: HashMap<String, Prepared>,
    stats: SessionStats,
}

impl<'e> Session<'e> {
    /// Most distinct statement texts [`Session::execute`] will cache
    /// implicitly. Explicit [`Session::prepare`] calls are not capped.
    pub const IMPLICIT_CACHE_CAP: usize = 256;

    /// Opens a session over an engine.
    pub fn new(engine: &'e mut HermesEngine) -> Self {
        Session {
            engine,
            statements: Vec::new(),
            by_text: HashMap::new(),
            stats: SessionStats::default(),
        }
    }

    /// Parses `sql` once and caches the AST, keyed by the (trimmed)
    /// statement text. Preparing the same text again is a cache hit and
    /// returns the existing handle.
    pub fn prepare(&mut self, sql: &str) -> Result<Prepared, SqlError> {
        let key = sql.trim();
        if let Some(&handle) = self.by_text.get(key) {
            self.stats.cache_hits += 1;
            return Ok(handle);
        }
        self.stats.parses += 1;
        let stmt = parse(key)?;
        let handle = Prepared(self.statements.len());
        self.statements.push(stmt);
        self.by_text.insert(key.to_string(), handle);
        Ok(handle)
    }

    /// The cached AST behind a handle.
    pub fn statement(&self, handle: Prepared) -> Option<&Statement> {
        self.statements.get(handle.0)
    }

    /// Executes a prepared statement with `params` bound to its `$n`
    /// placeholders (`params[0]` binds `$1`). The cached AST is not
    /// re-parsed and stays available for further executions.
    pub fn execute_prepared(
        &mut self,
        handle: Prepared,
        params: &[Value],
    ) -> Result<QueryOutcome, SqlError> {
        let stmt = self
            .statements
            .get(handle.0)
            .ok_or_else(|| SqlError::Bind(format!("unknown prepared statement {handle:?}")))?;
        let bound = stmt.bind(params).map_err(|e| SqlError::Bind(e.0))?;
        self.stats.executions += 1;
        execute_statement(self.engine, &bound)
    }

    /// Prepares (or finds in the cache) and executes a placeholder-free
    /// statement in one call.
    ///
    /// Unlike explicit [`Session::prepare`], the implicit caching here is
    /// capped at [`Session::IMPLICIT_CACHE_CAP`] distinct statement texts: a
    /// front end looping over literal-only statements (every window a new
    /// text) must not grow the session without bound. Past the cap the
    /// statement still executes, just without being cached.
    pub fn execute(&mut self, sql: &str) -> Result<QueryOutcome, SqlError> {
        let key = sql.trim();
        if self.by_text.contains_key(key) || self.by_text.len() < Self::IMPLICIT_CACHE_CAP {
            let handle = self.prepare(key)?;
            return self.execute_prepared(handle, &[]);
        }
        self.stats.parses += 1;
        let stmt = parse(key)?;
        let bound = stmt.bind(&[]).map_err(|e| SqlError::Bind(e.0))?;
        self.stats.executions += 1;
        execute_statement(self.engine, &bound)
    }

    /// Parser/cache counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Number of distinct statements held in the cache.
    pub fn cached_statements(&self) -> usize {
        self.statements.len()
    }

    /// Direct access to the underlying engine (e.g. to load trajectories).
    pub fn engine(&mut self) -> &mut HermesEngine {
        self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;
    use hermes_trajectory::{Point, Timestamp, Trajectory};

    fn traj(id: u64, y: f64) -> Trajectory {
        Trajectory::new(
            id,
            id,
            (0..30)
                .map(|i| Point::new(i as f64 * 100.0, y, Timestamp(i as i64 * 60_000)))
                .collect(),
        )
        .unwrap()
    }

    fn engine() -> HermesEngine {
        let mut e = HermesEngine::new();
        e.create_dataset("flights").unwrap();
        let trajs: Vec<Trajectory> = (0..12).map(|i| traj(i, i as f64 * 10.0)).collect();
        e.load_trajectories("flights", trajs).unwrap();
        e
    }

    #[test]
    fn prepared_statement_executes_twice_without_reparsing() {
        let mut e = engine();
        let mut session = Session::new(&mut e);
        session
            .execute("BUILD INDEX ON flights WITH CHUNK 4 HOURS SIGMA 60 EPSILON 400;")
            .unwrap();
        let parses_before = session.stats().parses;

        let qut = session
            .prepare("SELECT QUT(flights, $1, $2, 0.35, 0.05, 120000, 400, 1800000)")
            .unwrap();
        assert_eq!(session.stats().parses, parses_before + 1);

        let first = session
            .execute_prepared(qut, &[Value::Int(0), Value::Int(900_000)])
            .unwrap();
        let second = session
            .execute_prepared(qut, &[Value::Int(0), Value::Int(1_800_000)])
            .unwrap();
        // Two different windows executed, exactly one parse.
        assert_eq!(session.stats().parses, parses_before + 1);
        assert_eq!(session.stats().executions, 3);
        assert!(first.num_rows() >= 1 && second.num_rows() >= 1);
        // Timestamps may bind as typed values, not just ints.
        let third = session
            .execute_prepared(
                qut,
                &[
                    Value::Timestamp(Timestamp(0)),
                    Value::Timestamp(Timestamp(1_800_000)),
                ],
            )
            .unwrap();
        assert_eq!(third.num_rows(), second.num_rows());
    }

    #[test]
    fn execute_hits_the_cache_on_repeated_text() {
        let mut e = engine();
        let mut session = Session::new(&mut e);
        session.execute("SELECT INFO(flights);").unwrap();
        session.execute("SELECT INFO(flights);").unwrap();
        session.execute("  SELECT INFO(flights);  ").unwrap();
        let stats = session.stats();
        assert_eq!(stats.parses, 1);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.executions, 3);
        assert_eq!(session.cached_statements(), 1);
    }

    #[test]
    fn implicit_cache_is_capped_but_execution_continues() {
        let mut e = engine();
        e.build_index(
            "flights",
            hermes_retratree::ReTraTreeParams::builder()
                .chunk_duration(hermes_trajectory::Duration::from_hours(4))
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut session = Session::new(&mut e);
        // Every statement text is distinct, as in a shell loop over literal
        // windows.
        for i in 0..Session::IMPLICIT_CACHE_CAP + 10 {
            session
                .execute(&format!("SELECT RANGE(flights, 0, {});", 60_000 + i))
                .unwrap();
        }
        assert_eq!(session.cached_statements(), Session::IMPLICIT_CACHE_CAP);
        // Everything still executed.
        assert_eq!(session.stats().executions, Session::IMPLICIT_CACHE_CAP + 10);
        // Explicit prepare is not capped.
        let h = session.prepare("SELECT RANGE(flights, $1, $2);").unwrap();
        assert!(session.cached_statements() > Session::IMPLICIT_CACHE_CAP);
        assert!(session.statement(h).is_some());
    }

    #[test]
    fn binding_errors_are_surfaced() {
        let mut e = engine();
        let mut session = Session::new(&mut e);
        let range = session.prepare("SELECT RANGE(flights, $1, $2);").unwrap();
        let err = session
            .execute_prepared(range, &[Value::Int(0)])
            .unwrap_err();
        assert!(
            matches!(err, SqlError::Bind(ref m) if m.contains("$2")),
            "{err}"
        );
        // Executing a statement with placeholders directly is a bind error.
        let err = session
            .execute("SELECT RANGE(flights, $1, $2);")
            .unwrap_err();
        assert!(
            matches!(err, SqlError::Bind(ref m) if m.contains("$1")),
            "{err}"
        );
    }

    #[test]
    fn session_results_are_typed_frames() {
        let mut e = engine();
        let mut session = Session::new(&mut e);
        let info = session.execute("SELECT INFO(flights);").unwrap();
        let frame = info.expect_frame("INFO");
        assert_eq!(frame.schema()[1].ty, ValueType::Int);
        assert_eq!(frame.get(0, "trajectories"), Some(&Value::Int(12)));
        assert!(session
            .engine()
            .list_datasets()
            .contains(&"flights".to_string()));
    }
}
