//! The client-facing [`Session`]: a connection-like wrapper around the
//! engine that owns prepared statements.
//!
//! ```
//! use hermes_core::HermesEngine;
//! use hermes_sql::{Session, Value};
//!
//! let mut engine = HermesEngine::new();
//! let mut session = Session::new(&mut engine);
//! session.execute("CREATE DATASET flights;").unwrap();
//! // Parse once…
//! let range = session.prepare("SELECT RANGE(flights, $1, $2);").unwrap();
//! // …bind per execution (would run if the dataset were indexed):
//! let _ = session.execute_prepared(range, &[Value::Int(0), Value::Int(3_600_000)]);
//! let _ = session.execute_prepared(range, &[Value::Int(0), Value::Int(7_200_000)]);
//! assert_eq!(session.stats().parses, 2); // CREATE + the prepared RANGE
//! ```

use crate::backend::EngineBackend;
use crate::executor::{push_stat, sort_stats_rows, SqlError};
use crate::frame::QueryOutcome;
use crate::parser::{parse, Statement};
use crate::value::Value;
use hermes_core::HermesEngine;
use std::collections::HashMap;

/// Most distinct statement texts [`Session::execute`] will cache implicitly
/// (also available as `Session::IMPLICIT_CACHE_CAP`). Explicit
/// [`Session::prepare`] calls are not capped.
pub const IMPLICIT_CACHE_CAP: usize = 256;

/// Handle to a statement prepared in a [`Session`]. Copyable; only
/// meaningful with the session that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prepared(usize);

/// Parser- and cache-activity counters of a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Times the parser actually ran.
    pub parses: usize,
    /// Statement texts answered from the prepared-statement cache.
    pub cache_hits: usize,
    /// Statements executed (prepared or direct).
    pub executions: usize,
}

/// A client session over an engine backend.
///
/// The session owns the prepared-statement cache: [`Session::prepare`] parses
/// a statement once and returns a [`Prepared`] handle; every
/// [`Session::execute_prepared`] binds fresh parameter [`Value`]s into the
/// cached AST without touching the parser again. Plain [`Session::execute`]
/// also consults the cache (keyed by statement text), so a front end looping
/// over the same statement re-parses nothing.
///
/// The backend decides how the engine is reached: `&mut HermesEngine` for
/// exclusive single-threaded use, or a
/// [`SharedEngine`](hermes_core::SharedEngine) where each server connection
/// opens its own session (with its own statement cache) over one engine and
/// read statements proceed concurrently.
pub struct Session<B: EngineBackend> {
    backend: B,
    statements: Vec<Statement>,
    by_text: HashMap<String, Prepared>,
    stats: SessionStats,
}

impl<B: EngineBackend> Session<B> {
    /// Most distinct statement texts [`Session::execute`] will cache
    /// implicitly. Explicit [`Session::prepare`] calls are not capped.
    pub const IMPLICIT_CACHE_CAP: usize = IMPLICIT_CACHE_CAP;

    /// Opens a session over a backend.
    pub fn new(backend: B) -> Self {
        Session {
            backend,
            statements: Vec::new(),
            by_text: HashMap::new(),
            stats: SessionStats::default(),
        }
    }

    /// Parses `sql` once and caches the AST, keyed by the (trimmed)
    /// statement text. Preparing the same text again is a cache hit and
    /// returns the existing handle.
    pub fn prepare(&mut self, sql: &str) -> Result<Prepared, SqlError> {
        let key = sql.trim();
        if let Some(&handle) = self.by_text.get(key) {
            self.stats.cache_hits += 1;
            return Ok(handle);
        }
        self.stats.parses += 1;
        let stmt = parse(key)?;
        let handle = Prepared(self.statements.len());
        self.statements.push(stmt);
        self.by_text.insert(key.to_string(), handle);
        Ok(handle)
    }

    /// The cached AST behind a handle.
    pub fn statement(&self, handle: Prepared) -> Option<&Statement> {
        self.statements.get(handle.0)
    }

    /// Executes a prepared statement with `params` bound to its `$n`
    /// placeholders (`params[0]` binds `$1`). The cached AST is not
    /// re-parsed and stays available for further executions.
    pub fn execute_prepared(
        &mut self,
        handle: Prepared,
        params: &[Value],
    ) -> Result<QueryOutcome, SqlError> {
        let stmt = self
            .statements
            .get(handle.0)
            .ok_or_else(|| SqlError::Bind(format!("unknown prepared statement {handle:?}")))?;
        let bound = stmt.bind(params).map_err(|e| SqlError::Bind(e.0))?;
        self.stats.executions += 1;
        let mut outcome = self.backend.execute(&bound)?;
        self.append_session_stats(&bound, &mut outcome);
        Ok(outcome)
    }

    /// Prepares (or finds in the cache) and executes a placeholder-free
    /// statement in one call.
    ///
    /// Unlike explicit [`Session::prepare`], the implicit caching here is
    /// capped at [`Session::IMPLICIT_CACHE_CAP`] distinct statement texts: a
    /// front end looping over literal-only statements (every window a new
    /// text) must not grow the session without bound. Past the cap the
    /// statement still executes, just without being cached.
    pub fn execute(&mut self, sql: &str) -> Result<QueryOutcome, SqlError> {
        let key = sql.trim();
        if self.by_text.contains_key(key) || self.by_text.len() < Self::IMPLICIT_CACHE_CAP {
            let handle = self.prepare(key)?;
            return self.execute_prepared(handle, &[]);
        }
        self.stats.parses += 1;
        let stmt = parse(key)?;
        let bound = stmt.bind(&[]).map_err(|e| SqlError::Bind(e.0))?;
        self.stats.executions += 1;
        let mut outcome = self.backend.execute(&bound)?;
        self.append_session_stats(&bound, &mut outcome);
        Ok(outcome)
    }

    /// `SHOW STATS` results gain a `session` scope on top of the executor's
    /// `engine` rows: this session's parse/cache counters.
    fn append_session_stats(&self, stmt: &Statement, outcome: &mut QueryOutcome) {
        if !matches!(stmt, Statement::ShowStats) {
            return;
        }
        if let QueryOutcome::Rows { frame, .. } = outcome {
            for (metric, value) in [
                ("parses", self.stats.parses),
                ("cache_hits", self.stats.cache_hits),
                ("executions", self.stats.executions),
                ("cached_statements", self.statements.len()),
            ] {
                push_stat(frame, "session", metric, value as i64);
            }
            sort_stats_rows(frame);
        }
    }

    /// Parser/cache counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Number of distinct statements held in the cache.
    pub fn cached_statements(&self) -> usize {
        self.statements.len()
    }
}

impl Session<&mut HermesEngine> {
    /// Direct access to the underlying engine (e.g. to load trajectories).
    /// Only exclusive-access sessions expose this; shared sessions go through
    /// [`SharedEngine`](hermes_core::SharedEngine) locks instead.
    pub fn engine(&mut self) -> &mut HermesEngine {
        self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;
    use hermes_trajectory::{Point, Timestamp, Trajectory};

    fn traj(id: u64, y: f64) -> Trajectory {
        Trajectory::new(
            id,
            id,
            (0..30)
                .map(|i| Point::new(i as f64 * 100.0, y, Timestamp(i as i64 * 60_000)))
                .collect(),
        )
        .unwrap()
    }

    fn engine() -> HermesEngine {
        let mut e = HermesEngine::new();
        e.create_dataset("flights").unwrap();
        let trajs: Vec<Trajectory> = (0..12).map(|i| traj(i, i as f64 * 10.0)).collect();
        e.load_trajectories("flights", trajs).unwrap();
        e
    }

    #[test]
    fn prepared_statement_executes_twice_without_reparsing() {
        let mut e = engine();
        let mut session = Session::new(&mut e);
        session
            .execute("BUILD INDEX ON flights WITH CHUNK 4 HOURS SIGMA 60 EPSILON 400;")
            .unwrap();
        let parses_before = session.stats().parses;

        let qut = session
            .prepare("SELECT QUT(flights, $1, $2, 0.35, 0.05, 120000, 400, 1800000)")
            .unwrap();
        assert_eq!(session.stats().parses, parses_before + 1);

        let first = session
            .execute_prepared(qut, &[Value::Int(0), Value::Int(900_000)])
            .unwrap();
        let second = session
            .execute_prepared(qut, &[Value::Int(0), Value::Int(1_800_000)])
            .unwrap();
        // Two different windows executed, exactly one parse.
        assert_eq!(session.stats().parses, parses_before + 1);
        assert_eq!(session.stats().executions, 3);
        assert!(first.num_rows() >= 1 && second.num_rows() >= 1);
        // Timestamps may bind as typed values, not just ints.
        let third = session
            .execute_prepared(
                qut,
                &[
                    Value::Timestamp(Timestamp(0)),
                    Value::Timestamp(Timestamp(1_800_000)),
                ],
            )
            .unwrap();
        assert_eq!(third.num_rows(), second.num_rows());
    }

    #[test]
    fn execute_hits_the_cache_on_repeated_text() {
        let mut e = engine();
        let mut session = Session::new(&mut e);
        session.execute("SELECT INFO(flights);").unwrap();
        session.execute("SELECT INFO(flights);").unwrap();
        session.execute("  SELECT INFO(flights);  ").unwrap();
        let stats = session.stats();
        assert_eq!(stats.parses, 1);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.executions, 3);
        assert_eq!(session.cached_statements(), 1);
    }

    #[test]
    fn implicit_cache_is_capped_but_execution_continues() {
        let mut e = engine();
        e.build_index(
            "flights",
            hermes_retratree::ReTraTreeParams::builder()
                .chunk_duration(hermes_trajectory::Duration::from_hours(4))
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut session = Session::new(&mut e);
        // Every statement text is distinct, as in a shell loop over literal
        // windows.
        for i in 0..IMPLICIT_CACHE_CAP + 10 {
            session
                .execute(&format!("SELECT RANGE(flights, 0, {});", 60_000 + i))
                .unwrap();
        }
        assert_eq!(session.cached_statements(), IMPLICIT_CACHE_CAP);
        // Everything still executed.
        assert_eq!(session.stats().executions, IMPLICIT_CACHE_CAP + 10);
        // Explicit prepare is not capped.
        let h = session.prepare("SELECT RANGE(flights, $1, $2);").unwrap();
        assert!(session.cached_statements() > IMPLICIT_CACHE_CAP);
        assert!(session.statement(h).is_some());
    }

    #[test]
    fn show_stats_includes_the_session_scope() {
        let mut e = engine();
        let mut session = Session::new(&mut e);
        session.execute("SELECT INFO(flights);").unwrap();
        let outcome = session.execute("SHOW STATS;").unwrap();
        let frame = outcome.expect_frame("SHOW STATS");
        let session_row = |metric: &str| -> i64 {
            frame
                .rows()
                .find(|r| r[0].as_str() == Some("session") && r[1].as_str() == Some(metric))
                .and_then(|r| r[2].as_i64())
                .unwrap_or_else(|| panic!("session metric {metric} missing"))
        };
        // Both scopes are present: the executor's engine rows and ours.
        assert!(frame
            .column("scope")
            .unwrap()
            .iter()
            .any(|v| v.as_str() == Some("engine")));
        assert_eq!(session_row("parses"), 2);
        assert_eq!(session_row("executions"), 2);
    }

    #[test]
    fn sessions_share_one_engine_through_a_shared_backend() {
        use hermes_core::SharedEngine;
        let shared = SharedEngine::default();
        shared.with_write(|e| {
            e.create_dataset("flights").unwrap();
            e.load_trajectories(
                "flights",
                (0..12).map(|i| traj(i, i as f64 * 10.0)).collect(),
            )
            .unwrap();
        });
        let mut a = Session::new(shared.clone());
        let mut b = Session::new(shared.clone());
        a.execute("BUILD INDEX ON flights WITH CHUNK 4 HOURS;")
            .unwrap();
        // b sees the index a built, through the read lock.
        assert_eq!(
            b.execute("SELECT RANGE(flights, 0, 1800000);")
                .unwrap()
                .num_rows(),
            1
        );
        // Prepared-statement caches are per session.
        let ha = a.prepare("SELECT RANGE(flights, $1, $2);").unwrap();
        assert!(a.statement(ha).is_some());
        assert!(b.statement(ha).is_none());
        assert_eq!(b.stats().parses, 1);
    }

    #[test]
    fn set_threads_works_through_sessions_and_shared_backends() {
        use hermes_core::SharedEngine;
        let shared = SharedEngine::default();
        let mut a = Session::new(shared.clone());
        let mut b = Session::new(shared.clone());
        // SET goes through the write lock; the engine-wide setting is visible
        // to every session over the same engine.
        a.execute("SET threads = 2;").unwrap();
        let shown = b.execute("SHOW THREADS;").unwrap();
        assert_eq!(
            shown.expect_frame("SHOW THREADS").get(0, "threads"),
            Some(&Value::Int(2))
        );
        // Prepared SET with a placeholder binds like any other statement.
        let h = a.prepare("SET threads = $1;").unwrap();
        a.execute_prepared(h, &[Value::Int(1)]).unwrap();
        assert_eq!(shared.read().exec_policy().threads, 1);
        // N = 0 is rejected with the arity-style message.
        let err = a.execute_prepared(h, &[Value::Int(0)]).unwrap_err();
        assert!(err.to_string().contains("positive thread count"), "{err}");
    }

    #[test]
    fn binding_errors_are_surfaced() {
        let mut e = engine();
        let mut session = Session::new(&mut e);
        let range = session.prepare("SELECT RANGE(flights, $1, $2);").unwrap();
        let err = session
            .execute_prepared(range, &[Value::Int(0)])
            .unwrap_err();
        assert!(
            matches!(err, SqlError::Bind(ref m) if m.contains("$2")),
            "{err}"
        );
        // Executing a statement with placeholders directly is a bind error.
        let err = session
            .execute("SELECT RANGE(flights, $1, $2);")
            .unwrap_err();
        assert!(
            matches!(err, SqlError::Bind(ref m) if m.contains("$1")),
            "{err}"
        );
    }

    #[test]
    fn session_results_are_typed_frames() {
        let mut e = engine();
        let mut session = Session::new(&mut e);
        let info = session.execute("SELECT INFO(flights);").unwrap();
        let frame = info.expect_frame("INFO");
        assert_eq!(frame.schema()[1].ty, ValueType::Int);
        assert_eq!(frame.get(0, "trajectories"), Some(&Value::Int(12)));
        assert!(session
            .engine()
            .list_datasets()
            .contains(&"flights".to_string()));
    }
}
