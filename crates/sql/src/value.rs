//! The typed value layer shared by the parser (literals, bound parameters)
//! and the executor (result frames).
//!
//! Every cell that crosses the SQL/engine boundary is a [`Value`]; the string
//! form only exists at the display edge (see [`crate::fmt`]). Timestamps and
//! intervals reuse the engine's millisecond types so no precision is lost
//! between a query parameter and the index it probes.

use hermes_trajectory::{Duration, Timestamp};
use std::fmt;

/// The type of a column (or of a non-null value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Instant on the dataset time axis (millisecond precision).
    Timestamp,
    /// Signed length of time (millisecond precision).
    Interval,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ValueType::Bool => "bool",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Text => "text",
            ValueType::Timestamp => "timestamp",
            ValueType::Interval => "interval",
        };
        f.write_str(name)
    }
}

impl ValueType {
    /// True for types rendered right-aligned in tables.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            ValueType::Int | ValueType::Float | ValueType::Timestamp | ValueType::Interval
        )
    }
}

/// A single typed datum: a literal in a statement, a bound parameter, or a
/// cell of a result [`Frame`](crate::Frame).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent datum; admissible in any column.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Instant on the dataset time axis.
    Timestamp(Timestamp),
    /// Signed length of time.
    Interval(Duration),
}

impl Value {
    /// The type of the value; `None` for [`Value::Null`].
    pub fn type_of(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Text(_) => Some(ValueType::Text),
            Value::Timestamp(_) => Some(ValueType::Timestamp),
            Value::Interval(_) => Some(ValueType::Interval),
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as an `i64`, converting where no information is lost:
    /// integers directly, timestamps and intervals to their milliseconds,
    /// floats only when integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Timestamp(t) => Some(t.millis()),
            Value::Interval(d) => Some(d.millis()),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as an `f64`: floats directly, integers widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as text (only for [`Value::Text`]).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean (only for [`Value::Bool`]).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a [`Timestamp`]: timestamps directly, integers as raw
    /// milliseconds.
    pub fn as_timestamp(&self) -> Option<Timestamp> {
        match self {
            Value::Timestamp(t) => Some(*t),
            Value::Int(i) => Some(Timestamp(*i)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => Ok(()),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => f.write_str(&fmt_float(*v)),
            Value::Text(s) => f.write_str(s),
            Value::Timestamp(t) => write!(f, "{}", t.millis()),
            Value::Interval(d) => write!(f, "{}", d.millis()),
        }
    }
}

/// Renders a float so that it always reads back as a float: Rust's shortest
/// round-trip form, with a forced `.0` suffix on integral values (otherwise
/// `10000000.0` would render as `10000000` and re-lex as an integer).
pub(crate) fn fmt_float(v: f64) -> String {
    let s = format!("{v}");
    if s.bytes()
        .all(|b| b.is_ascii_digit() || b == b'-' || b == b'+')
    {
        format!("{s}.0")
    } else {
        s
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<Timestamp> for Value {
    fn from(v: Timestamp) -> Self {
        Value::Timestamp(v)
    }
}

impl From<Duration> for Value {
    fn from(v: Duration) -> Self {
        Value::Interval(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_milliseconds() {
        assert_eq!(Value::Timestamp(Timestamp(42)).as_i64(), Some(42));
        assert_eq!(
            Value::Interval(Duration::from_secs(2)).as_i64(),
            Some(2_000)
        );
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(7.5).as_i64(), None);
        assert_eq!(Value::Float(8.0).as_i64(), Some(8));
        assert_eq!(Value::Int(5).as_timestamp(), Some(Timestamp(5)));
        assert_eq!(Value::Text("x".into()).as_i64(), None);
    }

    #[test]
    fn type_of_matches_the_variant() {
        assert_eq!(Value::Null.type_of(), None);
        assert_eq!(Value::Bool(true).type_of(), Some(ValueType::Bool));
        assert_eq!(Value::Int(1).type_of(), Some(ValueType::Int));
        assert_eq!(Value::Float(1.0).type_of(), Some(ValueType::Float));
        assert_eq!(Value::Text(String::new()).type_of(), Some(ValueType::Text));
        assert!(ValueType::Timestamp.is_numeric());
        assert!(!ValueType::Text.is_numeric());
    }

    #[test]
    fn float_display_always_reads_back_as_float() {
        assert_eq!(fmt_float(0.35), "0.35");
        assert_eq!(fmt_float(10_000_000.0), "10000000.0");
        assert_eq!(fmt_float(-3.0), "-3.0");
        // Whatever the textual form, it must re-parse to the same float.
        for v in [1.5e300, -7.25e-20, 0.1 + 0.2, f64::MIN_POSITIVE] {
            assert_eq!(fmt_float(v).parse::<f64>().unwrap(), v);
        }
    }

    #[test]
    fn null_renders_empty() {
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Text("ships".into()).to_string(), "ships");
        assert_eq!(Value::Timestamp(Timestamp(9)).to_string(), "9");
    }
}
