//! A small buffer pool with LRU eviction.
//!
//! The paper's selling point is *in-DBMS* execution: clustering runs against
//! buffered pages rather than files re-read per query. The buffer pool here
//! provides the same behaviour knob for the reproduction — the E1/E3
//! benchmarks report its hit ratio so the "progressive analytics avoid
//! re-reading and re-processing" effect is visible even though everything is
//! ultimately in memory.

use std::collections::HashMap;
use std::sync::Mutex;

/// Key of a buffered page: (partition id, page id).
pub type FrameKey = (u64, u64);

/// Hit/miss counters of a buffer pool.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    /// Number of lookups satisfied from the pool.
    pub hits: u64,
    /// Number of lookups that had to go to the backing store.
    pub misses: u64,
    /// Number of frames evicted to make room.
    pub evictions: u64,
}

impl BufferStats {
    /// Fraction of lookups served from the pool (0 when none happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Inner<T> {
    capacity: usize,
    clock: u64,
    frames: HashMap<FrameKey, (T, u64)>,
    stats: BufferStats,
}

/// A fixed-capacity, thread-safe LRU cache of page-like values.
pub struct BufferPool<T> {
    inner: Mutex<Inner<T>>,
}

// Manual impl: the clone gets its own mutex (and therefore its own frames),
// so the copy and the original never see each other's cache traffic.
impl<T: Clone> Clone for BufferPool<T> {
    fn clone(&self) -> Self {
        let g = self.lock();
        BufferPool {
            inner: Mutex::new(Inner {
                capacity: g.capacity,
                clock: g.clock,
                frames: g.frames.clone(),
                stats: g.stats,
            }),
        }
    }
}

impl<T: Clone> BufferPool<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().expect("buffer pool lock poisoned")
    }

    /// Creates a pool holding at most `capacity` frames (at least 1).
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            inner: Mutex::new(Inner {
                capacity: capacity.max(1),
                clock: 0,
                frames: HashMap::new(),
                stats: BufferStats::default(),
            }),
        }
    }

    /// Returns the cached value for `key`, or loads it with `load`, caching
    /// the result (evicting the least recently used frame if full).
    pub fn get_or_load(&self, key: FrameKey, load: impl FnOnce() -> T) -> T {
        let mut g = self.lock();
        g.clock += 1;
        let now = g.clock;
        if let Some((v, used)) = g.frames.get_mut(&key) {
            *used = now;
            let value = v.clone();
            g.stats.hits += 1;
            return value;
        }
        g.stats.misses += 1;
        let value = load();
        if g.frames.len() >= g.capacity {
            if let Some((&victim, _)) = g.frames.iter().min_by_key(|(_, (_, used))| *used) {
                g.frames.remove(&victim);
                g.stats.evictions += 1;
            }
        }
        g.frames.insert(key, (value.clone(), now));
        value
    }

    /// Replaces (or inserts) the cached value for `key` after a write.
    pub fn put(&self, key: FrameKey, value: T) {
        let mut g = self.lock();
        g.clock += 1;
        let now = g.clock;
        if g.frames.len() >= g.capacity && !g.frames.contains_key(&key) {
            if let Some((&victim, _)) = g.frames.iter().min_by_key(|(_, (_, used))| *used) {
                g.frames.remove(&victim);
                g.stats.evictions += 1;
            }
        }
        g.frames.insert(key, (value, now));
    }

    /// Drops the cached value for `key` (e.g. after the partition is dropped).
    pub fn invalidate(&self, key: &FrameKey) {
        self.lock().frames.remove(key);
    }

    /// Removes every frame belonging to `partition`.
    pub fn invalidate_partition(&self, partition: u64) {
        self.lock().frames.retain(|(p, _), _| *p != partition);
    }

    /// Current number of cached frames.
    pub fn len(&self) -> usize {
        self.lock().frames.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> BufferStats {
        self.lock().stats
    }

    /// Resets the hit/miss counters (the benchmarks do this between phases).
    pub fn reset_stats(&self) {
        self.lock().stats = BufferStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let pool: BufferPool<String> = BufferPool::new(2);
        let v = pool.get_or_load((1, 1), || "a".to_string());
        assert_eq!(v, "a");
        let v = pool.get_or_load((1, 1), || "SHOULD NOT LOAD".to_string());
        assert_eq!(v, "a");
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool: BufferPool<u32> = BufferPool::new(2);
        pool.get_or_load((0, 1), || 1);
        pool.get_or_load((0, 2), || 2);
        // touch page 1 so page 2 becomes LRU
        pool.get_or_load((0, 1), || 99);
        pool.get_or_load((0, 3), || 3); // evicts page 2
        assert_eq!(pool.len(), 2);
        let s = pool.stats();
        assert_eq!(s.evictions, 1);
        // page 2 must be re-loaded
        let v = pool.get_or_load((0, 2), || 22);
        assert_eq!(v, 22);
    }

    #[test]
    fn put_and_invalidate() {
        let pool: BufferPool<u32> = BufferPool::new(4);
        pool.put((7, 0), 42);
        assert_eq!(pool.get_or_load((7, 0), || 0), 42);
        pool.invalidate(&(7, 0));
        assert_eq!(pool.get_or_load((7, 0), || 5), 5);

        pool.put((8, 0), 1);
        pool.put((8, 1), 2);
        pool.put((9, 0), 3);
        pool.invalidate_partition(8);
        assert_eq!(pool.len(), 2); // (7,0) reloaded above and (9,0)
    }

    #[test]
    fn capacity_of_zero_is_clamped_to_one() {
        let pool: BufferPool<u32> = BufferPool::new(0);
        pool.put((0, 0), 1);
        pool.put((0, 1), 2);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let pool: BufferPool<u32> = BufferPool::new(2);
        pool.get_or_load((0, 0), || 1);
        pool.reset_stats();
        assert_eq!(pool.stats(), BufferStats::default());
        assert_eq!(pool.stats().hit_ratio(), 0.0);
    }
}
