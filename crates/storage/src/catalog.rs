//! Dataset catalog.
//!
//! The SQL layer addresses data by name (`SELECT QUT('flights', …)`); the
//! catalog maps names to dataset ids and remembers per-dataset metadata such
//! as cardinality and temporal extent.

use crate::error::StorageError;
use crate::Result;
use hermes_trajectory::TimeInterval;
use std::collections::HashMap;

/// Identifier of a registered dataset.
pub type DatasetId = u64;

/// Metadata kept per dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetMeta {
    /// Catalog identifier.
    pub id: DatasetId,
    /// User-facing name.
    pub name: String,
    /// Number of trajectories loaded.
    pub num_trajectories: usize,
    /// Total number of points loaded.
    pub num_points: usize,
    /// Temporal extent of the data, when known.
    pub lifespan: Option<TimeInterval>,
}

/// Name → dataset registry.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    by_name: HashMap<String, DatasetId>,
    by_id: HashMap<DatasetId, DatasetMeta>,
    next_id: DatasetId,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a dataset name, failing if it already exists.
    pub fn create(&mut self, name: &str) -> Result<DatasetId> {
        if self.by_name.contains_key(name) {
            return Err(StorageError::DatasetExists { name: name.into() });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.by_name.insert(name.to_string(), id);
        self.by_id.insert(
            id,
            DatasetMeta {
                id,
                name: name.to_string(),
                num_trajectories: 0,
                num_points: 0,
                lifespan: None,
            },
        );
        Ok(id)
    }

    /// Looks a dataset up by name.
    pub fn get(&self, name: &str) -> Result<&DatasetMeta> {
        let id = self
            .by_name
            .get(name)
            .ok_or_else(|| StorageError::UnknownDataset { name: name.into() })?;
        Ok(&self.by_id[id])
    }

    /// Looks a dataset up by id.
    pub fn get_by_id(&self, id: DatasetId) -> Option<&DatasetMeta> {
        self.by_id.get(&id)
    }

    /// Updates the statistics of a dataset after loading data into it.
    pub fn update_stats(
        &mut self,
        id: DatasetId,
        num_trajectories: usize,
        num_points: usize,
        lifespan: Option<TimeInterval>,
    ) {
        if let Some(meta) = self.by_id.get_mut(&id) {
            meta.num_trajectories = num_trajectories;
            meta.num_points = num_points;
            meta.lifespan = lifespan;
        }
    }

    /// Removes a dataset by name.
    pub fn drop_dataset(&mut self, name: &str) -> Result<DatasetMeta> {
        let id = self
            .by_name
            .remove(name)
            .ok_or_else(|| StorageError::UnknownDataset { name: name.into() })?;
        Ok(self.by_id.remove(&id).expect("catalog maps are in sync"))
    }

    /// Iterates over all registered datasets.
    pub fn list(&self) -> impl Iterator<Item = &DatasetMeta> {
        self.by_id.values()
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when no dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// The id the next [`Catalog::create`] will hand out — serialized into
    /// snapshots so dataset ids stay unique across restarts even after drops.
    pub fn next_id(&self) -> DatasetId {
        self.next_id
    }

    /// Rebuilds a catalog from snapshot parts: the metadata rows and the id
    /// allocator. Rejects duplicate ids/names and ids at or beyond the
    /// allocator, so a corrupt snapshot cannot produce a catalog that later
    /// hands out a colliding id.
    pub fn from_parts(metas: Vec<DatasetMeta>, next_id: DatasetId) -> Result<Catalog> {
        let mut catalog = Catalog {
            next_id,
            ..Catalog::default()
        };
        for meta in metas {
            if meta.id >= next_id {
                return Err(StorageError::Corrupt {
                    reason: format!(
                        "dataset id {} is at or beyond the allocator ({next_id})",
                        meta.id
                    ),
                });
            }
            if catalog.by_name.insert(meta.name.clone(), meta.id).is_some() {
                return Err(StorageError::DatasetExists {
                    name: meta.name.clone(),
                });
            }
            if catalog.by_id.insert(meta.id, meta).is_some() {
                return Err(StorageError::Corrupt {
                    reason: "duplicate dataset id in snapshot".into(),
                });
            }
        }
        Ok(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::Timestamp;

    #[test]
    fn create_get_drop() {
        let mut c = Catalog::new();
        let id = c.create("flights").unwrap();
        assert_eq!(c.get("flights").unwrap().id, id);
        assert!(matches!(
            c.create("flights"),
            Err(StorageError::DatasetExists { .. })
        ));
        assert!(matches!(
            c.get("vessels"),
            Err(StorageError::UnknownDataset { .. })
        ));
        let dropped = c.drop_dataset("flights").unwrap();
        assert_eq!(dropped.name, "flights");
        assert!(c.get("flights").is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn stats_update_round_trips() {
        let mut c = Catalog::new();
        let id = c.create("flights").unwrap();
        let span = TimeInterval::new(Timestamp(0), Timestamp(1_000_000));
        c.update_stats(id, 120, 36_000, Some(span));
        let meta = c.get("flights").unwrap();
        assert_eq!(meta.num_trajectories, 120);
        assert_eq!(meta.num_points, 36_000);
        assert_eq!(meta.lifespan, Some(span));
        assert_eq!(c.get_by_id(id).unwrap().name, "flights");
        assert_eq!(c.list().count(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut c = Catalog::new();
        let a = c.create("a").unwrap();
        let b = c.create("b").unwrap();
        c.drop_dataset("a").unwrap();
        let d = c.create("d").unwrap();
        assert!(a < b && b < d);
    }
}
