//! Compact binary serialization of sub-trajectories and trajectories, plus
//! the little-endian [`ByteWriter`]/[`ByteReader`] primitives every durable
//! format in the workspace is built from (snapshot bodies, WAL record
//! payloads, the ReTraTree state encoding — see `docs/STORAGE.md`).
//!
//! Records stored in partition pages are encoded with a small fixed layout
//! (little-endian, no self-description) because the schema never varies:
//!
//! ```text
//! sub_trajectory_id.trajectory_id : u64
//! sub_trajectory_id.offset        : u32
//! trajectory_id                   : u64
//! object_id                       : u64
//! point count                     : u32
//! points                          : count × (f64 x, f64 y, i64 t)
//! ```

use crate::error::StorageError;
use crate::Result;
use hermes_trajectory::{Point, SubTrajectory, SubTrajectoryId, Timestamp, Trajectory};

/// An append-only little-endian encoder: the writing half of the byte-level
/// codec shared by every durable format (snapshot bodies, WAL records, the
/// ReTraTree state encoding).
///
/// Variable-length payloads ([`ByteWriter::bytes`], [`ByteWriter::str`]) are
/// written with a `u32` length prefix; fixed-width integers and floats are
/// written raw, little-endian. [`ByteReader`] mirrors every method.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// An empty writer pre-sized for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian (two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern, little-endian — the
    /// round trip is bit-exact, which the restart-equivalence guarantee
    /// relies on.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u32` length prefix followed by the raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Writes a UTF-8 string with a `u32` length prefix.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends raw bytes with no length prefix (fixed-layout payloads whose
    /// size the reader already knows, e.g. whole pages).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// The fallible reading half of the byte-level codec: every accessor checks
/// the remaining length and returns [`StorageError::Corrupt`] instead of
/// panicking, so decoding a damaged snapshot or WAL record surfaces as an
/// error the recovery path can act on.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len()
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.bytes.len() < n {
            return Err(StorageError::Corrupt {
                reason: format!(
                    "truncated input: {what} needs {n} bytes but only {} remain",
                    self.bytes.len()
                ),
            });
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn array<const N: usize>(&mut self, what: &str) -> Result<[u8; N]> {
        Ok(self
            .take(N, what)?
            .try_into()
            .expect("take returned N bytes"))
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.array::<1>("u8")?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.array("u16")?))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array("u32")?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array("u64")?))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.array("i64")?))
    }

    /// Reads a little-endian IEEE-754 `f64` (bit-exact).
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.array("f64")?))
    }

    /// Reads a `bool` byte, rejecting anything other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StorageError::Corrupt {
                reason: format!("invalid bool byte {other}"),
            }),
        }
    }

    /// Reads a `u32`-length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len, "length-prefixed bytes")
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| StorageError::Corrupt {
            reason: "length-prefixed string is not valid UTF-8".into(),
        })
    }

    /// Reads `n` raw bytes (no length prefix).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n, "raw bytes")
    }
}

/// Serializes a sub-trajectory into bytes suitable for a page record.
pub fn encode_sub_trajectory(sub: &SubTrajectory) -> Vec<u8> {
    let pts = sub.points();
    let mut buf = Vec::with_capacity(8 + 4 + 8 + 8 + 4 + pts.len() * 24);
    buf.extend_from_slice(&sub.id.trajectory_id.to_le_bytes());
    buf.extend_from_slice(&sub.id.offset.to_le_bytes());
    buf.extend_from_slice(&sub.trajectory_id.to_le_bytes());
    buf.extend_from_slice(&sub.object_id.to_le_bytes());
    buf.extend_from_slice(&(pts.len() as u32).to_le_bytes());
    for p in pts {
        buf.extend_from_slice(&p.x.to_le_bytes());
        buf.extend_from_slice(&p.y.to_le_bytes());
        buf.extend_from_slice(&p.t.millis().to_le_bytes());
    }
    buf
}

/// Decodes a sub-trajectory previously produced by [`encode_sub_trajectory`].
pub fn decode_sub_trajectory(bytes: &[u8]) -> Result<SubTrajectory> {
    const HEADER: usize = 8 + 4 + 8 + 8 + 4;
    if bytes.len() < HEADER {
        return Err(StorageError::Corrupt {
            reason: format!("record of {} bytes is shorter than the header", bytes.len()),
        });
    }
    let mut r = ByteReader::new(bytes);
    let id_traj = r.u64()?;
    let id_off = r.u32()?;
    let trajectory_id = r.u64()?;
    let object_id = r.u64()?;
    let count = r.u32()? as usize;
    if count < 2 {
        return Err(StorageError::Corrupt {
            reason: format!("sub-trajectory record claims only {count} points"),
        });
    }
    if r.remaining() < count.saturating_mul(24) {
        return Err(StorageError::Corrupt {
            reason: format!(
                "record truncated: {} points declared but only {} bytes of payload",
                count,
                r.remaining()
            ),
        });
    }
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        let x = r.f64()?;
        let y = r.f64()?;
        let t = r.i64()?;
        points.push(Point::new(x, y, Timestamp(t)));
    }
    Ok(SubTrajectory::from_points(
        SubTrajectoryId::new(id_traj, id_off),
        trajectory_id,
        object_id,
        points,
    ))
}

/// Appends a sub-trajectory record (the page-record layout above) to a
/// [`ByteWriter`] as a `u32`-length-prefixed payload, so container formats
/// (snapshots, WAL records) can embed records without an extra allocation
/// per record.
pub fn encode_sub_trajectory_into(w: &mut ByteWriter, sub: &SubTrajectory) {
    w.bytes(&encode_sub_trajectory(sub));
}

/// Reads a sub-trajectory embedded by [`encode_sub_trajectory_into`].
pub fn decode_sub_trajectory_from(r: &mut ByteReader<'_>) -> Result<SubTrajectory> {
    decode_sub_trajectory(r.bytes()?)
}

/// Appends a whole trajectory to a [`ByteWriter`]:
///
/// ```text
/// id          : u64
/// object_id   : u64
/// point count : u32
/// points      : count × (f64 x, f64 y, i64 t)
/// ```
pub fn encode_trajectory_into(w: &mut ByteWriter, t: &Trajectory) {
    let pts = t.points();
    w.u64(t.id);
    w.u64(t.object_id);
    w.u32(pts.len() as u32);
    for p in pts {
        w.f64(p.x);
        w.f64(p.y);
        w.i64(p.t.millis());
    }
}

/// Reads a trajectory written by [`encode_trajectory_into`], re-validating
/// the construction invariants (≥ 2 points, finite coordinates, strictly
/// increasing time) so corrupt input cannot build an invalid trajectory.
pub fn decode_trajectory_from(r: &mut ByteReader<'_>) -> Result<Trajectory> {
    let id = r.u64()?;
    let object_id = r.u64()?;
    let count = r.u32()? as usize;
    if r.remaining() < count.saturating_mul(24) {
        return Err(StorageError::Corrupt {
            reason: format!(
                "trajectory {id} truncated: {count} points declared but only {} bytes remain",
                r.remaining()
            ),
        });
    }
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        let x = r.f64()?;
        let y = r.f64()?;
        let t = r.i64()?;
        points.push(Point::new(x, y, Timestamp(t)));
    }
    Trajectory::new(id, object_id, points).map_err(|e| StorageError::Corrupt {
        reason: format!("trajectory {id} fails validation: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SubTrajectory {
        SubTrajectory::from_points(
            SubTrajectoryId::new(42, 7),
            42,
            9,
            vec![
                Point::new(1.5, -2.25, Timestamp(1_000)),
                Point::new(3.0, 4.0, Timestamp(2_000)),
                Point::new(5.5, 6.5, Timestamp(3_500)),
            ],
        )
    }

    #[test]
    fn round_trip_preserves_everything() {
        let sub = sample();
        let bytes = encode_sub_trajectory(&sub);
        let back = decode_sub_trajectory(&bytes).unwrap();
        assert_eq!(back.id, sub.id);
        assert_eq!(back.trajectory_id, sub.trajectory_id);
        assert_eq!(back.object_id, sub.object_id);
        assert_eq!(back.points(), sub.points());
    }

    #[test]
    fn truncated_records_are_rejected() {
        let bytes = encode_sub_trajectory(&sample());
        assert!(matches!(
            decode_sub_trajectory(&bytes[..10]),
            Err(StorageError::Corrupt { .. })
        ));
        assert!(matches!(
            decode_sub_trajectory(&bytes[..bytes.len() - 4]),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn point_count_below_two_is_corrupt() {
        let sub = sample();
        let mut bytes = encode_sub_trajectory(&sub).to_vec();
        // Overwrite the count field (offset 8+4+8+8 = 28) with 1.
        bytes[28..32].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            decode_sub_trajectory(&bytes),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn encoded_size_is_predictable() {
        let sub = sample();
        let bytes = encode_sub_trajectory(&sub);
        assert_eq!(bytes.len(), 32 + 3 * 24);
    }

    #[test]
    fn byte_writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(123_456);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.f64(-0.125);
        w.bool(true);
        w.bool(false);
        w.bytes(b"payload");
        w.str("héllo");
        w.raw(&[1, 2, 3]);
        let buf = w.into_bytes();

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.raw(3).unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn byte_reader_rejects_truncation_and_bad_values() {
        let mut w = ByteWriter::new();
        w.u64(1);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf[..4]);
        assert!(matches!(r.u64(), Err(StorageError::Corrupt { .. })));

        // A length prefix pointing past the end is corrupt, not a panic.
        let mut w = ByteWriter::new();
        w.u32(1_000);
        w.raw(b"short");
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.bytes(), Err(StorageError::Corrupt { .. })));

        let mut r = ByteReader::new(&[2]);
        assert!(matches!(r.bool(), Err(StorageError::Corrupt { .. })));
        let mut r = ByteReader::new(&[4, 0, 0, 0, 0xFF, 0xFE, 0xFD, 0xFC]);
        assert!(matches!(r.str(), Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn trajectory_round_trip_is_bit_exact() {
        let t = Trajectory::new(
            9,
            4,
            vec![
                Point::new(1.0 / 3.0, -2.25, Timestamp(-5)),
                Point::new(f64::MIN_POSITIVE, 4.0e18, Timestamp(2_000)),
                Point::new(5.5, 6.5, Timestamp(3_500)),
            ],
        )
        .unwrap();
        let mut w = ByteWriter::new();
        encode_trajectory_into(&mut w, &t);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        let back = decode_trajectory_from(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.id, t.id);
        assert_eq!(back.object_id, t.object_id);
        for (a, b) in back.points().iter().zip(t.points()) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.t, b.t);
        }
    }

    #[test]
    fn corrupt_trajectories_are_rejected() {
        let t = Trajectory::new(
            1,
            1,
            vec![
                Point::new(0.0, 0.0, Timestamp(0)),
                Point::new(1.0, 1.0, Timestamp(1_000)),
            ],
        )
        .unwrap();
        let mut w = ByteWriter::new();
        encode_trajectory_into(&mut w, &t);
        let buf = w.into_bytes();
        // Truncated payload.
        let mut r = ByteReader::new(&buf[..buf.len() - 8]);
        assert!(matches!(
            decode_trajectory_from(&mut r),
            Err(StorageError::Corrupt { .. })
        ));
        // Non-monotonic time fails Trajectory::new's re-validation.
        let mut bad = buf.clone();
        let t_off = 8 + 8 + 4 + 16; // first point's timestamp
        bad[t_off..t_off + 8].copy_from_slice(&5_000i64.to_le_bytes());
        let mut r = ByteReader::new(&bad);
        assert!(matches!(
            decode_trajectory_from(&mut r),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn embedded_sub_trajectory_round_trip() {
        let sub = sample();
        let mut w = ByteWriter::new();
        encode_sub_trajectory_into(&mut w, &sub);
        encode_sub_trajectory_into(&mut w, &sub);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        let a = decode_sub_trajectory_from(&mut r).unwrap();
        let b = decode_sub_trajectory_from(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(a, sub);
        assert_eq!(b, sub);
    }
}
