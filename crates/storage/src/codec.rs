//! Compact binary serialization of sub-trajectories.
//!
//! Records stored in partition pages are encoded with a small fixed layout
//! (little-endian, no self-description) because the schema never varies:
//!
//! ```text
//! sub_trajectory_id.trajectory_id : u64
//! sub_trajectory_id.offset        : u32
//! trajectory_id                   : u64
//! object_id                       : u64
//! point count                     : u32
//! points                          : count × (f64 x, f64 y, i64 t)
//! ```

use crate::error::StorageError;
use crate::Result;
use hermes_trajectory::{Point, SubTrajectory, SubTrajectoryId, Timestamp};

/// A little-endian read cursor over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len()
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        let (head, tail) = self.bytes.split_at(N);
        self.bytes = tail;
        head.try_into().expect("split_at returned N bytes")
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take())
    }
}

/// Serializes a sub-trajectory into bytes suitable for a page record.
pub fn encode_sub_trajectory(sub: &SubTrajectory) -> Vec<u8> {
    let pts = sub.points();
    let mut buf = Vec::with_capacity(8 + 4 + 8 + 8 + 4 + pts.len() * 24);
    buf.extend_from_slice(&sub.id.trajectory_id.to_le_bytes());
    buf.extend_from_slice(&sub.id.offset.to_le_bytes());
    buf.extend_from_slice(&sub.trajectory_id.to_le_bytes());
    buf.extend_from_slice(&sub.object_id.to_le_bytes());
    buf.extend_from_slice(&(pts.len() as u32).to_le_bytes());
    for p in pts {
        buf.extend_from_slice(&p.x.to_le_bytes());
        buf.extend_from_slice(&p.y.to_le_bytes());
        buf.extend_from_slice(&p.t.millis().to_le_bytes());
    }
    buf
}

/// Decodes a sub-trajectory previously produced by [`encode_sub_trajectory`].
pub fn decode_sub_trajectory(bytes: &[u8]) -> Result<SubTrajectory> {
    const HEADER: usize = 8 + 4 + 8 + 8 + 4;
    if bytes.len() < HEADER {
        return Err(StorageError::Corrupt {
            reason: format!("record of {} bytes is shorter than the header", bytes.len()),
        });
    }
    let mut r = Reader { bytes };
    let id_traj = r.get_u64_le();
    let id_off = r.get_u32_le();
    let trajectory_id = r.get_u64_le();
    let object_id = r.get_u64_le();
    let count = r.get_u32_le() as usize;
    if count < 2 {
        return Err(StorageError::Corrupt {
            reason: format!("sub-trajectory record claims only {count} points"),
        });
    }
    if r.remaining() < count * 24 {
        return Err(StorageError::Corrupt {
            reason: format!(
                "record truncated: {} points declared but only {} bytes of payload",
                count,
                r.remaining()
            ),
        });
    }
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        let x = r.get_f64_le();
        let y = r.get_f64_le();
        let t = r.get_i64_le();
        points.push(Point::new(x, y, Timestamp(t)));
    }
    Ok(SubTrajectory::from_points(
        SubTrajectoryId::new(id_traj, id_off),
        trajectory_id,
        object_id,
        points,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SubTrajectory {
        SubTrajectory::from_points(
            SubTrajectoryId::new(42, 7),
            42,
            9,
            vec![
                Point::new(1.5, -2.25, Timestamp(1_000)),
                Point::new(3.0, 4.0, Timestamp(2_000)),
                Point::new(5.5, 6.5, Timestamp(3_500)),
            ],
        )
    }

    #[test]
    fn round_trip_preserves_everything() {
        let sub = sample();
        let bytes = encode_sub_trajectory(&sub);
        let back = decode_sub_trajectory(&bytes).unwrap();
        assert_eq!(back.id, sub.id);
        assert_eq!(back.trajectory_id, sub.trajectory_id);
        assert_eq!(back.object_id, sub.object_id);
        assert_eq!(back.points(), sub.points());
    }

    #[test]
    fn truncated_records_are_rejected() {
        let bytes = encode_sub_trajectory(&sample());
        assert!(matches!(
            decode_sub_trajectory(&bytes[..10]),
            Err(StorageError::Corrupt { .. })
        ));
        assert!(matches!(
            decode_sub_trajectory(&bytes[..bytes.len() - 4]),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn point_count_below_two_is_corrupt() {
        let sub = sample();
        let mut bytes = encode_sub_trajectory(&sub).to_vec();
        // Overwrite the count field (offset 8+4+8+8 = 28) with 1.
        bytes[28..32].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            decode_sub_trajectory(&bytes),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn encoded_size_is_predictable() {
        let sub = sample();
        let bytes = encode_sub_trajectory(&sub);
        assert_eq!(bytes.len(), 32 + 3 * 24);
    }
}
