//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial) for on-disk integrity.
//!
//! Both durable formats frame their bytes with this checksum: the snapshot
//! container covers header + body with one trailing CRC, and every WAL
//! record carries the CRC of its payload (see `docs/STORAGE.md`). The
//! implementation is the standard reflected table-driven one — polynomial
//! `0xEDB88320`, initial value `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF` —
//! matching zlib's `crc32()`, so an independent decoder can use any stock
//! CRC-32 library to verify files.

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// A streaming CRC-32 state, for checksumming data produced in pieces
/// (e.g. a snapshot header followed by its body).
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh CRC state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The classic zlib check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"snapshot header | snapshot body | more body bytes";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"a torn or corrupted record must not verify";
        let baseline = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            copy[i] ^= 0x01;
            assert_ne!(crc32(&copy), baseline, "flip at byte {i}");
            copy[i] ^= 0x01;
        }
    }
}
