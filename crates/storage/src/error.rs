//! Storage error type.

use std::fmt;

/// Errors raised by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A record was too large to fit in a single page.
    RecordTooLarge {
        /// Size of the record in bytes.
        size: usize,
        /// Maximum payload a page can hold.
        max: usize,
    },
    /// A page id was out of range for the partition.
    InvalidPage {
        /// The offending page id.
        page: u64,
    },
    /// A slot id did not exist on the page.
    InvalidSlot {
        /// The page.
        page: u64,
        /// The offending slot.
        slot: u16,
    },
    /// A partition id was unknown.
    UnknownPartition {
        /// The offending partition id.
        partition: u64,
    },
    /// A dataset name was not present in the catalog.
    UnknownDataset {
        /// The requested name.
        name: String,
    },
    /// A dataset with the same name already exists.
    DatasetExists {
        /// The conflicting name.
        name: String,
    },
    /// A record could not be decoded (corrupt or truncated bytes).
    Corrupt {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A filesystem operation failed. The underlying `std::io::Error` is
    /// flattened to text so the error type stays `Clone`/`PartialEq` (the
    /// whole error surface is comparable in tests).
    Io {
        /// What was being done and to which path.
        context: String,
        /// The rendered `std::io::Error`.
        source: String,
    },
}

impl StorageError {
    /// Wraps an `std::io::Error` with a human-readable context string.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        StorageError::Io {
            context: context.into(),
            source: source.to_string(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::RecordTooLarge { size, max } => {
                write!(
                    f,
                    "record of {size} bytes exceeds page payload capacity {max}"
                )
            }
            StorageError::InvalidPage { page } => write!(f, "invalid page id {page}"),
            StorageError::InvalidSlot { page, slot } => {
                write!(f, "invalid slot {slot} on page {page}")
            }
            StorageError::UnknownPartition { partition } => {
                write!(f, "unknown partition {partition}")
            }
            StorageError::UnknownDataset { name } => write!(f, "unknown dataset '{name}'"),
            StorageError::DatasetExists { name } => {
                write!(f, "dataset '{name}' already exists")
            }
            StorageError::Corrupt { reason } => write!(f, "corrupt record: {reason}"),
            StorageError::Io { context, source } => write!(f, "I/O error {context}: {source}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(StorageError::RecordTooLarge {
            size: 10_000,
            max: 8_000
        }
        .to_string()
        .contains("10000"));
        assert!(StorageError::UnknownDataset {
            name: "flights".into()
        }
        .to_string()
        .contains("flights"));
    }
}
