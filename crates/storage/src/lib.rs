//! # hermes-storage
//!
//! The Moving Object Database storage engine underneath the ReTraTree.
//!
//! In the paper's architecture (Fig. 2) trajectories are "archived on disk in
//! dedicated R-tree indexed partitions" — one partition per representative
//! sub-trajectory — plus a separate partition for outliers. When a partition
//! exceeds a pre-defined threshold, S2T-Clustering is re-run on it.
//!
//! This crate reproduces that storage layer natively:
//!
//! * [`page`] — fixed-size slotted pages holding serialized sub-trajectories,
//! * [`buffer`] — a small buffer pool with LRU eviction and hit/miss
//!   accounting, standing in for PostgreSQL's shared buffers (the benchmark
//!   harness reports logical I/O through it),
//! * [`codec`] — compact binary serialization of (sub-)trajectories plus the
//!   [`ByteWriter`]/[`ByteReader`] primitives every durable format uses,
//! * [`partition`] — append-oriented partitions built from pages, with size
//!   accounting to drive the re-clustering threshold,
//! * [`catalog`] — the named-dataset catalog used by the SQL layer.
//!
//! Since the durability PR this crate also owns the on-disk formats — the
//! checksummed [`snapshot`] container, the [`wal`] write-ahead log and the
//! [`crc`] checksum both share. The byte-level layouts are normatively
//! specified in `docs/STORAGE.md`; higher layers (`hermes-retratree`,
//! `hermes-core`) encode their state through these building blocks.

#![deny(missing_docs)]

pub mod buffer;
pub mod catalog;
pub mod codec;
pub mod crc;
pub mod error;
pub mod page;
pub mod partition;
pub mod snapshot;
pub mod wal;

pub use buffer::{BufferPool, BufferStats};
pub use catalog::{Catalog, DatasetId, DatasetMeta};
pub use codec::{decode_sub_trajectory, encode_sub_trajectory, ByteReader, ByteWriter};
pub use crc::{crc32, Crc32};
pub use error::StorageError;
pub use page::{Page, PageId, SlotId, PAGE_SIZE};
pub use partition::{Partition, PartitionId, PartitionKind, PartitionStore, RecordLocator};
pub use snapshot::{read_snapshot_file, write_snapshot_file};
pub use wal::{Wal, WalRecovery};

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
