//! # hermes-storage
//!
//! The Moving Object Database storage engine underneath the ReTraTree.
//!
//! In the paper's architecture (Fig. 2) trajectories are "archived on disk in
//! dedicated R-tree indexed partitions" — one partition per representative
//! sub-trajectory — plus a separate partition for outliers. When a partition
//! exceeds a pre-defined threshold, S2T-Clustering is re-run on it.
//!
//! This crate reproduces that storage layer natively:
//!
//! * [`page`] — fixed-size slotted pages holding serialized sub-trajectories,
//! * [`buffer`] — a small buffer pool with LRU eviction and hit/miss
//!   accounting, standing in for PostgreSQL's shared buffers (the benchmark
//!   harness reports logical I/O through it),
//! * [`codec`] — compact binary serialization of sub-trajectories,
//! * [`partition`] — append-oriented partitions built from pages, with size
//!   accounting to drive the re-clustering threshold,
//! * [`catalog`] — the named-dataset catalog used by the SQL layer.

pub mod buffer;
pub mod catalog;
pub mod codec;
pub mod error;
pub mod page;
pub mod partition;

pub use buffer::{BufferPool, BufferStats};
pub use catalog::{Catalog, DatasetId, DatasetMeta};
pub use codec::{decode_sub_trajectory, encode_sub_trajectory};
pub use error::StorageError;
pub use page::{Page, PageId, SlotId, PAGE_SIZE};
pub use partition::{Partition, PartitionId, PartitionKind, PartitionStore, RecordLocator};

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
