//! Fixed-size slotted pages.
//!
//! Pages mimic the PostgreSQL heap-page layout at the level of behaviour that
//! matters for the reproduction: a fixed 8 KiB size, a slot directory growing
//! from the front, record payloads growing from the back, and tombstoned
//! deletion. The buffer pool and partitions operate exclusively on pages, so
//! the benchmark harness can report logical page reads the same way the
//! paper's in-DBMS implementation would.

use crate::error::StorageError;
use crate::Result;

/// Page size in bytes (PostgreSQL's default block size).
pub const PAGE_SIZE: usize = 8192;

/// Per-slot directory entry size: offset (u16) + length (u16).
const SLOT_ENTRY: usize = 4;
/// Page header: slot count (u16) + free-space pointer (u16).
const HEADER: usize = 4;

/// Identifier of a page within a partition.
pub type PageId = u64;
/// Identifier of a slot within a page.
pub type SlotId = u16;

/// A fixed-size slotted data page.
#[derive(Debug, Clone)]
pub struct Page {
    data: Vec<u8>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// Creates an empty page.
    pub fn new() -> Self {
        let mut data = vec![0u8; PAGE_SIZE];
        // slot count = 0
        data[0..2].copy_from_slice(&0u16.to_le_bytes());
        // free space pointer = end of page
        data[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        Page { data }
    }

    fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.data[0], self.data[1]])
    }

    fn set_slot_count(&mut self, n: u16) {
        self.data[0..2].copy_from_slice(&n.to_le_bytes());
    }

    fn free_ptr(&self) -> u16 {
        u16::from_le_bytes([self.data[2], self.data[3]])
    }

    fn set_free_ptr(&mut self, p: u16) {
        self.data[2..4].copy_from_slice(&p.to_le_bytes());
    }

    fn slot(&self, slot: SlotId) -> (u16, u16) {
        let base = HEADER + slot as usize * SLOT_ENTRY;
        let off = u16::from_le_bytes([self.data[base], self.data[base + 1]]);
        let len = u16::from_le_bytes([self.data[base + 2], self.data[base + 3]]);
        (off, len)
    }

    fn set_slot(&mut self, slot: SlotId, off: u16, len: u16) {
        let base = HEADER + slot as usize * SLOT_ENTRY;
        self.data[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.data[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Number of live (non-deleted) records.
    pub fn live_records(&self) -> usize {
        (0..self.slot_count())
            .filter(|&s| self.slot(s).1 > 0)
            .count()
    }

    /// Free bytes remaining for one more record (accounting for its slot).
    pub fn free_space(&self) -> usize {
        let used_front = HEADER + self.slot_count() as usize * SLOT_ENTRY;
        let free_back = self.free_ptr() as usize;
        (free_back - used_front).saturating_sub(SLOT_ENTRY)
    }

    /// Largest record this (empty) page could ever hold.
    pub fn max_record_size() -> usize {
        PAGE_SIZE - HEADER - SLOT_ENTRY
    }

    /// Appends a record, returning its slot. Fails when the record would not
    /// fit in the remaining free space.
    pub fn insert(&mut self, record: &[u8]) -> Result<SlotId> {
        if record.len() > Self::max_record_size() {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: Self::max_record_size(),
            });
        }
        if record.len() > self.free_space() {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: self.free_space(),
            });
        }
        let slot = self.slot_count();
        let new_free = self.free_ptr() as usize - record.len();
        self.data[new_free..new_free + record.len()].copy_from_slice(record);
        self.set_free_ptr(new_free as u16);
        self.set_slot(slot, new_free as u16, record.len() as u16);
        self.set_slot_count(slot + 1);
        Ok(slot)
    }

    /// Reads the record stored in `slot`; `None` if the slot was deleted.
    pub fn get(&self, slot: SlotId) -> Result<Option<Vec<u8>>> {
        if slot >= self.slot_count() {
            return Err(StorageError::InvalidSlot { page: 0, slot });
        }
        let (off, len) = self.slot(slot);
        if len == 0 {
            return Ok(None);
        }
        Ok(Some(
            self.data[off as usize..off as usize + len as usize].to_vec(),
        ))
    }

    /// Tombstones the record in `slot` (space is not reclaimed in place, as in
    /// a heap page awaiting vacuum).
    pub fn delete(&mut self, slot: SlotId) -> Result<bool> {
        if slot >= self.slot_count() {
            return Err(StorageError::InvalidSlot { page: 0, slot });
        }
        let (off, len) = self.slot(slot);
        if len == 0 {
            return Ok(false);
        }
        self.set_slot(slot, off, 0);
        Ok(true)
    }

    /// The raw page image — exactly [`PAGE_SIZE`] bytes, written verbatim
    /// into snapshots so record locators survive a restart unchanged.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Rebuilds a page from a raw image produced by [`Page::as_bytes`],
    /// validating the structural invariants (size, slot directory and free
    /// pointer in bounds, every slot inside the payload area) so a corrupt
    /// snapshot cannot build a page whose accessors would slice out of
    /// bounds.
    pub fn from_bytes(bytes: &[u8]) -> Result<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt {
                reason: format!("page image is {} bytes, expected {PAGE_SIZE}", bytes.len()),
            });
        }
        let page = Page {
            data: bytes.to_vec(),
        };
        let slots = page.slot_count() as usize;
        let dir_end = HEADER + slots * SLOT_ENTRY;
        let free = page.free_ptr() as usize;
        if dir_end > free || free > PAGE_SIZE {
            return Err(StorageError::Corrupt {
                reason: format!(
                    "page directory ({slots} slots) overlaps the payload area (free pointer {free})"
                ),
            });
        }
        for s in 0..slots {
            let (off, len) = page.slot(s as SlotId);
            if len == 0 {
                continue; // tombstone
            }
            let (off, len) = (off as usize, len as usize);
            if off < free || off + len > PAGE_SIZE {
                return Err(StorageError::Corrupt {
                    reason: format!("slot {s} points outside the payload area ({off}+{len})"),
                });
            }
        }
        Ok(page)
    }

    /// Iterates over `(slot, bytes)` of live records.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, Vec<u8>)> + '_ {
        (0..self.slot_count()).filter_map(move |s| {
            let (off, len) = self.slot(s);
            if len == 0 {
                None
            } else {
                Some((
                    s,
                    self.data[off as usize..off as usize + len as usize].to_vec(),
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_round_trip() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a).unwrap().unwrap(), b"hello");
        assert_eq!(p.get(b).unwrap().unwrap(), b"world!");
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn delete_tombstones_without_moving_other_records() {
        let mut p = Page::new();
        let a = p.insert(b"aaa").unwrap();
        let b = p.insert(b"bbb").unwrap();
        assert!(p.delete(a).unwrap());
        assert!(!p.delete(a).unwrap(), "double delete reports false");
        assert_eq!(p.get(a).unwrap(), None);
        assert_eq!(p.get(b).unwrap().unwrap(), b"bbb");
        assert_eq!(p.live_records(), 1);
        assert_eq!(p.iter().count(), 1);
    }

    #[test]
    fn rejects_records_that_do_not_fit() {
        let mut p = Page::new();
        let big = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            p.insert(&big),
            Err(StorageError::RecordTooLarge { .. })
        ));
        // Fill the page with 1 KiB records until it refuses.
        let rec = vec![7u8; 1024];
        let mut inserted = 0;
        while p.insert(&rec).is_ok() {
            inserted += 1;
        }
        assert!(
            inserted >= 7,
            "an 8 KiB page should hold at least 7 KiB of records"
        );
        assert!(p.free_space() < rec.len());
    }

    #[test]
    fn invalid_slot_is_an_error() {
        let p = Page::new();
        assert!(matches!(p.get(3), Err(StorageError::InvalidSlot { .. })));
        let mut p2 = Page::new();
        assert!(matches!(
            p2.delete(0),
            Err(StorageError::InvalidSlot { .. })
        ));
    }

    #[test]
    fn raw_image_round_trips_and_rejects_corruption() {
        let mut p = Page::new();
        let a = p.insert(b"alpha").unwrap();
        let b = p.insert(b"bravo!").unwrap();
        p.delete(a).unwrap();
        let image = p.as_bytes().to_vec();
        assert_eq!(image.len(), PAGE_SIZE);

        let back = Page::from_bytes(&image).unwrap();
        assert_eq!(back.get(a).unwrap(), None);
        assert_eq!(back.get(b).unwrap().unwrap(), b"bravo!");
        assert_eq!(back.live_records(), 1);

        assert!(matches!(
            Page::from_bytes(&image[..100]),
            Err(StorageError::Corrupt { .. })
        ));
        // A slot count implying a directory past the free pointer is corrupt.
        let mut bad = image.clone();
        bad[0..2].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            Page::from_bytes(&bad),
            Err(StorageError::Corrupt { .. })
        ));
        // A slot offset pointing outside the payload area is corrupt.
        let mut bad = image;
        bad[HEADER + SLOT_ENTRY..HEADER + SLOT_ENTRY + 2].copy_from_slice(&10u16.to_le_bytes());
        assert!(matches!(
            Page::from_bytes(&bad),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn free_space_decreases_monotonically() {
        let mut p = Page::new();
        let mut last = p.free_space();
        for i in 0..10 {
            p.insert(format!("record-{i}").as_bytes()).unwrap();
            let now = p.free_space();
            assert!(now < last);
            last = now;
        }
    }
}
