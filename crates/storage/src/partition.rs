//! Partitions: the on-"disk" unit of the ReTraTree's fourth level.
//!
//! Each representative sub-trajectory owns one partition holding its cluster
//! members; outliers live in a separate partition (paper, Fig. 2). The
//! [`PartitionStore`] tracks sizes so the maintenance loop can detect when a
//! partition "exceeds a pre-defined threshold" and must be re-clustered.

use crate::buffer::BufferPool;
use crate::codec::{decode_sub_trajectory, encode_sub_trajectory, ByteReader, ByteWriter};
use crate::error::StorageError;
use crate::page::{Page, PageId, SlotId, PAGE_SIZE};
use crate::Result;
use hermes_trajectory::SubTrajectory;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a partition within a dataset.
pub type PartitionId = u64;

/// What a partition stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionKind {
    /// Members of the cluster around one representative sub-trajectory.
    Cluster,
    /// Sub-trajectories not (currently) assigned to any representative.
    Outliers,
}

/// Physical address of a stored record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordLocator {
    /// The partition holding the record.
    pub partition: PartitionId,
    /// The page within the partition.
    pub page: PageId,
    /// The slot within the page.
    pub slot: SlotId,
}

/// An append-oriented collection of pages holding encoded sub-trajectories.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Identifier of this partition.
    pub id: PartitionId,
    /// Kind of content.
    pub kind: PartitionKind,
    pages: Vec<Page>,
    live_records: usize,
}

impl Partition {
    /// Creates an empty partition.
    pub fn new(id: PartitionId, kind: PartitionKind) -> Self {
        Partition {
            id,
            kind,
            pages: vec![Page::new()],
            live_records: 0,
        }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live_records
    }

    /// True when the partition holds no live records.
    pub fn is_empty(&self) -> bool {
        self.live_records == 0
    }

    /// Number of pages (logical size driving the re-clustering threshold).
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Appends an encoded record, adding a page when the last one is full.
    fn append_bytes(&mut self, bytes: &[u8]) -> Result<(PageId, SlotId)> {
        let last = self.pages.len() - 1;
        match self.pages[last].insert(bytes) {
            Ok(slot) => {
                self.live_records += 1;
                Ok((last as PageId, slot))
            }
            Err(StorageError::RecordTooLarge { size, .. }) if size <= Page::max_record_size() => {
                self.pages.push(Page::new());
                let page = self.pages.len() - 1;
                let slot = self.pages[page].insert(bytes)?;
                self.live_records += 1;
                Ok((page as PageId, slot))
            }
            Err(e) => Err(e),
        }
    }

    /// Appends a sub-trajectory, returning where it was stored.
    pub fn append(&mut self, sub: &SubTrajectory) -> Result<(PageId, SlotId)> {
        self.append_bytes(&encode_sub_trajectory(sub))
    }

    /// Reads one record.
    pub fn get(&self, page: PageId, slot: SlotId) -> Result<Option<SubTrajectory>> {
        let p = self
            .pages
            .get(page as usize)
            .ok_or(StorageError::InvalidPage { page })?;
        match p.get(slot)? {
            None => Ok(None),
            Some(bytes) => decode_sub_trajectory(&bytes).map(Some),
        }
    }

    /// Tombstones one record; true when something was actually deleted.
    pub fn delete(&mut self, page: PageId, slot: SlotId) -> Result<bool> {
        let p = self
            .pages
            .get_mut(page as usize)
            .ok_or(StorageError::InvalidPage { page })?;
        let deleted = p.delete(slot)?;
        if deleted {
            self.live_records -= 1;
        }
        Ok(deleted)
    }

    /// Decodes every live record in the partition.
    pub fn scan(&self) -> Result<Vec<SubTrajectory>> {
        let mut out = Vec::with_capacity(self.live_records);
        for page in &self.pages {
            for (_, bytes) in page.iter() {
                out.push(decode_sub_trajectory(&bytes)?);
            }
        }
        Ok(out)
    }

    /// Access to a raw page (used by the buffer pool integration).
    pub fn page(&self, page: PageId) -> Result<&Page> {
        self.pages
            .get(page as usize)
            .ok_or(StorageError::InvalidPage { page })
    }
}

/// All partitions of one dataset, plus the shared buffer pool and the page
/// threshold that triggers re-clustering.
pub struct PartitionStore {
    partitions: HashMap<PartitionId, Partition>,
    next_id: PartitionId,
    /// Re-clustering threshold in pages (paper: "when the size of a partition
    /// exceeds a pre-defined threshold, S2T-Clustering takes action").
    pub page_threshold: usize,
    buffer: Arc<BufferPool<Page>>,
}

// Manual impl: the buffer pool must NOT be shared through the `Arc` — a
// clone that kept writing pages under the same `(partition, page)` keys
// would feed its pages to the original's readers. The clone starts from a
// warm copy of the pool and the two diverge independently.
impl Clone for PartitionStore {
    fn clone(&self) -> Self {
        PartitionStore {
            partitions: self.partitions.clone(),
            next_id: self.next_id,
            page_threshold: self.page_threshold,
            buffer: Arc::new((*self.buffer).clone()),
        }
    }
}

impl PartitionStore {
    /// Creates a store with the given re-clustering threshold (in pages) and
    /// buffer-pool capacity (in frames).
    pub fn new(page_threshold: usize, buffer_frames: usize) -> Self {
        PartitionStore {
            partitions: HashMap::new(),
            next_id: 0,
            page_threshold: page_threshold.max(1),
            buffer: Arc::new(BufferPool::new(buffer_frames)),
        }
    }

    /// Creates a new partition of the given kind and returns its id.
    pub fn create_partition(&mut self, kind: PartitionKind) -> PartitionId {
        let id = self.next_id;
        self.next_id += 1;
        self.partitions.insert(id, Partition::new(id, kind));
        id
    }

    /// Drops a partition entirely (used after its members are re-clustered).
    pub fn drop_partition(&mut self, id: PartitionId) -> Result<Partition> {
        self.buffer.invalidate_partition(id);
        self.partitions
            .remove(&id)
            .ok_or(StorageError::UnknownPartition { partition: id })
    }

    /// Borrow a partition.
    pub fn partition(&self, id: PartitionId) -> Result<&Partition> {
        self.partitions
            .get(&id)
            .ok_or(StorageError::UnknownPartition { partition: id })
    }

    /// Appends a sub-trajectory to partition `id`.
    pub fn append(&mut self, id: PartitionId, sub: &SubTrajectory) -> Result<RecordLocator> {
        let p = self
            .partitions
            .get_mut(&id)
            .ok_or(StorageError::UnknownPartition { partition: id })?;
        let (page, slot) = p.append(sub)?;
        // Keep the buffer coherent with the freshly written page.
        self.buffer.put((id, page), p.page(page)?.clone());
        Ok(RecordLocator {
            partition: id,
            page,
            slot,
        })
    }

    /// Reads a record through the buffer pool (counting hits/misses).
    pub fn read(&self, loc: RecordLocator) -> Result<Option<SubTrajectory>> {
        let part = self.partition(loc.partition)?;
        let page = self.buffer.get_or_load((loc.partition, loc.page), || {
            part.page(loc.page).cloned().unwrap_or_default()
        });
        match page.get(loc.slot)? {
            None => Ok(None),
            Some(bytes) => decode_sub_trajectory(&bytes).map(Some),
        }
    }

    /// Deletes a record.
    pub fn delete(&mut self, loc: RecordLocator) -> Result<bool> {
        let p = self
            .partitions
            .get_mut(&loc.partition)
            .ok_or(StorageError::UnknownPartition {
                partition: loc.partition,
            })?;
        let deleted = p.delete(loc.page, loc.slot)?;
        if deleted {
            self.buffer
                .put((loc.partition, loc.page), p.page(loc.page)?.clone());
        }
        Ok(deleted)
    }

    /// Scans every live record of partition `id`.
    pub fn scan(&self, id: PartitionId) -> Result<Vec<SubTrajectory>> {
        self.partition(id)?.scan()
    }

    /// Ids of partitions whose page count exceeds the threshold — the
    /// candidates for the S2T re-clustering pass of the maintenance loop.
    pub fn over_threshold(&self) -> Vec<PartitionId> {
        self.partitions
            .values()
            .filter(|p| p.num_pages() > self.page_threshold)
            .map(|p| p.id)
            .collect()
    }

    /// All partition ids of a given kind.
    pub fn partitions_of_kind(&self, kind: PartitionKind) -> Vec<PartitionId> {
        self.partitions
            .values()
            .filter(|p| p.kind == kind)
            .map(|p| p.id)
            .collect()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of live records across all partitions.
    pub fn total_records(&self) -> usize {
        self.partitions.values().map(|p| p.len()).sum()
    }

    /// The shared buffer pool (for statistics reporting).
    pub fn buffer(&self) -> &Arc<BufferPool<Page>> {
        &self.buffer
    }

    /// Serializes the store into `w`: allocation counter, then every
    /// partition sorted by id, each as `(id, kind, page count, raw page
    /// images)`. Pages go out verbatim, so every [`RecordLocator`] held by
    /// higher layers stays valid after [`PartitionStore::decode_from`]
    /// rebuilds the store. See `docs/STORAGE.md` for the normative layout.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.u64(self.next_id);
        let mut ids: Vec<PartitionId> = self.partitions.keys().copied().collect();
        ids.sort_unstable();
        w.u32(ids.len() as u32);
        for id in ids {
            let p = &self.partitions[&id];
            w.u64(p.id);
            w.u8(match p.kind {
                PartitionKind::Cluster => 0,
                PartitionKind::Outliers => 1,
            });
            w.u32(p.pages.len() as u32);
            for page in &p.pages {
                w.raw(page.as_bytes());
            }
        }
    }

    /// Rebuilds a store serialized by [`PartitionStore::encode_into`]. The
    /// buffer pool starts cold (it is a cache, not state); live-record counts
    /// are recomputed from the page images.
    pub fn decode_from(
        r: &mut ByteReader<'_>,
        page_threshold: usize,
        buffer_frames: usize,
    ) -> Result<PartitionStore> {
        let next_id = r.u64()?;
        let num_partitions = r.u32()? as usize;
        let mut partitions = HashMap::with_capacity(num_partitions);
        for _ in 0..num_partitions {
            let id = r.u64()?;
            let kind = match r.u8()? {
                0 => PartitionKind::Cluster,
                1 => PartitionKind::Outliers,
                other => {
                    return Err(StorageError::Corrupt {
                        reason: format!("unknown partition kind byte {other}"),
                    })
                }
            };
            let num_pages = r.u32()? as usize;
            if num_pages == 0 {
                return Err(StorageError::Corrupt {
                    reason: format!("partition {id} declares zero pages"),
                });
            }
            let mut pages = Vec::with_capacity(num_pages);
            let mut live_records = 0;
            for _ in 0..num_pages {
                let page = Page::from_bytes(r.raw(PAGE_SIZE)?)?;
                live_records += page.live_records();
                pages.push(page);
            }
            if id >= next_id || partitions.contains_key(&id) {
                return Err(StorageError::Corrupt {
                    reason: format!("partition id {id} is duplicated or beyond the allocator"),
                });
            }
            partitions.insert(
                id,
                Partition {
                    id,
                    kind,
                    pages,
                    live_records,
                },
            );
        }
        Ok(PartitionStore {
            partitions,
            next_id,
            page_threshold: page_threshold.max(1),
            buffer: Arc::new(BufferPool::new(buffer_frames)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::{Point, SubTrajectoryId, Timestamp};

    fn sub(id: u64, n: usize) -> SubTrajectory {
        SubTrajectory::from_points(
            SubTrajectoryId::new(id, 0),
            id,
            id,
            (0..n.max(2))
                .map(|i| Point::new(i as f64, id as f64, Timestamp(i as i64 * 1000)))
                .collect(),
        )
    }

    #[test]
    fn append_read_delete_round_trip() {
        let mut store = PartitionStore::new(4, 16);
        let pid = store.create_partition(PartitionKind::Cluster);
        let loc = store.append(pid, &sub(1, 5)).unwrap();
        let back = store.read(loc).unwrap().unwrap();
        assert_eq!(back.trajectory_id, 1);
        assert_eq!(back.points().len(), 5);
        assert!(store.delete(loc).unwrap());
        assert_eq!(store.read(loc).unwrap(), None);
        assert!(!store.delete(loc).unwrap());
    }

    #[test]
    fn partition_grows_pages_and_reports_threshold() {
        let mut store = PartitionStore::new(2, 16);
        let pid = store.create_partition(PartitionKind::Cluster);
        // Each record ~32 + 200*24 ≈ 4.8 KB, so a page holds one; 40 records
        // produce well over 2 pages.
        for i in 0..40 {
            store.append(pid, &sub(i, 200)).unwrap();
        }
        assert!(store.partition(pid).unwrap().num_pages() > 2);
        assert_eq!(store.over_threshold(), vec![pid]);
        assert_eq!(store.total_records(), 40);
    }

    #[test]
    fn scan_returns_only_live_records() {
        let mut store = PartitionStore::new(8, 16);
        let pid = store.create_partition(PartitionKind::Outliers);
        let locs: Vec<_> = (0..10)
            .map(|i| store.append(pid, &sub(i, 3)).unwrap())
            .collect();
        store.delete(locs[3]).unwrap();
        store.delete(locs[7]).unwrap();
        let scanned = store.scan(pid).unwrap();
        assert_eq!(scanned.len(), 8);
        assert!(scanned
            .iter()
            .all(|s| s.trajectory_id != 3 && s.trajectory_id != 7));
    }

    #[test]
    fn unknown_partition_and_drop() {
        let mut store = PartitionStore::new(4, 16);
        assert!(matches!(
            store.scan(99),
            Err(StorageError::UnknownPartition { partition: 99 })
        ));
        let pid = store.create_partition(PartitionKind::Cluster);
        store.append(pid, &sub(1, 3)).unwrap();
        let dropped = store.drop_partition(pid).unwrap();
        assert_eq!(dropped.len(), 1);
        assert!(store.partition(pid).is_err());
    }

    #[test]
    fn kinds_are_tracked_separately() {
        let mut store = PartitionStore::new(4, 16);
        let c1 = store.create_partition(PartitionKind::Cluster);
        let c2 = store.create_partition(PartitionKind::Cluster);
        let o = store.create_partition(PartitionKind::Outliers);
        let mut clusters = store.partitions_of_kind(PartitionKind::Cluster);
        clusters.sort_unstable();
        assert_eq!(clusters, vec![c1, c2]);
        assert_eq!(store.partitions_of_kind(PartitionKind::Outliers), vec![o]);
        assert_eq!(store.num_partitions(), 3);
    }

    #[test]
    fn store_serialization_preserves_locators_and_records() {
        let mut store = PartitionStore::new(3, 16);
        let c = store.create_partition(PartitionKind::Cluster);
        let o = store.create_partition(PartitionKind::Outliers);
        let locs: Vec<_> = (0..25)
            .map(|i| {
                store
                    .append(if i % 3 == 0 { o } else { c }, &sub(i, 50))
                    .unwrap()
            })
            .collect();
        store.delete(locs[4]).unwrap();
        let dropped = store.create_partition(PartitionKind::Cluster);
        store.drop_partition(dropped).unwrap();

        let mut w = ByteWriter::new();
        store.encode_into(&mut w);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        let mut back = PartitionStore::decode_from(&mut r, 3, 16).unwrap();
        assert!(r.is_empty());

        assert_eq!(back.num_partitions(), store.num_partitions());
        assert_eq!(back.total_records(), store.total_records());
        for (i, loc) in locs.iter().enumerate() {
            assert_eq!(back.read(*loc).unwrap(), store.read(*loc).unwrap(), "{i}");
        }
        // The id allocator continues past the dropped partition.
        let next = back.create_partition(PartitionKind::Cluster);
        assert_eq!(next, dropped + 1);
        // Kinds survive.
        assert_eq!(back.partitions_of_kind(PartitionKind::Outliers), vec![o]);

        // Corrupt kind bytes are rejected.
        let mut bad = buf.clone();
        let kind_off = 8 + 4 + 8; // next_id, count, first partition id
        bad[kind_off] = 9;
        let mut r = ByteReader::new(&bad);
        assert!(matches!(
            PartitionStore::decode_from(&mut r, 3, 16),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn buffer_pool_reports_hits_on_repeated_reads() {
        let mut store = PartitionStore::new(4, 16);
        let pid = store.create_partition(PartitionKind::Cluster);
        let loc = store.append(pid, &sub(1, 3)).unwrap();
        store.buffer().reset_stats();
        for _ in 0..5 {
            store.read(loc).unwrap();
        }
        let stats = store.buffer().stats();
        assert_eq!(stats.hits + stats.misses, 5);
        assert!(stats.hits >= 4);
    }
}
