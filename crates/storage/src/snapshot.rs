//! The snapshot file container: magic, version, length, CRC, atomic replace.
//!
//! A snapshot is one self-validating file holding an opaque body (the engine
//! encodes its whole state into the body with [`crate::codec::ByteWriter`];
//! this module neither knows nor cares what is inside). The container layout
//! is normatively specified in `docs/STORAGE.md`:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "HSNP"
//! 4       2     container version (u16 LE, currently 1)
//! 6       2     flags (u16 LE, must be 0)
//! 8       8     body length in bytes (u64 LE)
//! 16      n     body
//! 16+n    4     CRC-32 (u32 LE) over bytes [0, 16+n)
//! ```
//!
//! Writes are atomic with respect to crashes: the new file is written to
//! `<path>.tmp`, fsynced, then renamed over `<path>` (and the directory is
//! fsynced), so a reader never observes a half-written snapshot — it sees
//! either the old file or the new one. A snapshot that fails any validation
//! step (magic, version, length, CRC) is rejected with
//! [`StorageError::Corrupt`] rather than partially applied.

use crate::crc::{crc32, Crc32};
use crate::error::StorageError;
use crate::Result;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// The four magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"HSNP";

/// The container version this build writes and accepts.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Fixed container header size (magic + version + flags + body length).
const HEADER_LEN: usize = 16;

/// Writes `body` as a snapshot file at `path`, atomically replacing whatever
/// was there. Returns the total file size in bytes.
pub fn write_snapshot_file(path: &Path, body: &[u8]) -> Result<u64> {
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&SNAPSHOT_MAGIC);
    header[4..6].copy_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    header[6..8].copy_from_slice(&0u16.to_le_bytes());
    header[8..16].copy_from_slice(&(body.len() as u64).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&header);
    crc.update(body);

    let tmp = path.with_extension("tmp");
    let write_all = || -> std::io::Result<()> {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&header)?;
        f.write_all(body)?;
        f.write_all(&crc.finish().to_le_bytes())?;
        f.sync_all()?;
        Ok(())
    };
    write_all().map_err(|e| StorageError::io(format!("writing {}", tmp.display()), e))?;
    fs::rename(&tmp, path).map_err(|e| {
        StorageError::io(
            format!("renaming {} over {}", tmp.display(), path.display()),
            e,
        )
    })?;
    // Persist the rename itself. Directory fsync is best-effort on platforms
    // where opening a directory is not supported.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok((HEADER_LEN + body.len() + 4) as u64)
}

/// Reads and validates the snapshot at `path`, returning its body.
///
/// `Ok(None)` means no snapshot exists (a fresh data directory); every other
/// failure — including a truncated or bit-flipped file — is an error, because
/// silently ignoring a damaged snapshot would roll the database back to
/// empty.
pub fn read_snapshot_file(path: &Path) -> Result<Option<Vec<u8>>> {
    let raw = match fs::read(path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StorageError::io(format!("reading {}", path.display()), e)),
    };
    if raw.len() < HEADER_LEN + 4 {
        return Err(StorageError::Corrupt {
            reason: format!(
                "snapshot file is {} bytes, shorter than the minimal container",
                raw.len()
            ),
        });
    }
    if raw[0..4] != SNAPSHOT_MAGIC {
        return Err(StorageError::Corrupt {
            reason: "snapshot magic mismatch (not a Hermes snapshot)".into(),
        });
    }
    let version = u16::from_le_bytes([raw[4], raw[5]]);
    if version != SNAPSHOT_VERSION {
        return Err(StorageError::Corrupt {
            reason: format!("unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"),
        });
    }
    let flags = u16::from_le_bytes([raw[6], raw[7]]);
    if flags != 0 {
        return Err(StorageError::Corrupt {
            reason: format!("unsupported snapshot flags {flags:#06x}"),
        });
    }
    let body_len = u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")) as usize;
    if raw.len() != HEADER_LEN + body_len + 4 {
        return Err(StorageError::Corrupt {
            reason: format!(
                "snapshot declares a {body_len}-byte body but the file holds {} bytes",
                raw.len()
            ),
        });
    }
    let stored_crc = u32::from_le_bytes(raw[raw.len() - 4..].try_into().expect("4 bytes"));
    let actual_crc = crc32(&raw[..raw.len() - 4]);
    if stored_crc != actual_crc {
        return Err(StorageError::Corrupt {
            reason: format!(
                "snapshot CRC mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            ),
        });
    }
    Ok(Some(raw[HEADER_LEN..HEADER_LEN + body_len].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hermes-snap-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_and_replace() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("snapshot.hsnap");
        assert_eq!(read_snapshot_file(&path).unwrap(), None);

        let total = write_snapshot_file(&path, b"first body").unwrap();
        assert_eq!(total, 16 + 10 + 4);
        assert_eq!(
            read_snapshot_file(&path).unwrap().unwrap(),
            b"first body".to_vec()
        );

        // Atomic replace: the new body wins, no .tmp file remains.
        write_snapshot_file(&path, b"second, longer body").unwrap();
        assert_eq!(
            read_snapshot_file(&path).unwrap().unwrap(),
            b"second, longer body".to_vec()
        );
        assert!(!path.with_extension("tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_body_is_valid() {
        let dir = tmp_dir("empty");
        let path = dir.join("snapshot.hsnap");
        write_snapshot_file(&path, b"").unwrap();
        assert_eq!(
            read_snapshot_file(&path).unwrap().unwrap(),
            Vec::<u8>::new()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_corruption_is_detected() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("snapshot.hsnap");
        write_snapshot_file(&path, b"the body under test").unwrap();
        let pristine = fs::read(&path).unwrap();

        // Any single-byte flip anywhere in the file fails validation.
        for i in 0..pristine.len() {
            let mut bad = pristine.clone();
            bad[i] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            assert!(
                matches!(read_snapshot_file(&path), Err(StorageError::Corrupt { .. })),
                "flip at byte {i} must be detected"
            );
        }
        // Any truncation fails validation.
        for cut in 0..pristine.len() {
            fs::write(&path, &pristine[..cut]).unwrap();
            assert!(
                matches!(read_snapshot_file(&path), Err(StorageError::Corrupt { .. })),
                "truncation to {cut} bytes must be detected"
            );
        }
        // Trailing garbage fails the length check.
        let mut long = pristine.clone();
        long.push(0);
        fs::write(&path, &long).unwrap();
        assert!(matches!(
            read_snapshot_file(&path),
            Err(StorageError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }
}
