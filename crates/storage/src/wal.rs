//! The write-ahead log: CRC-framed appends, batched fsync, torn-tail
//! recovery, truncate-on-checkpoint.
//!
//! Between snapshots, every mutating operation is logged here as an opaque
//! payload (the engine encodes logical records with
//! [`crate::codec::ByteWriter`]; this module only frames bytes). The file
//! layout is normatively specified in `docs/STORAGE.md`:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "HWAL"
//! 4       2     log version (u16 LE, currently 1)
//! 6       2     flags (u16 LE, must be 0)
//! 8       …     records, back to back
//!
//! record: length  u32 LE   payload length in bytes
//!         crc     u32 LE   CRC-32 of the payload
//!         payload length bytes
//! ```
//!
//! Recovery reads records front to back and stops at the first frame that
//! does not verify — a short header, a length running past end-of-file, or a
//! CRC mismatch. Everything before that point is the durable prefix; the bad
//! tail is the torn remnant of an append cut short by a crash and is
//! discarded by truncating the file, so the next append starts from a clean
//! boundary. Corruption is only ever treated as a tail condition: a WAL is
//! append-only, so the first bad frame means nothing after it was
//! acknowledged.
//!
//! Durability is batched (group commit): appends are written to the OS
//! immediately but `fsync` runs only once `sync_interval_bytes` have
//! accumulated — or on [`Wal::sync`] / [`Wal::truncate`]. A crash can
//! therefore lose at most the unsynced suffix, which recovery trims cleanly.

use crate::crc::crc32;
use crate::error::StorageError;
use crate::Result;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The four magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"HWAL";

/// The log version this build writes and accepts.
pub const WAL_VERSION: u16 = 1;

/// Fixed file header size (magic + version + flags).
const HEADER_LEN: u64 = 8;

/// Per-record frame overhead (length + CRC).
const FRAME_LEN: usize = 8;

/// Hard cap on one record's payload — far above any real logical record, it
/// only exists so a corrupted length field cannot ask for an absurd
/// allocation before the CRC check gets a chance to reject the frame.
pub const MAX_RECORD_LEN: usize = 1 << 30;

/// How many appended-but-unsynced bytes accumulate before an append issues
/// an fsync (see [`Wal::set_sync_interval`]).
pub const DEFAULT_SYNC_INTERVAL_BYTES: u64 = 1 << 20;

/// What [`Wal::open`] found in an existing log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecovery {
    /// The durable record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of torn tail discarded past the durable prefix (0 for a clean
    /// shutdown).
    pub truncated_bytes: u64,
}

/// An open write-ahead log positioned for appending.
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Current durable-format file length (header + intact records).
    len: u64,
    /// Bytes appended since the last fsync.
    unsynced: u64,
    sync_interval_bytes: u64,
}

impl Wal {
    /// Opens (or creates) the log at `path`, replaying the durable records
    /// and truncating any torn tail. The returned [`Wal`] is positioned to
    /// append after the last intact record.
    pub fn open(path: &Path) -> Result<(Wal, WalRecovery)> {
        let io = |what: &str, e: std::io::Error| {
            StorageError::io(format!("{what} {}", path.display()), e)
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io("opening", e))?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw).map_err(|e| io("reading", e))?;

        let mut canonical_header = [0u8; HEADER_LEN as usize];
        canonical_header[0..4].copy_from_slice(&WAL_MAGIC);
        canonical_header[4..6].copy_from_slice(&WAL_VERSION.to_le_bytes());

        // Fresh log, or a crash mid-header-write: the header bytes are a
        // deterministic constant, so a short file that is a prefix of it
        // cannot have held any acknowledged record — re-stamp it. A short
        // file that is NOT such a prefix is some other file entirely.
        if raw.len() < HEADER_LEN as usize {
            if raw != canonical_header[..raw.len()] {
                return Err(StorageError::Corrupt {
                    reason: format!("{} is not a Hermes WAL (bad header)", path.display()),
                });
            }
            file.set_len(0).map_err(|e| io("truncating", e))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|e| io("seeking", e))?;
            file.write_all(&canonical_header)
                .map_err(|e| io("initializing", e))?;
            file.sync_all().map_err(|e| io("syncing", e))?;
            let wal = Wal {
                file,
                path: path.to_path_buf(),
                len: HEADER_LEN,
                unsynced: 0,
                sync_interval_bytes: DEFAULT_SYNC_INTERVAL_BYTES,
            };
            return Ok((
                wal,
                WalRecovery {
                    records: Vec::new(),
                    truncated_bytes: 0,
                },
            ));
        }

        // The header is complete and fsynced before the first append, so a
        // full-length file with a mismatched header is not a Hermes WAL.
        if raw[0..4] != WAL_MAGIC {
            return Err(StorageError::Corrupt {
                reason: format!("{} is not a Hermes WAL (bad header)", path.display()),
            });
        }
        let version = u16::from_le_bytes([raw[4], raw[5]]);
        if version != WAL_VERSION {
            return Err(StorageError::Corrupt {
                reason: format!("unsupported WAL version {version} (expected {WAL_VERSION})"),
            });
        }
        let flags = u16::from_le_bytes([raw[6], raw[7]]);
        if flags != 0 {
            return Err(StorageError::Corrupt {
                reason: format!("unsupported WAL flags {flags:#06x}"),
            });
        }

        // Walk the frames; stop at the first one that does not verify.
        let mut records = Vec::new();
        let mut at = HEADER_LEN as usize;
        loop {
            let rest = &raw[at..];
            if rest.len() < FRAME_LEN {
                break;
            }
            let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
            let stored_crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
            if len > MAX_RECORD_LEN || rest.len() - FRAME_LEN < len {
                break;
            }
            let payload = &rest[FRAME_LEN..FRAME_LEN + len];
            if crc32(payload) != stored_crc {
                break;
            }
            records.push(payload.to_vec());
            at += FRAME_LEN + len;
        }

        let truncated_bytes = (raw.len() - at) as u64;
        if truncated_bytes > 0 {
            file.set_len(at as u64).map_err(|e| io("truncating", e))?;
            file.sync_all().map_err(|e| io("syncing", e))?;
        }
        file.seek(SeekFrom::Start(at as u64))
            .map_err(|e| io("seeking", e))?;
        let wal = Wal {
            file,
            path: path.to_path_buf(),
            len: at as u64,
            unsynced: 0,
            sync_interval_bytes: DEFAULT_SYNC_INTERVAL_BYTES,
        };
        Ok((
            wal,
            WalRecovery {
                records,
                truncated_bytes,
            },
        ))
    }

    /// The file this log lives in.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log size in bytes (header + intact records).
    pub fn size_bytes(&self) -> u64 {
        self.len
    }

    /// Changes the group-commit threshold: an append fsyncs once at least
    /// this many unsynced bytes have accumulated. `0` means every append
    /// syncs (strict durability, one fsync per operation).
    pub fn set_sync_interval(&mut self, bytes: u64) {
        self.sync_interval_bytes = bytes;
    }

    /// Appends one record and returns the new log size. The bytes reach the
    /// OS before this returns; they reach the platter on the batched fsync
    /// schedule (or an explicit [`Wal::sync`]).
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if payload.len() > MAX_RECORD_LEN {
            return Err(StorageError::RecordTooLarge {
                size: payload.len(),
                max: MAX_RECORD_LEN,
            });
        }
        let io = |e: std::io::Error| {
            StorageError::io(format!("appending to {}", self.path.display()), e)
        };
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame).map_err(io)?;
        self.len += frame.len() as u64;
        self.unsynced += frame.len() as u64;
        if self.unsynced >= self.sync_interval_bytes {
            self.sync()?;
        }
        Ok(self.len)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file
            .sync_all()
            .map_err(|e| StorageError::io(format!("syncing {}", self.path.display()), e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Discards every record, resetting the log to its header — the
    /// checkpoint step after a snapshot has made the records redundant.
    /// The truncation is fsynced before returning.
    pub fn truncate(&mut self) -> Result<u64> {
        let io = |what: &str, e: std::io::Error| {
            StorageError::io(format!("{what} {}", self.path.display()), e)
        };
        let dropped = self.len - HEADER_LEN;
        self.file
            .set_len(HEADER_LEN)
            .map_err(|e| io("truncating", e))?;
        self.file
            .seek(SeekFrom::Start(HEADER_LEN))
            .map_err(|e| io("seeking", e))?;
        self.file.sync_all().map_err(|e| io("syncing", e))?;
        self.len = HEADER_LEN;
        self.unsynced = 0;
        Ok(dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hermes-wal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn payloads() -> Vec<Vec<u8>> {
        vec![
            b"create dataset flights".to_vec(),
            vec![0u8; 100],
            b"x".to_vec(),
            (0..=255u8).collect(),
        ]
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = tmp_dir("replay");
        let path = dir.join("wal.hlog");
        {
            let (mut wal, rec) = Wal::open(&path).unwrap();
            assert!(rec.records.is_empty());
            for p in payloads() {
                wal.append(&p).unwrap();
            }
            wal.sync().unwrap();
        }
        let (wal, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.records, payloads());
        assert_eq!(rec.truncated_bytes, 0);
        assert!(wal.size_bytes() > HEADER_LEN);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_resets_to_header_and_appends_continue() {
        let dir = tmp_dir("truncate");
        let path = dir.join("wal.hlog");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for p in payloads() {
            wal.append(&p).unwrap();
        }
        let dropped = wal.truncate().unwrap();
        assert!(dropped > 0);
        assert_eq!(wal.size_bytes(), HEADER_LEN);
        wal.append(b"after checkpoint").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.records, vec![b"after checkpoint".to_vec()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_sweep_recovers_the_durable_prefix() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.hlog");
        let (mut wal, _) = Wal::open(&path).unwrap();
        let all = payloads();
        let mut len_before_last = 0u64;
        for (i, p) in all.iter().enumerate() {
            if i == all.len() - 1 {
                len_before_last = wal.size_bytes();
            }
            wal.append(p).unwrap();
        }
        wal.sync().unwrap();
        let full_len = wal.size_bytes();
        drop(wal);
        let pristine = fs::read(&path).unwrap();
        assert_eq!(pristine.len() as u64, full_len);

        // Kill mid-append at every byte boundary of the tail record: the
        // durable prefix (all records but the last) must come back intact and
        // the torn bytes must be discarded.
        for cut in len_before_last..full_len {
            fs::write(&path, &pristine[..cut as usize]).unwrap();
            let (wal, rec) = Wal::open(&path).unwrap();
            assert_eq!(
                rec.records,
                all[..all.len() - 1].to_vec(),
                "cut at byte {cut}"
            );
            assert_eq!(rec.truncated_bytes, cut - len_before_last, "cut at {cut}");
            assert_eq!(wal.size_bytes(), len_before_last);
            // The file itself was trimmed to the durable prefix.
            drop(wal);
            assert_eq!(fs::metadata(&path).unwrap().len(), len_before_last);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flips_in_the_tail_record_are_discarded() {
        let dir = tmp_dir("flip");
        let path = dir.join("wal.hlog");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"first, durable record").unwrap();
        let tail_start = wal.size_bytes();
        wal.append(b"tail record that gets damaged").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let pristine = fs::read(&path).unwrap();

        for i in tail_start as usize..pristine.len() {
            let mut bad = pristine.clone();
            bad[i] ^= 0x10;
            fs::write(&path, &bad).unwrap();
            let (_, rec) = Wal::open(&path).unwrap();
            assert_eq!(
                rec.records,
                vec![b"first, durable record".to_vec()],
                "flip at byte {i}"
            );
            assert!(rec.truncated_bytes > 0, "flip at byte {i}");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_header_prefix_is_restamped_not_fatal() {
        let dir = tmp_dir("partialheader");
        let path = dir.join("wal.hlog");
        // A crash mid-header-write leaves a strict prefix of the canonical
        // 8 bytes; no record can have been acknowledged, so open recovers.
        for cut in 0..8usize {
            let mut header = Vec::new();
            header.extend_from_slice(&WAL_MAGIC);
            header.extend_from_slice(&WAL_VERSION.to_le_bytes());
            header.extend_from_slice(&0u16.to_le_bytes());
            fs::write(&path, &header[..cut]).unwrap();
            let (mut wal, rec) = Wal::open(&path).unwrap();
            assert!(rec.records.is_empty(), "cut at {cut}");
            wal.append(b"works after restamp").unwrap();
            wal.sync().unwrap();
            drop(wal);
            let (_, rec) = Wal::open(&path).unwrap();
            assert_eq!(rec.records, vec![b"works after restamp".to_vec()]);
        }
        // A short file that is NOT a prefix of the header is rejected.
        fs::write(&path, b"HW?").unwrap();
        assert!(matches!(
            Wal::open(&path),
            Err(StorageError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_header_is_an_error_not_a_silent_reset() {
        let dir = tmp_dir("header");
        let path = dir.join("wal.hlog");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"record").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let pristine = fs::read(&path).unwrap();

        let mut bad = pristine.clone();
        bad[0] = b'X';
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Wal::open(&path),
            Err(StorageError::Corrupt { .. })
        ));
        let mut bad = pristine.clone();
        bad[4] = 99; // version
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Wal::open(&path),
            Err(StorageError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_interval_batches_and_zero_syncs_every_append() {
        let dir = tmp_dir("syncpolicy");
        let path = dir.join("wal.hlog");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.set_sync_interval(0);
        wal.append(b"strict").unwrap();
        assert_eq!(wal.unsynced, 0, "interval 0 syncs inline");
        wal.set_sync_interval(1 << 20);
        wal.append(b"batched").unwrap();
        assert!(wal.unsynced > 0, "small appends stay buffered");
        wal.sync().unwrap();
        assert_eq!(wal.unsynced, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_records_are_rejected_up_front() {
        let dir = tmp_dir("oversize");
        let path = dir.join("wal.hlog");
        let (mut wal, _) = Wal::open(&path).unwrap();
        // An untouched zeroed allocation stays virtual, so this is cheap; the
        // append must refuse before writing a single byte.
        let too_big = vec![0u8; MAX_RECORD_LEN + 1];
        assert!(matches!(
            wal.append(&too_big),
            Err(StorageError::RecordTooLarge { .. })
        ));
        assert_eq!(wal.size_bytes(), HEADER_LEN);
        assert!(wal.append(&[0u8; 1024]).is_ok());
        fs::remove_dir_all(&dir).ok();
    }
}
