//! CSV import/export of trajectories.
//!
//! Real MODs arrive as flat point files (`object_id, trajectory_id, x, y, t`
//! or `object_id, trajectory_id, lon, lat, t`). This module parses such files
//! into [`Trajectory`] values (grouping by trajectory id and sorting by time)
//! and writes them back, so the engine can ingest external data without any
//! extra dependency.

use crate::error::TrajectoryError;
use crate::geo::{GeoPoint, LocalProjection};
use crate::point::Point;
use crate::time::Timestamp;
use crate::trajectory::Trajectory;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Result of a CSV import: the parsed trajectories plus the rows that had to
/// be skipped (with the reason), so callers can report data-quality issues
/// instead of silently dropping records.
#[derive(Debug, Clone)]
pub struct CsvImport {
    /// Trajectories built from the accepted rows, ordered by id.
    pub trajectories: Vec<Trajectory>,
    /// `(line number, reason)` of every rejected row.
    pub rejected: Vec<(usize, String)>,
}

/// Header written/expected by the planar CSV format.
pub const CSV_HEADER: &str = "object_id,trajectory_id,x,y,t_ms";

/// Parses planar trajectory CSV (`object_id,trajectory_id,x,y,t_ms`).
/// Rows are grouped by trajectory id and sorted by time; duplicated
/// timestamps within a trajectory keep the first occurrence.
pub fn parse_csv(input: &str) -> CsvImport {
    let mut groups: BTreeMap<u64, (u64, Vec<Point>)> = BTreeMap::new();
    let mut rejected = Vec::new();

    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || lineno == 0 && line.eq_ignore_ascii_case(CSV_HEADER) {
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 5 {
            rejected.push((
                lineno + 1,
                format!("expected 5 fields, got {}", fields.len()),
            ));
            continue;
        }
        let parsed = (|| -> Result<(u64, u64, f64, f64, i64), String> {
            Ok((
                fields[0].parse().map_err(|_| "bad object_id".to_string())?,
                fields[1]
                    .parse()
                    .map_err(|_| "bad trajectory_id".to_string())?,
                fields[2].parse().map_err(|_| "bad x".to_string())?,
                fields[3].parse().map_err(|_| "bad y".to_string())?,
                fields[4].parse().map_err(|_| "bad t_ms".to_string())?,
            ))
        })();
        match parsed {
            Ok((object_id, trajectory_id, x, y, t)) => {
                if !x.is_finite() || !y.is_finite() {
                    rejected.push((lineno + 1, "non-finite coordinate".into()));
                    continue;
                }
                groups
                    .entry(trajectory_id)
                    .or_insert_with(|| (object_id, Vec::new()))
                    .1
                    .push(Point::new(x, y, Timestamp(t)));
            }
            Err(reason) => rejected.push((lineno + 1, reason)),
        }
    }

    let mut trajectories = Vec::with_capacity(groups.len());
    for (trajectory_id, (object_id, mut points)) in groups {
        points.sort_by_key(|p| p.t);
        points.dedup_by_key(|p| p.t);
        match Trajectory::new(trajectory_id, object_id, points) {
            Ok(t) => trajectories.push(t),
            Err(TrajectoryError::TooFewPoints { got }) => rejected.push((
                0,
                format!("trajectory {trajectory_id} dropped: only {got} usable points"),
            )),
            Err(e) => rejected.push((0, format!("trajectory {trajectory_id} dropped: {e}"))),
        }
    }
    CsvImport {
        trajectories,
        rejected,
    }
}

/// Parses geodetic trajectory CSV (`object_id,trajectory_id,lon,lat,t_ms`),
/// projecting every position with a local projection anchored at the data's
/// centroid. Returns the import plus the projection used (so results can be
/// mapped back to geographic coordinates).
pub fn parse_geo_csv(input: &str) -> (CsvImport, LocalProjection) {
    // First pass: collect geodetic points to anchor the projection.
    let mut geo_points = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() == 5 {
            if let (Ok(lon), Ok(lat), Ok(t)) = (
                fields[2].parse::<f64>(),
                fields[3].parse::<f64>(),
                fields[4].parse::<i64>(),
            ) {
                geo_points.push(GeoPoint::new(lon, lat, Timestamp(t)));
            }
        }
    }
    let projection = LocalProjection::centered_on(&geo_points);

    // Second pass: rewrite lon/lat as planar metres and reuse the planar parser.
    let mut planar = String::from(CSV_HEADER);
    planar.push('\n');
    for (lineno, line) in input.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() == 5 {
            if let (Ok(lon), Ok(lat), Ok(t)) = (
                fields[2].parse::<f64>(),
                fields[3].parse::<f64>(),
                fields[4].parse::<i64>(),
            ) {
                let p = projection.project(&GeoPoint::new(lon, lat, Timestamp(t)));
                let _ = writeln!(planar, "{},{},{},{},{}", fields[0], fields[1], p.x, p.y, t);
                continue;
            }
        }
        planar.push_str(line);
        planar.push('\n');
    }
    (parse_csv(&planar), projection)
}

/// Serializes trajectories to the planar CSV format (with header).
pub fn to_csv(trajectories: &[Trajectory]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for t in trajectories {
        for p in t.points() {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                t.object_id,
                t.id,
                p.x,
                p.y,
                p.t.millis()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_csv() {
        let t1 = Trajectory::new(
            1,
            10,
            vec![
                Point::new(0.0, 0.0, Timestamp(0)),
                Point::new(1.5, 2.5, Timestamp(1_000)),
                Point::new(3.0, 5.0, Timestamp(2_000)),
            ],
        )
        .unwrap();
        let t2 = Trajectory::new(
            2,
            11,
            vec![
                Point::new(100.0, 100.0, Timestamp(500)),
                Point::new(110.0, 100.0, Timestamp(1_500)),
            ],
        )
        .unwrap();
        let csv = to_csv(&[t1.clone(), t2.clone()]);
        let import = parse_csv(&csv);
        assert!(import.rejected.is_empty(), "{:?}", import.rejected);
        assert_eq!(import.trajectories.len(), 2);
        assert_eq!(import.trajectories[0].points(), t1.points());
        assert_eq!(import.trajectories[1].points(), t2.points());
        assert_eq!(import.trajectories[0].object_id, 10);
    }

    #[test]
    fn out_of_order_and_duplicate_rows_are_normalized() {
        let csv = "object_id,trajectory_id,x,y,t_ms\n\
                   1,1,10.0,0.0,2000\n\
                   1,1,0.0,0.0,0\n\
                   1,1,0.0,0.0,0\n\
                   1,1,5.0,0.0,1000\n";
        let import = parse_csv(csv);
        assert_eq!(import.trajectories.len(), 1);
        let times: Vec<i64> = import.trajectories[0]
            .points()
            .iter()
            .map(|p| p.t.millis())
            .collect();
        assert_eq!(times, vec![0, 1000, 2000]);
    }

    #[test]
    fn bad_rows_are_reported_not_dropped_silently() {
        let csv = "object_id,trajectory_id,x,y,t_ms\n\
                   1,1,0.0,0.0,0\n\
                   1,1,1.0,0.0,1000\n\
                   not,a,valid,row\n\
                   1,1,NaN,0.0,2000\n\
                   2,2,0.0,0.0,0\n";
        let import = parse_csv(csv);
        // Trajectory 1 survives; trajectory 2 has a single point and is
        // reported; two bad rows are reported.
        assert_eq!(import.trajectories.len(), 1);
        assert_eq!(import.rejected.len(), 3);
        assert!(import.rejected.iter().any(|(_, r)| r.contains("5 fields")));
        assert!(import
            .rejected
            .iter()
            .any(|(_, r)| r.contains("non-finite")));
        assert!(import
            .rejected
            .iter()
            .any(|(_, r)| r.contains("only 1 usable")));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let csv = "object_id,trajectory_id,x,y,t_ms\n\
                   # a comment\n\
                   \n\
                   1,1,0.0,0.0,0\n\
                   1,1,1.0,0.0,1000\n";
        let import = parse_csv(csv);
        assert_eq!(import.trajectories.len(), 1);
        assert!(import.rejected.is_empty());
    }

    #[test]
    fn geodetic_import_projects_to_metres() {
        // Two aircraft near London; ~0.1° of longitude ≈ 7 km at 51.5° N.
        let csv = "object_id,trajectory_id,lon,lat,t_ms\n\
                   1,1,-0.45,51.47,0\n\
                   1,1,-0.35,51.47,60000\n\
                   2,2,-0.45,51.57,0\n\
                   2,2,-0.35,51.57,60000\n";
        let (import, projection) = parse_geo_csv(csv);
        assert_eq!(import.trajectories.len(), 2);
        let t = &import.trajectories[0];
        let dx = t.points()[1].x - t.points()[0].x;
        assert!((6_000.0..8_000.0).contains(&dx), "projected Δx {dx:.0} m");
        // Round trip back to geographic coordinates.
        let back = projection.unproject(&t.points()[0]);
        assert!((back.lon - -0.45).abs() < 1e-9);
        assert!((back.lat - 51.47).abs() < 1e-9);
    }
}
