//! Trajectory and sub-trajectory distance functions.
//!
//! The clustering algorithms in this workspace rely on *time-synchronized*
//! distances: two objects are compared at the same instants, so the measures
//! capture co-movement rather than mere geometric proximity. This is the key
//! behavioural difference from TRACLUS-style purely spatial distances that the
//! paper calls out ("focusing on the spatial and ignoring the temporal
//! dimension").

use crate::interpolate::{position_at, sample_instants_iter};
use crate::point::Point;
use crate::segment::Segment;
use crate::subtrajectory::SubTrajectory;
use crate::time::TimeInterval;
use crate::trajectory::Trajectory;

/// Number of synchronized sample instants used by the integral distances.
/// Chosen so that a typical sub-trajectory (tens of samples) is evaluated at
/// comparable resolution to its own sampling rate.
const SYNC_SAMPLES: usize = 32;

/// Time-synchronized Euclidean distance between two point sequences over
/// their common lifespan: the mean spatial distance of the two interpolated
/// positions at evenly spaced instants. `None` when the lifespans are
/// disjoint or degenerate.
pub fn synchronized_euclidean_points(a: &[Point], b: &[Point]) -> Option<f64> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let ia = TimeInterval::new(a[0].t, a[a.len() - 1].t);
    let ib = TimeInterval::new(b[0].t, b[b.len() - 1].t);
    let common = ia.intersection(&ib)?;
    if common.length().millis() == 0 {
        return None;
    }
    // Lazy instants: the whole integral runs without a heap allocation.
    let mut sum = 0.0;
    let mut n = 0usize;
    for t in sample_instants_iter(common.start, common.end, SYNC_SAMPLES) {
        if let (Some(p), Some(q)) = (position_at(a, t), position_at(b, t)) {
            sum += p.spatial_distance(&q);
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Time-synchronized Euclidean distance between two whole trajectories.
/// See [`synchronized_euclidean_points`].
pub fn synchronized_euclidean(a: &Trajectory, b: &Trajectory) -> Option<f64> {
    synchronized_euclidean_points(a.points(), b.points())
}

/// Time-synchronized distance between two sub-trajectories over their common
/// lifespan; `None` when they do not temporally overlap.
pub fn sub_trajectory_distance(a: &SubTrajectory, b: &SubTrajectory) -> Option<f64> {
    synchronized_euclidean_points(a.points(), b.points())
}

/// Spatio-temporal distance between sub-trajectories that *penalizes partial
/// temporal overlap*: the synchronized distance over the common lifespan is
/// divided by the fraction of the two lifespans that is shared. Two
/// sub-trajectories that only briefly co-exist therefore end up farther apart
/// than two that co-move for their whole duration.
///
/// Returns `f64::INFINITY` when there is no temporal overlap at all — such a
/// pair can never be clustered together by a time-aware method.
pub fn spatiotemporal_distance(a: &SubTrajectory, b: &SubTrajectory) -> f64 {
    let la = a.lifespan();
    let lb = b.lifespan();
    let Some(common) = la.intersection(&lb) else {
        return f64::INFINITY;
    };
    let union_len = la.union(&lb).length().as_secs_f64();
    let common_len = common.length().as_secs_f64();
    if union_len <= 0.0 || common_len <= 0.0 {
        return f64::INFINITY;
    }
    match sub_trajectory_distance(a, b) {
        Some(d) => {
            let overlap_fraction = common_len / union_len;
            d / overlap_fraction
        }
        None => f64::INFINITY,
    }
}

/// Synchronized distance between a single segment and a trajectory, evaluated
/// over the segment's lifespan. This is the distance the voting kernel uses:
/// "each 3D trajectory segment of a given trajectory is voted by other
/// trajectories w.r.t. their mutual distance".
///
/// `None` when the trajectory is not alive during the segment.
pub fn segment_to_trajectory_distance(seg: &Segment, traj_points: &[Point]) -> Option<f64> {
    if traj_points.len() < 2 {
        return None;
    }
    let traj_interval = TimeInterval::new(traj_points[0].t, traj_points[traj_points.len() - 1].t);
    let common = seg.interval().intersection(&traj_interval)?;
    if common.length().millis() == 0 {
        return None;
    }
    // The segment is short; three instants (Simpson) are enough to capture a
    // linear relative displacement exactly and a curved one closely.
    let mid = crate::time::Timestamp((common.start.millis() + common.end.millis()) / 2);
    let mut sum = 0.0;
    let mut weight_sum = 0.0;
    for (t, w) in [(common.start, 1.0), (mid, 4.0), (common.end, 1.0)] {
        if let Some(q) = position_at(traj_points, t) {
            let p = seg.position_at(t);
            sum += p.spatial_distance(&q) * w;
            weight_sum += w;
        }
    }
    if weight_sum == 0.0 {
        None
    } else {
        Some(sum / weight_sum)
    }
}

/// Discrete, symmetric Hausdorff-style distance between the spatial shapes of
/// two point sequences (time ignored). Used by the shape-based baselines and
/// by representative comparison in the VA exports.
pub fn hausdorff_distance(a: &[Point], b: &[Point]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let directed = |from: &[Point], to: &[Point]| -> f64 {
        from.iter()
            .map(|p| {
                to.iter()
                    .map(|q| p.spatial_distance(q))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max)
    };
    directed(a, b).max(directed(b, a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtrajectory::SubTrajectoryId;
    use crate::time::Timestamp;

    fn traj(id: u64, pts: &[(f64, f64, i64)]) -> Trajectory {
        Trajectory::new(
            id,
            id,
            pts.iter()
                .map(|&(x, y, t)| Point::new(x, y, Timestamp(t)))
                .collect(),
        )
        .unwrap()
    }

    fn sub(id: u64, pts: &[(f64, f64, i64)]) -> SubTrajectory {
        SubTrajectory::from_points(
            SubTrajectoryId::new(id, 0),
            id,
            id,
            pts.iter()
                .map(|&(x, y, t)| Point::new(x, y, Timestamp(t)))
                .collect(),
        )
    }

    #[test]
    fn parallel_movers_have_constant_synchronized_distance() {
        let a = traj(1, &[(0.0, 0.0, 0), (100.0, 0.0, 100_000)]);
        let b = traj(2, &[(0.0, 7.0, 0), (100.0, 7.0, 100_000)]);
        let d = synchronized_euclidean(&a, &b).unwrap();
        assert!((d - 7.0).abs() < 1e-9);
    }

    #[test]
    fn same_path_different_times_is_far() {
        // Identical geometry, but B traverses it while A is already far ahead.
        let a = traj(1, &[(0.0, 0.0, 0), (1000.0, 0.0, 1_000_000)]);
        let b = traj(2, &[(0.0, 0.0, 500_000), (1000.0, 0.0, 1_500_000)]);
        let d = synchronized_euclidean(&a, &b).unwrap();
        assert!(
            d > 400.0,
            "time-aware distance must expose the lag, got {d}"
        );
        // A purely spatial Hausdorff distance would report ~0.
        assert!(hausdorff_distance(a.points(), b.points()) < 1e-9);
    }

    #[test]
    fn disjoint_lifespans_yield_none_and_infinite_st_distance() {
        let a = sub(1, &[(0.0, 0.0, 0), (1.0, 0.0, 1_000)]);
        let b = sub(2, &[(0.0, 0.0, 10_000), (1.0, 0.0, 11_000)]);
        assert_eq!(sub_trajectory_distance(&a, &b), None);
        assert_eq!(spatiotemporal_distance(&a, &b), f64::INFINITY);
    }

    #[test]
    fn partial_overlap_is_penalized() {
        let full = sub(1, &[(0.0, 0.0, 0), (100.0, 0.0, 100_000)]);
        let co_moving = sub(2, &[(0.0, 1.0, 0), (100.0, 1.0, 100_000)]);
        let brief = sub(3, &[(0.0, 1.0, 0), (10.0, 1.0, 10_000)]);
        let d_full = spatiotemporal_distance(&full, &co_moving);
        let d_brief = spatiotemporal_distance(&full, &brief);
        assert!((d_full - 1.0).abs() < 1e-6);
        assert!(
            d_brief > d_full * 5.0,
            "a 10% overlap should be penalized ~10x: {d_brief} vs {d_full}"
        );
    }

    #[test]
    fn segment_to_trajectory_distance_tracks_co_movement() {
        let seg = Segment::new(
            Point::new(0.0, 0.0, Timestamp(0)),
            Point::new(10.0, 0.0, Timestamp(10_000)),
        );
        let near = traj(1, &[(0.0, 2.0, 0), (10.0, 2.0, 10_000)]);
        let far = traj(2, &[(0.0, 50.0, 0), (10.0, 50.0, 10_000)]);
        let gone = traj(3, &[(0.0, 0.0, 20_000), (10.0, 0.0, 30_000)]);
        assert!((segment_to_trajectory_distance(&seg, near.points()).unwrap() - 2.0).abs() < 1e-9);
        assert!((segment_to_trajectory_distance(&seg, far.points()).unwrap() - 50.0).abs() < 1e-9);
        assert_eq!(segment_to_trajectory_distance(&seg, gone.points()), None);
    }

    #[test]
    fn hausdorff_is_symmetric_and_zero_for_identical_shapes() {
        let a = traj(1, &[(0.0, 0.0, 0), (5.0, 5.0, 1_000), (10.0, 0.0, 2_000)]);
        let b = traj(2, &[(0.0, 0.0, 500), (5.0, 5.0, 1_500), (10.0, 0.0, 2_500)]);
        assert_eq!(hausdorff_distance(a.points(), b.points()), 0.0);
        let c = traj(3, &[(0.0, 10.0, 0), (10.0, 10.0, 2_000)]);
        let d_ab = hausdorff_distance(a.points(), c.points());
        let d_ba = hausdorff_distance(c.points(), a.points());
        assert_eq!(d_ab, d_ba);
        assert!(d_ab > 0.0);
    }

    #[test]
    fn synchronized_distance_is_symmetric() {
        let a = traj(
            1,
            &[(0.0, 0.0, 0), (50.0, 10.0, 60_000), (100.0, 0.0, 120_000)],
        );
        let b = traj(
            2,
            &[(5.0, 5.0, 0), (45.0, 20.0, 60_000), (90.0, 10.0, 120_000)],
        );
        let d1 = synchronized_euclidean(&a, &b).unwrap();
        let d2 = synchronized_euclidean(&b, &a).unwrap();
        assert!((d1 - d2).abs() < 1e-9);
        assert!(d1 > 0.0);
    }
}
