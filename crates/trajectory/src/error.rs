//! Error type for trajectory construction and manipulation.

use crate::time::Timestamp;
use std::fmt;

/// Errors raised while building or slicing trajectories.
#[derive(Debug, Clone, PartialEq)]
pub enum TrajectoryError {
    /// A trajectory needs at least two samples to describe movement.
    TooFewPoints {
        /// Number of points that were supplied.
        got: usize,
    },
    /// Samples must be strictly increasing in time.
    NonMonotonicTime {
        /// Index of the offending sample.
        index: usize,
        /// Timestamp of the previous sample.
        previous: Timestamp,
        /// Timestamp of the offending sample.
        current: Timestamp,
    },
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// Index of the offending sample.
        index: usize,
    },
    /// A requested temporal slice does not overlap the trajectory's lifespan.
    EmptySlice,
    /// A sub-trajectory range was out of bounds or inverted.
    InvalidRange {
        /// Requested start index (inclusive).
        start: usize,
        /// Requested end index (exclusive).
        end: usize,
        /// Number of points available.
        len: usize,
    },
}

impl fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryError::TooFewPoints { got } => {
                write!(f, "a trajectory requires at least 2 points, got {got}")
            }
            TrajectoryError::NonMonotonicTime {
                index,
                previous,
                current,
            } => write!(
                f,
                "sample {index} has timestamp {current} not after previous {previous}"
            ),
            TrajectoryError::NonFiniteCoordinate { index } => {
                write!(f, "sample {index} has a non-finite coordinate")
            }
            TrajectoryError::EmptySlice => {
                write!(f, "temporal slice does not overlap the trajectory lifespan")
            }
            TrajectoryError::InvalidRange { start, end, len } => {
                write!(f, "invalid point range {start}..{end} for {len} points")
            }
        }
    }
}

impl std::error::Error for TrajectoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let msgs = [
            TrajectoryError::TooFewPoints { got: 1 }.to_string(),
            TrajectoryError::NonMonotonicTime {
                index: 3,
                previous: Timestamp(10),
                current: Timestamp(5),
            }
            .to_string(),
            TrajectoryError::NonFiniteCoordinate { index: 2 }.to_string(),
            TrajectoryError::EmptySlice.to_string(),
            TrajectoryError::InvalidRange {
                start: 4,
                end: 2,
                len: 10,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
