//! Geodetic support: WGS-84 coordinates and the projection used to turn raw
//! GPS/ADS-B/AIS records into the planar coordinates the clustering
//! algorithms operate on.
//!
//! The paper's datasets are real-world GPS feeds (aircraft around London,
//! vessels, urban traffic). The engine itself works in planar metres; this
//! module provides the bridge: a local equirectangular projection anchored at
//! a reference point, which is accurate to well under 0.5 % for the
//! metropolitan-area extents the demo uses, plus the haversine distance for
//! validation.

use crate::point::Point;
use crate::time::Timestamp;

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 position with a timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Longitude in degrees, positive east.
    pub lon: f64,
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Sampling time.
    pub t: Timestamp,
}

impl GeoPoint {
    /// Creates a geodetic point.
    pub const fn new(lon: f64, lat: f64, t: Timestamp) -> Self {
        GeoPoint { lon, lat, t }
    }
}

/// Great-circle (haversine) distance between two geodetic points, in metres.
pub fn haversine_distance(a: &GeoPoint, b: &GeoPoint) -> f64 {
    let (lat1, lat2) = (a.lat.to_radians(), b.lat.to_radians());
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().asin()
}

/// A local equirectangular projection anchored at a reference position.
///
/// `x` grows east, `y` grows north, both in metres from the anchor. The
/// projection is invertible ([`LocalProjection::unproject`]), so VA exports
/// can be mapped back to geographic coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalProjection {
    /// Anchor longitude in degrees.
    pub origin_lon: f64,
    /// Anchor latitude in degrees.
    pub origin_lat: f64,
    cos_lat: f64,
}

impl LocalProjection {
    /// Creates a projection anchored at `(origin_lon, origin_lat)`.
    pub fn new(origin_lon: f64, origin_lat: f64) -> Self {
        LocalProjection {
            origin_lon,
            origin_lat,
            cos_lat: origin_lat.to_radians().cos(),
        }
    }

    /// A projection anchored at the centroid of a batch of geodetic points.
    /// Falls back to (0, 0) for an empty slice.
    pub fn centered_on(points: &[GeoPoint]) -> Self {
        if points.is_empty() {
            return LocalProjection::new(0.0, 0.0);
        }
        let lon = points.iter().map(|p| p.lon).sum::<f64>() / points.len() as f64;
        let lat = points.iter().map(|p| p.lat).sum::<f64>() / points.len() as f64;
        LocalProjection::new(lon, lat)
    }

    /// Projects a geodetic point into local planar metres.
    pub fn project(&self, p: &GeoPoint) -> Point {
        let x = (p.lon - self.origin_lon).to_radians() * EARTH_RADIUS_M * self.cos_lat;
        let y = (p.lat - self.origin_lat).to_radians() * EARTH_RADIUS_M;
        Point::new(x, y, p.t)
    }

    /// Inverse of [`LocalProjection::project`].
    pub fn unproject(&self, p: &Point) -> GeoPoint {
        let lon = self.origin_lon + (p.x / (EARTH_RADIUS_M * self.cos_lat)).to_degrees();
        let lat = self.origin_lat + (p.y / EARTH_RADIUS_M).to_degrees();
        GeoPoint::new(lon, lat, p.t)
    }

    /// Projects a whole geodetic track.
    pub fn project_track(&self, track: &[GeoPoint]) -> Vec<Point> {
        track.iter().map(|p| self.project(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Heathrow (LHR) and Gatwick (LGW), roughly.
    const LHR: (f64, f64) = (-0.4543, 51.4700);
    const LGW: (f64, f64) = (-0.1821, 51.1537);

    #[test]
    fn haversine_matches_known_distances() {
        let a = GeoPoint::new(LHR.0, LHR.1, Timestamp(0));
        let b = GeoPoint::new(LGW.0, LGW.1, Timestamp(0));
        let d = haversine_distance(&a, &b);
        // LHR–LGW is roughly 40 km.
        assert!((39_000.0..42_000.0).contains(&d), "got {d:.0} m");
        assert_eq!(haversine_distance(&a, &a), 0.0);
        assert!((haversine_distance(&a, &b) - haversine_distance(&b, &a)).abs() < 1e-6);
    }

    #[test]
    fn projection_round_trips() {
        let proj = LocalProjection::new(LHR.0, LHR.1);
        let p = GeoPoint::new(LGW.0, LGW.1, Timestamp(123_000));
        let planar = proj.project(&p);
        let back = proj.unproject(&planar);
        assert!((back.lon - p.lon).abs() < 1e-9);
        assert!((back.lat - p.lat).abs() < 1e-9);
        assert_eq!(back.t, p.t);
    }

    #[test]
    fn projected_distance_approximates_haversine_at_metro_scale() {
        let proj = LocalProjection::new(LHR.0, LHR.1);
        let a = GeoPoint::new(LHR.0, LHR.1, Timestamp(0));
        let b = GeoPoint::new(LGW.0, LGW.1, Timestamp(0));
        let planar = proj.project(&a).spatial_distance(&proj.project(&b));
        let geodesic = haversine_distance(&a, &b);
        let relative_error = (planar - geodesic).abs() / geodesic;
        assert!(
            relative_error < 0.005,
            "projection error {relative_error:.4} exceeds 0.5 % at metro scale"
        );
    }

    #[test]
    fn centered_projection_uses_the_centroid() {
        let pts = vec![
            GeoPoint::new(0.0, 50.0, Timestamp(0)),
            GeoPoint::new(2.0, 52.0, Timestamp(1_000)),
        ];
        let proj = LocalProjection::centered_on(&pts);
        assert!((proj.origin_lon - 1.0).abs() < 1e-12);
        assert!((proj.origin_lat - 51.0).abs() < 1e-12);
        // The centroid projects close to the origin.
        let mid = proj.project(&GeoPoint::new(1.0, 51.0, Timestamp(0)));
        assert!(mid.x.abs() < 1e-6 && mid.y.abs() < 1e-6);
        // Empty input falls back to (0, 0) without panicking.
        let fallback = LocalProjection::centered_on(&[]);
        assert_eq!(fallback.origin_lon, 0.0);
    }

    #[test]
    fn project_track_preserves_order_and_timestamps() {
        let proj = LocalProjection::new(0.0, 45.0);
        let track: Vec<GeoPoint> = (0..5)
            .map(|i| {
                GeoPoint::new(
                    0.01 * i as f64,
                    45.0 + 0.01 * i as f64,
                    Timestamp(i * 1_000),
                )
            })
            .collect();
        let planar = proj.project_track(&track);
        assert_eq!(planar.len(), 5);
        for (g, p) in track.iter().zip(planar.iter()) {
            assert_eq!(g.t, p.t);
        }
        // Moving north-east gives increasing x and y.
        assert!(planar
            .windows(2)
            .all(|w| w[1].x > w[0].x && w[1].y > w[0].y));
    }
}
