//! Linear interpolation along a time-ordered sequence of samples.

use crate::point::Point;
use crate::time::Timestamp;

/// Interpolated position of an object at time `t`, given its time-ordered
/// samples. Returns `None` when `t` lies outside the sampled lifespan or the
/// slice has fewer than one point.
///
/// Uses binary search, so repeated evaluations on long trajectories stay
/// cheap (`O(log n)` per call).
pub fn position_at(points: &[Point], t: Timestamp) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    let first = points.first().unwrap();
    let last = points.last().unwrap();
    if t < first.t || t > last.t {
        return None;
    }
    // Index of the first sample with time >= t.
    let idx = points.partition_point(|p| p.t < t);
    if idx == 0 {
        return Some(*first);
    }
    let after = &points[idx];
    if after.t == t {
        return Some(*after);
    }
    let before = &points[idx - 1];
    let span = (after.t - before.t).millis();
    if span == 0 {
        return Some(*before);
    }
    let f = (t - before.t).millis() as f64 / span as f64;
    Some(before.lerp(after, f))
}

/// Iterator over `n` evenly spaced instants covering `[start, end]`
/// inclusive. The allocation-free form of [`sample_instants`]: the distance
/// kernels iterate it directly so the integral distances never heap-allocate
/// a per-pair instant buffer.
#[derive(Debug, Clone)]
pub struct SampleInstants {
    start_ms: i64,
    span_ms: i64,
    n: usize,
    i: usize,
}

impl Iterator for SampleInstants {
    type Item = Timestamp;

    #[inline]
    fn next(&mut self) -> Option<Timestamp> {
        if self.i >= self.n {
            return None;
        }
        let t = Timestamp(self.start_ms + self.span_ms * self.i as i64 / (self.n as i64 - 1));
        self.i += 1;
        Some(t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.n - self.i;
        (left, Some(left))
    }
}

impl ExactSizeIterator for SampleInstants {}

/// The instants of [`sample_instants`] as a lazy iterator (no allocation).
/// Panics if `n < 2`, like the eager form.
pub fn sample_instants_iter(start: Timestamp, end: Timestamp, n: usize) -> SampleInstants {
    assert!(n >= 2, "need at least two sample instants");
    SampleInstants {
        start_ms: start.millis(),
        span_ms: (end - start).millis(),
        n,
        i: 0,
    }
}

/// Samples the interpolated positions of two synchronized objects at `n`
/// evenly spaced instants over a common interval, returning the instants.
/// Helper for distance kernels; exposed for testing. Hot paths should prefer
/// [`sample_instants_iter`], which yields the same instants without the
/// intermediate `Vec`.
pub fn sample_instants(start: Timestamp, end: Timestamp, n: usize) -> Vec<Timestamp> {
    sample_instants_iter(start, end, n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64, i64)]) -> Vec<Point> {
        v.iter()
            .map(|&(x, y, t)| Point::new(x, y, Timestamp(t)))
            .collect()
    }

    #[test]
    fn interpolates_between_samples() {
        let p = pts(&[(0.0, 0.0, 0), (10.0, 0.0, 10_000), (10.0, 10.0, 20_000)]);
        assert_eq!(
            position_at(&p, Timestamp(5_000)),
            Some(Point::new(5.0, 0.0, Timestamp(5_000)))
        );
        assert_eq!(
            position_at(&p, Timestamp(15_000)),
            Some(Point::new(10.0, 5.0, Timestamp(15_000)))
        );
    }

    #[test]
    fn exact_sample_times_return_the_sample() {
        let p = pts(&[(0.0, 0.0, 0), (10.0, 0.0, 10_000)]);
        assert_eq!(position_at(&p, Timestamp(0)), Some(p[0]));
        assert_eq!(position_at(&p, Timestamp(10_000)), Some(p[1]));
    }

    #[test]
    fn outside_lifespan_is_none() {
        let p = pts(&[(0.0, 0.0, 0), (10.0, 0.0, 10_000)]);
        assert_eq!(position_at(&p, Timestamp(-1)), None);
        assert_eq!(position_at(&p, Timestamp(10_001)), None);
        assert_eq!(position_at(&[], Timestamp(0)), None);
    }

    #[test]
    fn sample_instants_are_evenly_spaced_and_inclusive() {
        let s = sample_instants(Timestamp(0), Timestamp(1_000), 5);
        assert_eq!(
            s,
            vec![
                Timestamp(0),
                Timestamp(250),
                Timestamp(500),
                Timestamp(750),
                Timestamp(1_000)
            ]
        );
    }

    #[test]
    fn iterator_form_yields_exactly_the_eager_instants() {
        for (a, b, n) in [(0i64, 1_000i64, 5usize), (-7, 13, 2), (0, 1, 32), (5, 5, 3)] {
            let eager = sample_instants(Timestamp(a), Timestamp(b), n);
            let iter = sample_instants_iter(Timestamp(a), Timestamp(b), n);
            assert_eq!(iter.len(), n);
            let lazy: Vec<Timestamp> = iter.collect();
            assert_eq!(eager, lazy, "start={a} end={b} n={n}");
        }
    }
}
