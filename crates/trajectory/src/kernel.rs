//! Flat, allocation-free segment distance kernels.
//!
//! The S2T voting inner loop evaluates the time-synchronized segment distance
//! millions of times per query. The object-level entry point
//! ([`crate::Segment::mean_synchronized_distance`]) delegates to the scalar
//! kernel here, so callers that keep their segments in structure-of-arrays
//! form (the `SegmentArena` of `hermes-s2t`) can feed the kernel straight
//! from `f64`/`i64` lanes without materializing `Segment`s or `Point`s —
//! and both paths are bit-identical by construction, because they are the
//! same arithmetic.
//!
//! Contract kept by every function in this module:
//!
//! * **no heap allocation**, ever;
//! * **fixed arithmetic order** — the operations and their order match the
//!   original `Segment` methods exactly, so results agree bit for bit;
//! * **early temporal reject** — the common-lifespan test runs before any
//!   interpolation touches the spatial lanes.

/// One trajectory segment in scalar-lane form: the endpoints' coordinates and
/// timestamps. This is the row a `SegmentArena` reconstitutes from its
/// parallel arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegLanes {
    /// x at the segment start.
    pub x0: f64,
    /// y at the segment start.
    pub y0: f64,
    /// x at the segment end.
    pub x1: f64,
    /// y at the segment end.
    pub y1: f64,
    /// Start time, milliseconds.
    pub t0: i64,
    /// End time, milliseconds (strictly after `t0` for well-formed segments).
    pub t1: i64,
}

impl SegLanes {
    /// The interpolated spatial position at time `t`, clamped to the
    /// segment's lifespan. Mirrors `Segment::position_at` + `Point::lerp`
    /// exactly (same operations, same order), minus the unused temporal
    /// component.
    #[inline]
    pub fn position_at(&self, t: i64) -> (f64, f64) {
        let span = self.t1 - self.t0;
        if span == 0 {
            return (self.x0, self.y0);
        }
        let f = ((t - self.t0) as f64 / span as f64).clamp(0.0, 1.0);
        (
            self.x0 + (self.x1 - self.x0) * f,
            self.y0 + (self.y1 - self.y0) * f,
        )
    }
}

/// Euclidean distance between the two segments' interpolated positions at
/// instant `t` (both clamped to their own lifespans).
#[inline]
fn distance_at(a: &SegLanes, b: &SegLanes, t: i64) -> f64 {
    let (px, py) = a.position_at(t);
    let (qx, qy) = b.position_at(t);
    let dx = px - qx;
    let dy = py - qy;
    (dx * dx + dy * dy).sqrt()
}

/// Mean time-synchronized distance between two segments over their common
/// lifespan — Simpson's rule on the interval endpoints and midpoint, exact
/// for the linear relative displacement of two uniform movers. `None` when
/// the lifespans are disjoint (checked **before** any interpolation).
///
/// This is the voting kernel: `Segment::mean_synchronized_distance` is a
/// thin wrapper around it, so the flat and object paths cannot drift apart.
#[inline]
pub fn mean_sync_distance(a: &SegLanes, b: &SegLanes) -> Option<f64> {
    // Early temporal reject: closed-interval intersection on the i64 lanes.
    let common_start = if a.t0 >= b.t0 { a.t0 } else { b.t0 };
    let common_end = if a.t1 <= b.t1 { a.t1 } else { b.t1 };
    if common_start > common_end {
        return None;
    }
    let mid = (common_start + common_end) / 2;
    Some(
        (distance_at(a, b, common_start)
            + 4.0 * distance_at(a, b, mid)
            + distance_at(a, b, common_end))
            / 6.0,
    )
}

/// Gather-block size used by batched callers. A multiple of every SIMD lane
/// width we dispatch to (2 for SSE2, 4 for AVX2), so a full block never needs
/// a remainder tail.
pub const BATCH: usize = 8;

/// SIMD dispatch level for the batched kernel. Ordered by width so levels can
/// be clamped against what the CPU supports (`Scalar < Sse2 < Avx2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar loop — one candidate at a time.
    Scalar,
    /// SSE2, 2 × f64 per vector. Baseline on every x86_64.
    Sse2,
    /// AVX2, 4 × f64 per vector. Runtime-detected.
    Avx2,
}

impl SimdLevel {
    /// f64 lanes evaluated per vector at this level.
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse2 => 2,
            SimdLevel::Avx2 => 4,
        }
    }

    /// Stable lowercase name, matching the `HERMES_SIMD` spellings.
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// Widest level the running CPU supports.
#[cfg(target_arch = "x86_64")]
pub fn best_supported() -> SimdLevel {
    // SSE2 is part of the x86_64 baseline; only AVX2 needs a runtime check.
    if std::arch::is_x86_feature_detected!("avx2") {
        SimdLevel::Avx2
    } else {
        SimdLevel::Sse2
    }
}

/// Widest level the running CPU supports.
#[cfg(not(target_arch = "x86_64"))]
pub fn best_supported() -> SimdLevel {
    SimdLevel::Scalar
}

/// Resolve a `HERMES_SIMD` request against hardware support. Unknown or empty
/// values mean "auto" (widest supported); an explicit request is clamped to
/// what the CPU can actually run, never widened.
fn resolve_level(request: Option<&str>) -> SimdLevel {
    let best = best_supported();
    let requested = match request
        .map(str::trim)
        .map(str::to_ascii_lowercase)
        .as_deref()
    {
        Some("off") | Some("scalar") | Some("0") | Some("none") => SimdLevel::Scalar,
        Some("sse2") => SimdLevel::Sse2,
        Some("avx2") => SimdLevel::Avx2,
        _ => best,
    };
    requested.min(best)
}

/// The process-wide dispatch level for [`mean_sync_distance_batch`]: the
/// widest supported SIMD width, unless the `HERMES_SIMD` environment variable
/// (`off`/`scalar`, `sse2`, `avx2`) narrows it. Read once and cached — the
/// escape hatch exists for A/B timing and for ruling the vector path out when
/// debugging, not for per-query toggling.
pub fn simd_level() -> SimdLevel {
    use std::sync::OnceLock;
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| resolve_level(std::env::var("HERMES_SIMD").ok().as_deref()))
}

/// Batched [`mean_sync_distance`]: evaluates one query segment against `n`
/// candidate segments held in structure-of-arrays lanes, writing the mean
/// time-synchronized distance — or **`f64::INFINITY` when the lifespans are
/// disjoint** — into `out[i]`.
///
/// The ∞ sentinel replaces the scalar kernel's `None` and is equivalent under
/// every use the voting loop makes of the result (`d < best` folds and
/// `d > cutoff` rejects both treat ∞ exactly like "no common lifespan").
///
/// Dispatches to the widest SIMD width allowed by [`simd_level`]. Every width
/// performs the same IEEE-754 operations in the same per-lane order as the
/// scalar kernel, so results are bit-identical across widths — see
/// `docs/KERNELS.md` for the argument and the tests that gate it.
#[allow(clippy::too_many_arguments)]
pub fn mean_sync_distance_batch(
    q: &SegLanes,
    x0: &[f64],
    y0: &[f64],
    x1: &[f64],
    y1: &[f64],
    t0: &[i64],
    t1: &[i64],
    out: &mut [f64],
) {
    mean_sync_distance_batch_at(simd_level(), q, x0, y0, x1, y1, t0, t1, out);
}

/// [`mean_sync_distance_batch`] at an explicit dispatch level — the hook the
/// bit-exactness gate uses to run every width side by side. The level is
/// clamped to hardware support, never widened.
#[allow(clippy::too_many_arguments)]
pub fn mean_sync_distance_batch_at(
    level: SimdLevel,
    q: &SegLanes,
    x0: &[f64],
    y0: &[f64],
    x1: &[f64],
    y1: &[f64],
    t0: &[i64],
    t1: &[i64],
    out: &mut [f64],
) {
    let n = out.len();
    assert!(
        x0.len() == n
            && y0.len() == n
            && x1.len() == n
            && y1.len() == n
            && t0.len() == n
            && t1.len() == n,
        "batch kernel lane slices must share one length"
    );
    match level.min(best_supported()) {
        SimdLevel::Scalar => batch_scalar(q, x0, y0, x1, y1, t0, t1, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally available on x86_64.
        SimdLevel::Sse2 => unsafe { x86::batch_sse2(q, x0, y0, x1, y1, t0, t1, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamped against `best_supported`, which only reports Avx2
        // after `is_x86_feature_detected!("avx2")` succeeded.
        SimdLevel::Avx2 => unsafe { x86::batch_avx2(q, x0, y0, x1, y1, t0, t1, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => batch_scalar(q, x0, y0, x1, y1, t0, t1, out),
    }
}

/// Portable reference implementation of the batch: the scalar kernel per
/// lane, with the ∞ sentinel for disjoint lifespans. Also serves the SIMD
/// paths as their remainder-tail loop, which is sound precisely because all
/// widths are bit-identical.
#[allow(clippy::too_many_arguments)]
fn batch_scalar(
    q: &SegLanes,
    x0: &[f64],
    y0: &[f64],
    x1: &[f64],
    y1: &[f64],
    t0: &[i64],
    t1: &[i64],
    out: &mut [f64],
) {
    for i in 0..out.len() {
        let cand = SegLanes {
            x0: x0[i],
            y0: y0[i],
            x1: x1[i],
            y1: y1[i],
            t0: t0[i],
            t1: t1[i],
        };
        out[i] = mean_sync_distance(q, &cand).unwrap_or(f64::INFINITY);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Explicit-intrinsic widths of the batch kernel.
    //!
    //! Bit-exactness with the scalar kernel rests on two facts:
    //!
    //! 1. Every arithmetic operation used here (`add/sub/mul/div/sqrt/
    //!    min/max`) is IEEE-754 correctly rounded **elementwise**, so a
    //!    vector op on lane *i* produces exactly the bits the scalar op
    //!    produces on the same inputs. No FMA contraction, no reductions,
    //!    no reassociation.
    //! 2. The per-lane operation *order* below mirrors the scalar kernel
    //!    statement by statement: temporal intersection, `f = clamp(num/
    //!    den)` as `min(max(f, 0), 1)`, lerp as `x0 + (x1-x0)*f`, distance
    //!    as `sqrt(dx*dx + dy*dy)`, Simpson as `(d0 + 4*dm + d1)/6`.
    //!
    //! `min(max(f, 0), 1)` matches scalar `f.clamp(0.0, 1.0)` for every
    //! value `f = num/den` can take on a lane that survives the temporal
    //! reject: `num` comes from an i64 conversion (never -0.0) and `den`
    //! from a well-formed span, so `f` is a non-NaN number and the two
    //! clamp formulations agree bit for bit. Lanes that fail the temporal
    //! reject may compute garbage (0/0 → NaN, clamped to 0) but are
    //! overwritten by the ∞ sentinel before the store.
    //!
    //! The i64 temporal prologue (lifespan intersection, midpoint,
    //! i64→f64 numerator/denominator conversion) stays scalar: SSE2/AVX2
    //! have no packed 64-bit integer min/max/compare or i64→f64 convert,
    //! and the prologue is a small fraction of the kernel's work.

    use super::SegLanes;
    use core::arch::x86_64::*;

    const LIVE: f64 = 0.0;
    const DEAD: f64 = f64::from_bits(u64::MAX);

    /// Per-chunk scalar prologue output for up to `W` lanes: everything the
    /// f64 body needs, with masks encoded as all-zero / all-one f64 lanes.
    struct Prologue<const W: usize> {
        /// `(t_k - q.t0) as f64` for the three Simpson instants.
        q_num: [[f64; W]; 3],
        /// `(t_k - c.t0) as f64` for the three Simpson instants.
        c_num: [[f64; W]; 3],
        /// Candidate span `(c.t1 - c.t0) as f64`.
        c_den: [f64; W],
        /// All-ones where the candidate span is zero (degenerate segment).
        c_deg: [f64; W],
        /// All-ones where the lifespans are disjoint (result forced to ∞).
        dead: [f64; W],
    }

    impl<const W: usize> Prologue<W> {
        /// The scalar i64 arithmetic of `mean_sync_distance`, verbatim, for
        /// `W` candidates starting at `i`.
        #[inline(always)]
        fn compute(q: &SegLanes, t0: &[i64], t1: &[i64], i: usize) -> Self {
            let mut p = Prologue {
                q_num: [[0.0; W]; 3],
                c_num: [[0.0; W]; 3],
                c_den: [0.0; W],
                c_deg: [LIVE; W],
                dead: [LIVE; W],
            };
            for l in 0..W {
                let ct0 = t0[i + l];
                let ct1 = t1[i + l];
                // Closed-interval intersection, exactly as the scalar kernel.
                let cs = if q.t0 >= ct0 { q.t0 } else { ct0 };
                let ce = if q.t1 <= ct1 { q.t1 } else { ct1 };
                if cs > ce {
                    // Dead lane: leave the zeros in place (they produce a
                    // finite garbage distance) and force ∞ at the store.
                    p.dead[l] = DEAD;
                    continue;
                }
                let mid = (cs + ce) / 2;
                let span = ct1 - ct0;
                p.c_den[l] = span as f64;
                if span == 0 {
                    p.c_deg[l] = DEAD;
                }
                for (k, t) in [cs, mid, ce].into_iter().enumerate() {
                    p.q_num[k][l] = (t - q.t0) as f64;
                    p.c_num[k][l] = (t - ct0) as f64;
                }
            }
            p
        }
    }

    /// AVX2 width: 4 candidates per vector. Remainder lanes fall back to the
    /// scalar loop (bit-identical, so the seam is invisible).
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2, and that all slices hold at
    /// least `out.len()` elements (checked by the public dispatcher).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn batch_avx2(
        q: &SegLanes,
        x0: &[f64],
        y0: &[f64],
        x1: &[f64],
        y1: &[f64],
        t0: &[i64],
        t1: &[i64],
        out: &mut [f64],
    ) {
        const W: usize = 4;
        let n = out.len();
        let q_span = q.t1 - q.t0;
        let q_degenerate = q_span == 0;
        let q_den = _mm256_set1_pd(q_span as f64);
        let q_x0 = _mm256_set1_pd(q.x0);
        let q_y0 = _mm256_set1_pd(q.y0);
        let q_dx = _mm256_set1_pd(q.x1 - q.x0);
        let q_dy = _mm256_set1_pd(q.y1 - q.y0);
        let zero = _mm256_setzero_pd();
        let one = _mm256_set1_pd(1.0);
        let four = _mm256_set1_pd(4.0);
        let six = _mm256_set1_pd(6.0);
        let inf = _mm256_set1_pd(f64::INFINITY);

        // One vector chunk: everything downstream of the scalar prologue.
        // A macro rather than a helper fn keeps the intrinsics inlined under
        // the enclosing `#[target_feature]`.
        macro_rules! chunk {
            ($p:expr, $i:expr) => {
                let c_x0 = _mm256_loadu_pd(x0.as_ptr().add($i));
                let c_y0 = _mm256_loadu_pd(y0.as_ptr().add($i));
                let c_dx = _mm256_sub_pd(_mm256_loadu_pd(x1.as_ptr().add($i)), c_x0);
                let c_dy = _mm256_sub_pd(_mm256_loadu_pd(y1.as_ptr().add($i)), c_y0);
                let c_den = _mm256_loadu_pd($p.c_den.as_ptr());
                let c_deg = _mm256_loadu_pd($p.c_deg.as_ptr());
                let dead = _mm256_loadu_pd($p.dead.as_ptr());

                let mut d = [zero; 3];
                for k in 0..3 {
                    // Query position at instant k (degenerate span pins to the
                    // start point before any division, as in `position_at`).
                    let (px, py) = if q_degenerate {
                        (q_x0, q_y0)
                    } else {
                        let f = _mm256_div_pd(_mm256_loadu_pd($p.q_num[k].as_ptr()), q_den);
                        let f = _mm256_min_pd(_mm256_max_pd(f, zero), one);
                        (
                            _mm256_add_pd(q_x0, _mm256_mul_pd(q_dx, f)),
                            _mm256_add_pd(q_y0, _mm256_mul_pd(q_dy, f)),
                        )
                    };
                    // Candidate position at instant k.
                    let f = _mm256_div_pd(_mm256_loadu_pd($p.c_num[k].as_ptr()), c_den);
                    let f = _mm256_min_pd(_mm256_max_pd(f, zero), one);
                    let ix = _mm256_add_pd(c_x0, _mm256_mul_pd(c_dx, f));
                    let iy = _mm256_add_pd(c_y0, _mm256_mul_pd(c_dy, f));
                    let cx = _mm256_blendv_pd(ix, c_x0, c_deg);
                    let cy = _mm256_blendv_pd(iy, c_y0, c_deg);
                    let dx = _mm256_sub_pd(px, cx);
                    let dy = _mm256_sub_pd(py, cy);
                    d[k] =
                        _mm256_sqrt_pd(_mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
                }
                // Simpson's rule in the scalar order: (d0 + 4*dm) + d1, then /6.
                let sum = _mm256_add_pd(_mm256_add_pd(d[0], _mm256_mul_pd(four, d[1])), d[2]);
                let mean = _mm256_div_pd(sum, six);
                let res = _mm256_blendv_pd(mean, inf, dead);
                _mm256_storeu_pd(out.as_mut_ptr().add($i), res);
            };
        }
        // Two chunks in flight: computing the second prologue between the
        // first prologue's scalar stores and its vector loads gives the
        // store buffer time to drain instead of stalling the loads on
        // store-to-load forwarding (the prologue writes 8-byte lanes the
        // body immediately re-reads as 16/32-byte vectors).
        let mut i = 0;
        while i + 2 * W <= n {
            let pa = Prologue::<W>::compute(q, t0, t1, i);
            let pb = Prologue::<W>::compute(q, t0, t1, i + W);
            chunk!(pa, i);
            chunk!(pb, i + W);
            i += 2 * W;
        }
        while i + W <= n {
            let p = Prologue::<W>::compute(q, t0, t1, i);
            chunk!(p, i);
            i += W;
        }
        if i < n {
            super::batch_scalar(
                q,
                &x0[i..n],
                &y0[i..n],
                &x1[i..n],
                &y1[i..n],
                &t0[i..n],
                &t1[i..n],
                &mut out[i..n],
            );
        }
    }

    /// SSE2 blend: all-ones mask lanes select `b`, zero lanes select `a`.
    /// (SSE4.1's `blendv` is not in the SSE2 baseline; this and/andnot/or
    /// sequence moves bits only — no rounding, so exactness is untouched.)
    #[inline(always)]
    unsafe fn blend_sse2(a: __m128d, b: __m128d, mask: __m128d) -> __m128d {
        _mm_or_pd(_mm_and_pd(mask, b), _mm_andnot_pd(mask, a))
    }

    /// SSE2 width: 2 candidates per vector. Same statement-by-statement
    /// structure as [`batch_avx2`] — see the module docs for why that makes
    /// the widths bit-identical.
    ///
    /// # Safety
    /// SSE2 is part of the x86_64 baseline; caller must ensure all slices
    /// hold at least `out.len()` elements (checked by the public dispatcher).
    #[target_feature(enable = "sse2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn batch_sse2(
        q: &SegLanes,
        x0: &[f64],
        y0: &[f64],
        x1: &[f64],
        y1: &[f64],
        t0: &[i64],
        t1: &[i64],
        out: &mut [f64],
    ) {
        const W: usize = 2;
        let n = out.len();
        let q_span = q.t1 - q.t0;
        let q_degenerate = q_span == 0;
        let q_den = _mm_set1_pd(q_span as f64);
        let q_x0 = _mm_set1_pd(q.x0);
        let q_y0 = _mm_set1_pd(q.y0);
        let q_dx = _mm_set1_pd(q.x1 - q.x0);
        let q_dy = _mm_set1_pd(q.y1 - q.y0);
        let zero = _mm_setzero_pd();
        let one = _mm_set1_pd(1.0);
        let four = _mm_set1_pd(4.0);
        let six = _mm_set1_pd(6.0);
        let inf = _mm_set1_pd(f64::INFINITY);

        // One vector chunk: everything downstream of the scalar prologue.
        // A macro rather than a helper fn keeps the intrinsics inlined under
        // the enclosing `#[target_feature]`.
        macro_rules! chunk {
            ($p:expr, $i:expr) => {
                let c_x0 = _mm_loadu_pd(x0.as_ptr().add($i));
                let c_y0 = _mm_loadu_pd(y0.as_ptr().add($i));
                let c_dx = _mm_sub_pd(_mm_loadu_pd(x1.as_ptr().add($i)), c_x0);
                let c_dy = _mm_sub_pd(_mm_loadu_pd(y1.as_ptr().add($i)), c_y0);
                let c_den = _mm_loadu_pd($p.c_den.as_ptr());
                let c_deg = _mm_loadu_pd($p.c_deg.as_ptr());
                let dead = _mm_loadu_pd($p.dead.as_ptr());

                let mut d = [zero; 3];
                for k in 0..3 {
                    let (px, py) = if q_degenerate {
                        (q_x0, q_y0)
                    } else {
                        let f = _mm_div_pd(_mm_loadu_pd($p.q_num[k].as_ptr()), q_den);
                        let f = _mm_min_pd(_mm_max_pd(f, zero), one);
                        (
                            _mm_add_pd(q_x0, _mm_mul_pd(q_dx, f)),
                            _mm_add_pd(q_y0, _mm_mul_pd(q_dy, f)),
                        )
                    };
                    let f = _mm_div_pd(_mm_loadu_pd($p.c_num[k].as_ptr()), c_den);
                    let f = _mm_min_pd(_mm_max_pd(f, zero), one);
                    let ix = _mm_add_pd(c_x0, _mm_mul_pd(c_dx, f));
                    let iy = _mm_add_pd(c_y0, _mm_mul_pd(c_dy, f));
                    let cx = blend_sse2(ix, c_x0, c_deg);
                    let cy = blend_sse2(iy, c_y0, c_deg);
                    let dx = _mm_sub_pd(px, cx);
                    let dy = _mm_sub_pd(py, cy);
                    d[k] = _mm_sqrt_pd(_mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
                }
                let sum = _mm_add_pd(_mm_add_pd(d[0], _mm_mul_pd(four, d[1])), d[2]);
                let mean = _mm_div_pd(sum, six);
                let res = blend_sse2(mean, inf, dead);
                _mm_storeu_pd(out.as_mut_ptr().add($i), res);
            };
        }
        // Two chunks in flight: computing the second prologue between the
        // first prologue's scalar stores and its vector loads gives the
        // store buffer time to drain instead of stalling the loads on
        // store-to-load forwarding (the prologue writes 8-byte lanes the
        // body immediately re-reads as 16/32-byte vectors).
        let mut i = 0;
        while i + 2 * W <= n {
            let pa = Prologue::<W>::compute(q, t0, t1, i);
            let pb = Prologue::<W>::compute(q, t0, t1, i + W);
            chunk!(pa, i);
            chunk!(pb, i + W);
            i += 2 * W;
        }
        while i + W <= n {
            let p = Prologue::<W>::compute(q, t0, t1, i);
            chunk!(p, i);
            i += W;
        }
        if i < n {
            super::batch_scalar(
                q,
                &x0[i..n],
                &y0[i..n],
                &x1[i..n],
                &y1[i..n],
                &t0[i..n],
                &t1[i..n],
                &mut out[i..n],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::segment::Segment;
    use crate::time::Timestamp;

    fn seg(x0: f64, y0: f64, t0: i64, x1: f64, y1: f64, t1: i64) -> Segment {
        Segment::new(
            Point::new(x0, y0, Timestamp(t0)),
            Point::new(x1, y1, Timestamp(t1)),
        )
    }

    fn lanes(s: &Segment) -> SegLanes {
        SegLanes {
            x0: s.start.x,
            y0: s.start.y,
            x1: s.end.x,
            y1: s.end.y,
            t0: s.start.t.millis(),
            t1: s.end.t.millis(),
        }
    }

    #[test]
    fn kernel_is_bit_identical_to_segment_method() {
        // A grid of awkward offsets: partial overlaps, containment, touching
        // endpoints, irrational-ish coordinates.
        let cases = [
            (
                seg(0.0, 0.0, 0, 10.0, 0.0, 10_000),
                seg(0.0, 3.0, 0, 10.0, 3.0, 10_000),
            ),
            (
                seg(0.1, 0.2, 0, 9.7, 4.3, 7_001),
                seg(1.3, -2.0, 3_000, 8.0, 5.5, 12_345),
            ),
            (
                seg(5.0, 5.0, 1_000, 6.0, 7.0, 1_001),
                seg(0.0, 0.0, 0, 100.0, 0.0, 100_000),
            ),
            (
                seg(-3.5, 2.25, -5_000, 4.125, -1.0, 5_000),
                seg(0.0, 0.0, -1_000, 0.0, 0.0, 1_000),
            ),
            (
                seg(0.0, 0.0, 0, 1.0, 1.0, 1_000),
                seg(2.0, 2.0, 1_000, 3.0, 3.0, 2_000),
            ),
        ];
        for (a, b) in &cases {
            let via_segment = a.mean_synchronized_distance(b);
            let via_kernel = mean_sync_distance(&lanes(a), &lanes(b));
            // Exact equality, not approximate: the two paths are the same
            // arithmetic and must never diverge by even one bit.
            assert_eq!(via_segment, via_kernel, "{a:?} vs {b:?}");
            assert_eq!(
                b.mean_synchronized_distance(a),
                mean_sync_distance(&lanes(b), &lanes(a))
            );
        }
    }

    #[test]
    fn disjoint_lifespans_reject_before_interpolating() {
        let a = SegLanes {
            x0: f64::NAN,
            y0: f64::NAN,
            x1: f64::NAN,
            y1: f64::NAN,
            t0: 0,
            t1: 1_000,
        };
        let b = SegLanes {
            x0: 0.0,
            y0: 0.0,
            x1: 1.0,
            y1: 1.0,
            t0: 2_000,
            t1: 3_000,
        };
        // NaN lanes never poison the result because the temporal reject fires
        // first — proof the reject really is hoisted above the interpolation.
        assert_eq!(mean_sync_distance(&a, &b), None);
        assert_eq!(mean_sync_distance(&b, &a), None);
    }

    #[test]
    fn touching_endpoints_still_evaluate() {
        let a = seg(0.0, 0.0, 0, 1.0, 0.0, 1_000);
        let b = seg(1.0, 4.0, 1_000, 2.0, 4.0, 2_000);
        let d = mean_sync_distance(&lanes(&a), &lanes(&b)).unwrap();
        assert!(
            (d - 4.0).abs() < 1e-12,
            "single shared instant, offset 4: {d}"
        );
    }

    /// Deterministic xorshift so the sweep needs no RNG dependency.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    fn rand_f64(state: &mut u64, lo: f64, hi: f64) -> f64 {
        let u = (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * u
    }

    /// The SoA lane columns of a generated candidate pool.
    type Pool = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<i64>, Vec<i64>);

    /// A pseudo-random candidate pool exercising partial overlap, disjoint
    /// lifespans, containment, and zero-span degeneracy.
    fn candidate_pool(seed: u64, n: usize) -> Pool {
        let mut s = seed;
        let (mut x0, mut y0, mut x1, mut y1) = (vec![], vec![], vec![], vec![]);
        let (mut t0, mut t1) = (vec![], vec![]);
        for i in 0..n {
            let start = (xorshift(&mut s) % 30_000) as i64 - 10_000;
            let span = match i % 5 {
                0 => 0, // degenerate
                _ => (xorshift(&mut s) % 8_000) as i64,
            };
            x0.push(rand_f64(&mut s, -50.0, 50.0));
            y0.push(rand_f64(&mut s, -50.0, 50.0));
            x1.push(rand_f64(&mut s, -50.0, 50.0));
            y1.push(rand_f64(&mut s, -50.0, 50.0));
            t0.push(start);
            t1.push(start + span);
        }
        (x0, y0, x1, y1, t0, t1)
    }

    #[test]
    fn batch_widths_are_bit_identical_to_scalar_kernel() {
        let queries = [
            SegLanes {
                x0: 0.3,
                y0: -1.2,
                x1: 9.9,
                y1: 4.4,
                t0: 0,
                t1: 9_000,
            },
            SegLanes {
                x0: 2.0,
                y0: 2.0,
                x1: 2.0,
                y1: 2.0,
                t0: 5_000,
                t1: 5_000,
            }, // degenerate query
            SegLanes {
                x0: -7.5,
                y0: 3.25,
                x1: 1.0,
                y1: -2.0,
                t0: -4_321,
                t1: 12_345,
            },
        ];
        // Lengths straddling every multiple-of-width boundary, so both SIMD
        // widths exercise full vectors AND 1/2/3-lane remainder tails.
        for n in [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 33] {
            let (x0, y0, x1, y1, t0, t1) = candidate_pool(0x9E37_79B9 ^ n as u64, n);
            for q in &queries {
                // Reference: the scalar Option kernel, ∞-encoded.
                let expect: Vec<f64> = (0..n)
                    .map(|i| {
                        let c = SegLanes {
                            x0: x0[i],
                            y0: y0[i],
                            x1: x1[i],
                            y1: y1[i],
                            t0: t0[i],
                            t1: t1[i],
                        };
                        mean_sync_distance(q, &c).unwrap_or(f64::INFINITY)
                    })
                    .collect();
                for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
                    let mut out = vec![0.0; n];
                    mean_sync_distance_batch_at(level, q, &x0, &y0, &x1, &y1, &t0, &t1, &mut out);
                    for i in 0..n {
                        assert_eq!(
                            expect[i].to_bits(),
                            out[i].to_bits(),
                            "lane {i} of {n} diverged at {level:?} for query {q:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn default_batch_entry_matches_scalar() {
        let q = SegLanes {
            x0: 1.0,
            y0: 2.0,
            x1: 3.0,
            y1: 4.0,
            t0: 100,
            t1: 900,
        };
        let (x0, y0, x1, y1, t0, t1) = candidate_pool(42, 13);
        let mut out = vec![0.0; 13];
        mean_sync_distance_batch(&q, &x0, &y0, &x1, &y1, &t0, &t1, &mut out);
        let mut reference = vec![0.0; 13];
        mean_sync_distance_batch_at(
            SimdLevel::Scalar,
            &q,
            &x0,
            &y0,
            &x1,
            &y1,
            &t0,
            &t1,
            &mut reference,
        );
        assert_eq!(out, reference);
    }

    #[test]
    fn simd_level_resolution_clamps_and_parses() {
        let best = best_supported();
        assert_eq!(resolve_level(None), best);
        assert_eq!(resolve_level(Some("")), best);
        assert_eq!(resolve_level(Some("auto")), best);
        assert_eq!(resolve_level(Some("off")), SimdLevel::Scalar);
        assert_eq!(resolve_level(Some("scalar")), SimdLevel::Scalar);
        assert_eq!(resolve_level(Some(" OFF ")), SimdLevel::Scalar);
        assert_eq!(resolve_level(Some("sse2")), SimdLevel::Sse2.min(best));
        assert_eq!(resolve_level(Some("avx2")), SimdLevel::Avx2.min(best));
        assert!(SimdLevel::Scalar < SimdLevel::Sse2 && SimdLevel::Sse2 < SimdLevel::Avx2);
        assert_eq!(SimdLevel::Avx2.lanes(), 4);
        assert_eq!(SimdLevel::Sse2.label(), "sse2");
        assert_eq!(BATCH % SimdLevel::Avx2.lanes(), 0);
        assert_eq!(BATCH % SimdLevel::Sse2.lanes(), 0);
    }

    #[test]
    fn degenerate_zero_span_lane_uses_start_point() {
        let a = SegLanes {
            x0: 5.0,
            y0: 5.0,
            x1: 9.0,
            y1: 9.0,
            t0: 100,
            t1: 100,
        };
        let b = SegLanes {
            x0: 5.0,
            y0: 2.0,
            x1: 5.0,
            y1: 2.0,
            t0: 100,
            t1: 100,
        };
        assert_eq!(mean_sync_distance(&a, &b), Some(3.0));
    }
}
