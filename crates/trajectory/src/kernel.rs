//! Flat, allocation-free segment distance kernels.
//!
//! The S2T voting inner loop evaluates the time-synchronized segment distance
//! millions of times per query. The object-level entry point
//! ([`crate::Segment::mean_synchronized_distance`]) delegates to the scalar
//! kernel here, so callers that keep their segments in structure-of-arrays
//! form (the `SegmentArena` of `hermes-s2t`) can feed the kernel straight
//! from `f64`/`i64` lanes without materializing `Segment`s or `Point`s —
//! and both paths are bit-identical by construction, because they are the
//! same arithmetic.
//!
//! Contract kept by every function in this module:
//!
//! * **no heap allocation**, ever;
//! * **fixed arithmetic order** — the operations and their order match the
//!   original `Segment` methods exactly, so results agree bit for bit;
//! * **early temporal reject** — the common-lifespan test runs before any
//!   interpolation touches the spatial lanes.

/// One trajectory segment in scalar-lane form: the endpoints' coordinates and
/// timestamps. This is the row a `SegmentArena` reconstitutes from its
/// parallel arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegLanes {
    /// x at the segment start.
    pub x0: f64,
    /// y at the segment start.
    pub y0: f64,
    /// x at the segment end.
    pub x1: f64,
    /// y at the segment end.
    pub y1: f64,
    /// Start time, milliseconds.
    pub t0: i64,
    /// End time, milliseconds (strictly after `t0` for well-formed segments).
    pub t1: i64,
}

impl SegLanes {
    /// The interpolated spatial position at time `t`, clamped to the
    /// segment's lifespan. Mirrors `Segment::position_at` + `Point::lerp`
    /// exactly (same operations, same order), minus the unused temporal
    /// component.
    #[inline]
    pub fn position_at(&self, t: i64) -> (f64, f64) {
        let span = self.t1 - self.t0;
        if span == 0 {
            return (self.x0, self.y0);
        }
        let f = ((t - self.t0) as f64 / span as f64).clamp(0.0, 1.0);
        (
            self.x0 + (self.x1 - self.x0) * f,
            self.y0 + (self.y1 - self.y0) * f,
        )
    }
}

/// Euclidean distance between the two segments' interpolated positions at
/// instant `t` (both clamped to their own lifespans).
#[inline]
fn distance_at(a: &SegLanes, b: &SegLanes, t: i64) -> f64 {
    let (px, py) = a.position_at(t);
    let (qx, qy) = b.position_at(t);
    let dx = px - qx;
    let dy = py - qy;
    (dx * dx + dy * dy).sqrt()
}

/// Mean time-synchronized distance between two segments over their common
/// lifespan — Simpson's rule on the interval endpoints and midpoint, exact
/// for the linear relative displacement of two uniform movers. `None` when
/// the lifespans are disjoint (checked **before** any interpolation).
///
/// This is the voting kernel: `Segment::mean_synchronized_distance` is a
/// thin wrapper around it, so the flat and object paths cannot drift apart.
#[inline]
pub fn mean_sync_distance(a: &SegLanes, b: &SegLanes) -> Option<f64> {
    // Early temporal reject: closed-interval intersection on the i64 lanes.
    let common_start = if a.t0 >= b.t0 { a.t0 } else { b.t0 };
    let common_end = if a.t1 <= b.t1 { a.t1 } else { b.t1 };
    if common_start > common_end {
        return None;
    }
    let mid = (common_start + common_end) / 2;
    Some(
        (distance_at(a, b, common_start)
            + 4.0 * distance_at(a, b, mid)
            + distance_at(a, b, common_end))
            / 6.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::segment::Segment;
    use crate::time::Timestamp;

    fn seg(x0: f64, y0: f64, t0: i64, x1: f64, y1: f64, t1: i64) -> Segment {
        Segment::new(
            Point::new(x0, y0, Timestamp(t0)),
            Point::new(x1, y1, Timestamp(t1)),
        )
    }

    fn lanes(s: &Segment) -> SegLanes {
        SegLanes {
            x0: s.start.x,
            y0: s.start.y,
            x1: s.end.x,
            y1: s.end.y,
            t0: s.start.t.millis(),
            t1: s.end.t.millis(),
        }
    }

    #[test]
    fn kernel_is_bit_identical_to_segment_method() {
        // A grid of awkward offsets: partial overlaps, containment, touching
        // endpoints, irrational-ish coordinates.
        let cases = [
            (
                seg(0.0, 0.0, 0, 10.0, 0.0, 10_000),
                seg(0.0, 3.0, 0, 10.0, 3.0, 10_000),
            ),
            (
                seg(0.1, 0.2, 0, 9.7, 4.3, 7_001),
                seg(1.3, -2.0, 3_000, 8.0, 5.5, 12_345),
            ),
            (
                seg(5.0, 5.0, 1_000, 6.0, 7.0, 1_001),
                seg(0.0, 0.0, 0, 100.0, 0.0, 100_000),
            ),
            (
                seg(-3.5, 2.25, -5_000, 4.125, -1.0, 5_000),
                seg(0.0, 0.0, -1_000, 0.0, 0.0, 1_000),
            ),
            (
                seg(0.0, 0.0, 0, 1.0, 1.0, 1_000),
                seg(2.0, 2.0, 1_000, 3.0, 3.0, 2_000),
            ),
        ];
        for (a, b) in &cases {
            let via_segment = a.mean_synchronized_distance(b);
            let via_kernel = mean_sync_distance(&lanes(a), &lanes(b));
            // Exact equality, not approximate: the two paths are the same
            // arithmetic and must never diverge by even one bit.
            assert_eq!(via_segment, via_kernel, "{a:?} vs {b:?}");
            assert_eq!(
                b.mean_synchronized_distance(a),
                mean_sync_distance(&lanes(b), &lanes(a))
            );
        }
    }

    #[test]
    fn disjoint_lifespans_reject_before_interpolating() {
        let a = SegLanes {
            x0: f64::NAN,
            y0: f64::NAN,
            x1: f64::NAN,
            y1: f64::NAN,
            t0: 0,
            t1: 1_000,
        };
        let b = SegLanes {
            x0: 0.0,
            y0: 0.0,
            x1: 1.0,
            y1: 1.0,
            t0: 2_000,
            t1: 3_000,
        };
        // NaN lanes never poison the result because the temporal reject fires
        // first — proof the reject really is hoisted above the interpolation.
        assert_eq!(mean_sync_distance(&a, &b), None);
        assert_eq!(mean_sync_distance(&b, &a), None);
    }

    #[test]
    fn touching_endpoints_still_evaluate() {
        let a = seg(0.0, 0.0, 0, 1.0, 0.0, 1_000);
        let b = seg(1.0, 4.0, 1_000, 2.0, 4.0, 2_000);
        let d = mean_sync_distance(&lanes(&a), &lanes(&b)).unwrap();
        assert!(
            (d - 4.0).abs() < 1e-12,
            "single shared instant, offset 4: {d}"
        );
    }

    #[test]
    fn degenerate_zero_span_lane_uses_start_point() {
        let a = SegLanes {
            x0: 5.0,
            y0: 5.0,
            x1: 9.0,
            y1: 9.0,
            t0: 100,
            t1: 100,
        };
        let b = SegLanes {
            x0: 5.0,
            y0: 2.0,
            x1: 5.0,
            y1: 2.0,
            t0: 100,
            t1: 100,
        };
        assert_eq!(mean_sync_distance(&a, &b), Some(3.0));
    }
}
