//! # hermes-trajectory
//!
//! Spatio-temporal geometry substrate for the Hermes time-aware sub-trajectory
//! clustering engine.
//!
//! This crate provides the data model that every other crate in the workspace
//! builds upon:
//!
//! * [`Timestamp`] / [`Duration`] — millisecond-resolution time axis,
//! * [`Point`] — a 3D sample `(x, y, t)` of a moving object,
//! * [`Mbb`] — 3D (space + time) minimum bounding boxes,
//! * [`Segment`] — a straight-line movement between two consecutive samples,
//! * [`Trajectory`] — the full history of one moving object,
//! * [`SubTrajectory`] — a contiguous portion of a trajectory (the unit that
//!   the S2T / QuT clustering algorithms group),
//! * distance functions (time-synchronized Euclidean, Hausdorff-style,
//!   segment-to-trajectory) in [`distance`],
//! * simplification and resampling utilities.
//!
//! The Hermes@PostgreSQL paper (ICDE 2018) operates on "3D trajectory
//! segments"; throughout this workspace the third dimension is always time.
//!
//! **Layer:** the geometry substrate everything else builds on — no
//! dependencies on other workspace crates. The layer map lives in
//! `docs/ARCHITECTURE.md`.

pub mod csvio;
pub mod distance;
pub mod error;
pub mod geo;
pub mod interpolate;
pub mod kernel;
pub mod mbb;
pub mod point;
pub mod segment;
pub mod simplify;
pub mod stats;
pub mod subtrajectory;
pub mod time;
pub mod trajectory;

pub use csvio::{parse_csv, parse_geo_csv, to_csv, CsvImport};
pub use distance::{
    hausdorff_distance, segment_to_trajectory_distance, spatiotemporal_distance,
    sub_trajectory_distance, synchronized_euclidean,
};
pub use error::TrajectoryError;
pub use geo::{haversine_distance, GeoPoint, LocalProjection};
pub use kernel::{
    mean_sync_distance, mean_sync_distance_batch, mean_sync_distance_batch_at, simd_level,
    SegLanes, SimdLevel, BATCH,
};
pub use mbb::Mbb;
pub use point::Point;
pub use segment::Segment;
pub use simplify::douglas_peucker;
pub use stats::TrajectoryStats;
pub use subtrajectory::{SubTrajectory, SubTrajectoryId};
pub use time::{Duration, TimeInterval, Timestamp};
pub use trajectory::{ObjectId, Trajectory, TrajectoryBuilder, TrajectoryId};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, TrajectoryError>;
