//! 3D (space + time) minimum bounding boxes.
//!
//! The `pg3D-Rtree` of the paper indexes trajectory segments and
//! sub-trajectories by their 3D MBB; this type is the key used by the GiST
//! operator class in `hermes-gist`.

use crate::point::Point;
use crate::time::{TimeInterval, Timestamp};
use std::fmt;

/// A minimum bounding box over two spatial dimensions and time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mbb {
    /// Minimum x (inclusive).
    pub x_min: f64,
    /// Maximum x (inclusive).
    pub x_max: f64,
    /// Minimum y (inclusive).
    pub y_min: f64,
    /// Maximum y (inclusive).
    pub y_max: f64,
    /// Earliest time (inclusive).
    pub t_min: Timestamp,
    /// Latest time (inclusive).
    pub t_max: Timestamp,
}

impl Mbb {
    /// An "empty" box that is the identity of [`Mbb::union`].
    pub fn empty() -> Self {
        Mbb {
            x_min: f64::INFINITY,
            x_max: f64::NEG_INFINITY,
            y_min: f64::INFINITY,
            y_max: f64::NEG_INFINITY,
            t_min: Timestamp::MAX,
            t_max: Timestamp::MIN,
        }
    }

    /// Builds a box from explicit bounds. Panics if any minimum exceeds the
    /// corresponding maximum.
    pub fn new(
        x_min: f64,
        x_max: f64,
        y_min: f64,
        y_max: f64,
        t_min: Timestamp,
        t_max: Timestamp,
    ) -> Self {
        assert!(x_min <= x_max, "x_min must not exceed x_max");
        assert!(y_min <= y_max, "y_min must not exceed y_max");
        assert!(t_min <= t_max, "t_min must not exceed t_max");
        Mbb {
            x_min,
            x_max,
            y_min,
            y_max,
            t_min,
            t_max,
        }
    }

    /// The degenerate box covering a single point.
    pub fn from_point(p: &Point) -> Self {
        Mbb {
            x_min: p.x,
            x_max: p.x,
            y_min: p.y,
            y_max: p.y,
            t_min: p.t,
            t_max: p.t,
        }
    }

    /// The tight box around a set of points. Returns [`Mbb::empty`] for an
    /// empty slice.
    pub fn from_points(points: &[Point]) -> Self {
        let mut b = Mbb::empty();
        for p in points {
            b.expand_point(p);
        }
        b
    }

    /// True when the box contains no point (the union identity).
    pub fn is_empty(&self) -> bool {
        self.x_min > self.x_max || self.y_min > self.y_max || self.t_min > self.t_max
    }

    /// Grows the box to include `p`.
    pub fn expand_point(&mut self, p: &Point) {
        self.x_min = self.x_min.min(p.x);
        self.x_max = self.x_max.max(p.x);
        self.y_min = self.y_min.min(p.y);
        self.y_max = self.y_max.max(p.y);
        self.t_min = self.t_min.min(p.t);
        self.t_max = self.t_max.max(p.t);
    }

    /// Grows the box to include `other`.
    pub fn expand(&mut self, other: &Mbb) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = *other;
            return;
        }
        self.x_min = self.x_min.min(other.x_min);
        self.x_max = self.x_max.max(other.x_max);
        self.y_min = self.y_min.min(other.y_min);
        self.y_max = self.y_max.max(other.y_max);
        self.t_min = self.t_min.min(other.t_min);
        self.t_max = self.t_max.max(other.t_max);
    }

    /// Smallest box containing both inputs.
    pub fn union(&self, other: &Mbb) -> Mbb {
        let mut b = *self;
        b.expand(other);
        b
    }

    /// Overlapping region of two boxes, if any.
    pub fn intersection(&self, other: &Mbb) -> Option<Mbb> {
        if !self.intersects(other) {
            return None;
        }
        Some(Mbb {
            x_min: self.x_min.max(other.x_min),
            x_max: self.x_max.min(other.x_max),
            y_min: self.y_min.max(other.y_min),
            y_max: self.y_max.min(other.y_max),
            t_min: self.t_min.max(other.t_min),
            t_max: self.t_max.min(other.t_max),
        })
    }

    /// True if the boxes share at least one point (boundaries included).
    pub fn intersects(&self, other: &Mbb) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        self.x_min <= other.x_max
            && other.x_min <= self.x_max
            && self.y_min <= other.y_max
            && other.y_min <= self.y_max
            && self.t_min <= other.t_max
            && other.t_min <= self.t_max
    }

    /// True if `other` is completely inside `self`.
    pub fn contains(&self, other: &Mbb) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        self.x_min <= other.x_min
            && other.x_max <= self.x_max
            && self.y_min <= other.y_min
            && other.y_max <= self.y_max
            && self.t_min <= other.t_min
            && other.t_max <= self.t_max
    }

    /// True if the point is inside the box.
    pub fn contains_point(&self, p: &Point) -> bool {
        !self.is_empty()
            && self.x_min <= p.x
            && p.x <= self.x_max
            && self.y_min <= p.y
            && p.y <= self.y_max
            && self.t_min <= p.t
            && p.t <= self.t_max
    }

    /// Spatial extent along x.
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.x_max - self.x_min
        }
    }

    /// Spatial extent along y.
    pub fn height(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.y_max - self.y_min
        }
    }

    /// Temporal extent in seconds.
    pub fn time_span_secs(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.t_max - self.t_min).as_secs_f64()
        }
    }

    /// The temporal interval covered by the box.
    pub fn time_interval(&self) -> TimeInterval {
        TimeInterval::new(self.t_min, self.t_max)
    }

    /// 3D volume of the box: area × seconds. Time is scaled by
    /// `time_weight` (spatial units per second), matching the distance
    /// convention of the rest of the workspace.
    pub fn volume(&self, time_weight: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.width() * self.height() * self.time_span_secs() * time_weight
    }

    /// Sum of the three edge lengths (the "margin" used by R*-tree splits).
    pub fn margin(&self, time_weight: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.width() + self.height() + self.time_span_secs() * time_weight
    }

    /// Volume of the intersection (zero if disjoint).
    pub fn overlap_volume(&self, other: &Mbb, time_weight: f64) -> f64 {
        self.intersection(other)
            .map(|b| b.volume(time_weight))
            .unwrap_or(0.0)
    }

    /// Expands the box by `radius` in space and `time_pad` milliseconds in
    /// time; used to turn a segment MBB into a voting-candidate search window.
    pub fn inflate(&self, radius: f64, time_pad_ms: i64) -> Mbb {
        if self.is_empty() {
            return *self;
        }
        Mbb {
            x_min: self.x_min - radius,
            x_max: self.x_max + radius,
            y_min: self.y_min - radius,
            y_max: self.y_max + radius,
            t_min: Timestamp(self.t_min.millis() - time_pad_ms),
            t_max: Timestamp(self.t_max.millis() + time_pad_ms),
        }
    }

    /// Center of the box in the scaled 3D space.
    pub fn center(&self) -> (f64, f64, f64) {
        (
            (self.x_min + self.x_max) / 2.0,
            (self.y_min + self.y_max) / 2.0,
            (self.t_min.as_secs_f64() + self.t_max.as_secs_f64()) / 2.0,
        )
    }

    /// Minimum 3D distance between two boxes (zero if they intersect),
    /// with time scaled by `time_weight`.
    pub fn min_distance(&self, other: &Mbb, time_weight: f64) -> f64 {
        if self.is_empty() || other.is_empty() {
            return f64::INFINITY;
        }
        let dx = axis_gap(self.x_min, self.x_max, other.x_min, other.x_max);
        let dy = axis_gap(self.y_min, self.y_max, other.y_min, other.y_max);
        let dt = axis_gap(
            self.t_min.as_secs_f64(),
            self.t_max.as_secs_f64(),
            other.t_min.as_secs_f64(),
            other.t_max.as_secs_f64(),
        ) * time_weight;
        (dx * dx + dy * dy + dt * dt).sqrt()
    }
}

fn axis_gap(a_min: f64, a_max: f64, b_min: f64, b_max: f64) -> f64 {
    if a_max < b_min {
        b_min - a_max
    } else if b_max < a_min {
        a_min - b_max
    } else {
        0.0
    }
}

impl fmt::Display for Mbb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Mbb[x: {:.2}..{:.2}, y: {:.2}..{:.2}, t: {}..{}]",
            self.x_min, self.x_max, self.y_min, self.y_max, self.t_min, self.t_max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxy(x0: f64, x1: f64, y0: f64, y1: f64, t0: i64, t1: i64) -> Mbb {
        Mbb::new(x0, x1, y0, y1, Timestamp(t0), Timestamp(t1))
    }

    #[test]
    fn empty_box_behaves_as_union_identity() {
        let e = Mbb::empty();
        let b = boxy(0.0, 1.0, 0.0, 1.0, 0, 1000);
        assert!(e.is_empty());
        assert_eq!(e.union(&b), b);
        assert_eq!(b.union(&e), b);
        assert!(!e.intersects(&b));
        assert!(!e.contains(&b));
        assert_eq!(e.volume(1.0), 0.0);
    }

    #[test]
    fn from_points_is_tight() {
        let pts = [
            Point::new(1.0, 5.0, Timestamp(100)),
            Point::new(-2.0, 3.0, Timestamp(50)),
            Point::new(4.0, -1.0, Timestamp(200)),
        ];
        let b = Mbb::from_points(&pts);
        assert_eq!(b, boxy(-2.0, 4.0, -1.0, 5.0, 50, 200));
        for p in &pts {
            assert!(b.contains_point(p));
        }
    }

    #[test]
    fn intersection_and_containment() {
        let a = boxy(0.0, 10.0, 0.0, 10.0, 0, 10_000);
        let b = boxy(5.0, 15.0, 5.0, 15.0, 5_000, 15_000);
        let c = boxy(2.0, 3.0, 2.0, 3.0, 2_000, 3_000);
        assert!(a.intersects(&b));
        assert_eq!(
            a.intersection(&b).unwrap(),
            boxy(5.0, 10.0, 5.0, 10.0, 5_000, 10_000)
        );
        assert!(a.contains(&c));
        assert!(!a.contains(&b));
        assert!(a.intersection(&boxy(20.0, 30.0, 0.0, 1.0, 0, 1)).is_none());
    }

    #[test]
    fn volume_and_margin_scale_time() {
        let b = boxy(0.0, 2.0, 0.0, 3.0, 0, 4_000);
        // width 2, height 3, 4 seconds, weight 0.5 → 2*3*4*0.5 = 12
        assert!((b.volume(0.5) - 12.0).abs() < 1e-12);
        assert!((b.margin(0.5) - (2.0 + 3.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn inflate_grows_all_axes() {
        let b = boxy(0.0, 1.0, 0.0, 1.0, 1_000, 2_000).inflate(2.0, 500);
        assert_eq!(b, boxy(-2.0, 3.0, -2.0, 3.0, 500, 2_500));
    }

    #[test]
    fn min_distance_zero_when_overlapping() {
        let a = boxy(0.0, 10.0, 0.0, 10.0, 0, 10_000);
        let b = boxy(5.0, 15.0, 5.0, 15.0, 5_000, 15_000);
        assert_eq!(a.min_distance(&b, 1.0), 0.0);
        let far = boxy(13.0, 14.0, 0.0, 10.0, 0, 10_000);
        assert!((a.min_distance(&far, 1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_volume_matches_intersection_volume() {
        let a = boxy(0.0, 4.0, 0.0, 4.0, 0, 4_000);
        let b = boxy(2.0, 6.0, 2.0, 6.0, 2_000, 6_000);
        let inter = a.intersection(&b).unwrap();
        assert_eq!(a.overlap_volume(&b, 1.0), inter.volume(1.0));
    }
}
