//! Spatio-temporal sample points.

use crate::time::Timestamp;
use std::fmt;

/// A single GPS-like sample of a moving object: planar position plus time.
///
/// Coordinates are in an arbitrary planar unit (metres throughout the
/// synthetic generators of this workspace). The temporal coordinate is a
/// [`Timestamp`]. A `Point` is the "3D" point of the paper — two spatial
/// dimensions plus time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Easting / x coordinate.
    pub x: f64,
    /// Northing / y coordinate.
    pub y: f64,
    /// Sampling time.
    pub t: Timestamp,
}

impl Point {
    /// Creates a new point.
    pub const fn new(x: f64, y: f64, t: Timestamp) -> Self {
        Point { x, y, t }
    }

    /// Euclidean distance between the spatial components of two points.
    pub fn spatial_distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared spatial distance (cheaper; used in hot loops).
    pub fn spatial_distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Absolute temporal distance between two points.
    pub fn temporal_distance(&self, other: &Point) -> f64 {
        (self.t - other.t).abs().as_secs_f64()
    }

    /// Weighted spatio-temporal distance.
    ///
    /// `time_weight` converts one second of temporal separation into the
    /// spatial unit, so that the combined distance is
    /// `sqrt(d_xy² + (time_weight · d_t)²)`.
    pub fn spatiotemporal_distance(&self, other: &Point, time_weight: f64) -> f64 {
        let ds = self.spatial_distance_sq(other);
        let dt = self.temporal_distance(other) * time_weight;
        (ds + dt * dt).sqrt()
    }

    /// Component-wise linear interpolation between two points at fraction
    /// `f ∈ [0, 1]` (`f = 0` yields `self`, `f = 1` yields `other`).
    pub fn lerp(&self, other: &Point, f: f64) -> Point {
        let f = f.clamp(0.0, 1.0);
        Point {
            x: self.x + (other.x - self.x) * f,
            y: self.y + (other.y - self.y) * f,
            t: Timestamp(
                self.t.millis() + ((other.t.millis() - self.t.millis()) as f64 * f).round() as i64,
            ),
        }
    }

    /// True when all components are finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {})", self.x, self.y, self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64, t: i64) -> Point {
        Point::new(x, y, Timestamp(t))
    }

    #[test]
    fn spatial_distance_is_euclidean() {
        assert_eq!(p(0.0, 0.0, 0).spatial_distance(&p(3.0, 4.0, 0)), 5.0);
        assert_eq!(p(0.0, 0.0, 0).spatial_distance_sq(&p(3.0, 4.0, 0)), 25.0);
    }

    #[test]
    fn temporal_distance_is_symmetric_seconds() {
        let a = p(0.0, 0.0, 0);
        let b = p(0.0, 0.0, 2500);
        assert_eq!(a.temporal_distance(&b), 2.5);
        assert_eq!(b.temporal_distance(&a), 2.5);
    }

    #[test]
    fn spatiotemporal_distance_combines_axes() {
        let a = p(0.0, 0.0, 0);
        let b = p(3.0, 0.0, 4000);
        // 3 m spatial, 4 s temporal with weight 1.0 → 5.
        assert!((a.spatiotemporal_distance(&b, 1.0) - 5.0).abs() < 1e-12);
        // weight 0 ignores time.
        assert!((a.spatiotemporal_distance(&b, 0.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_interpolates_and_clamps() {
        let a = p(0.0, 0.0, 0);
        let b = p(10.0, 20.0, 1000);
        let mid = a.lerp(&b, 0.5);
        assert_eq!(mid, p(5.0, 10.0, 500));
        assert_eq!(a.lerp(&b, -1.0), a);
        assert_eq!(a.lerp(&b, 2.0), b);
    }

    #[test]
    fn finiteness_check() {
        assert!(p(1.0, 2.0, 3).is_finite());
        assert!(!Point::new(f64::NAN, 0.0, Timestamp(0)).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY, Timestamp(0)).is_finite());
    }
}
