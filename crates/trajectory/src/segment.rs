//! 3D trajectory segments: the straight-line movement between two
//! consecutive samples. The voting step of S2T-Clustering operates on
//! segments ("each 3D trajectory segment ... is voted by other trajectories").

use crate::kernel::{self, SegLanes};
use crate::mbb::Mbb;
use crate::point::Point;
use crate::time::{TimeInterval, Timestamp};

/// The movement of an object between two consecutive samples, assumed linear
/// in space and uniform in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Sample at the beginning of the segment.
    pub start: Point,
    /// Sample at the end of the segment (strictly later than `start`).
    pub end: Point,
}

impl Segment {
    /// Creates a segment. Panics if `end.t <= start.t`.
    pub fn new(start: Point, end: Point) -> Self {
        assert!(
            end.t > start.t,
            "segment end time must be strictly after start time"
        );
        Segment { start, end }
    }

    /// The temporal lifespan of the segment.
    pub fn interval(&self) -> TimeInterval {
        TimeInterval::new(self.start.t, self.end.t)
    }

    /// Spatial length of the segment.
    pub fn length(&self) -> f64 {
        self.start.spatial_distance(&self.end)
    }

    /// Duration of the segment in seconds.
    pub fn duration_secs(&self) -> f64 {
        (self.end.t - self.start.t).as_secs_f64()
    }

    /// Average speed along the segment (spatial units per second).
    pub fn speed(&self) -> f64 {
        let d = self.duration_secs();
        if d == 0.0 {
            0.0
        } else {
            self.length() / d
        }
    }

    /// Heading of the segment in radians, measured counter-clockwise from the
    /// positive x axis. Returns 0 for a zero-length segment.
    pub fn heading(&self) -> f64 {
        let dy = self.end.y - self.start.y;
        let dx = self.end.x - self.start.x;
        if dx == 0.0 && dy == 0.0 {
            0.0
        } else {
            dy.atan2(dx)
        }
    }

    /// The interpolated position of the object at time `t`, clamped to the
    /// segment's lifespan.
    pub fn position_at(&self, t: Timestamp) -> Point {
        let span = (self.end.t - self.start.t).millis();
        if span == 0 {
            return self.start;
        }
        let f = (t.millis() - self.start.t.millis()) as f64 / span as f64;
        self.start.lerp(&self.end, f)
    }

    /// Midpoint of the segment (in space and time).
    pub fn midpoint(&self) -> Point {
        self.start.lerp(&self.end, 0.5)
    }

    /// The 3D bounding box of the segment.
    pub fn mbb(&self) -> Mbb {
        let mut b = Mbb::from_point(&self.start);
        b.expand_point(&self.end);
        b
    }

    /// Closest-point distance between the spatial projections of two segments
    /// evaluated only over their *common lifespan*; `None` when their
    /// lifespans do not overlap.
    ///
    /// This is the time-synchronized segment distance used by the voting
    /// kernel: both objects are interpolated to the same instants, so the
    /// value reflects how closely they *co-move*, not merely how close the
    /// geometries pass.
    pub fn synchronized_distance(&self, other: &Segment) -> Option<f64> {
        let common = self.interval().intersection(&other.interval())?;
        // Relative displacement between the two moving points is linear in t,
        // so its squared norm is a quadratic in t; minimise it in closed form
        // and also inspect the interval endpoints.
        let p0 = self.position_at(common.start);
        let q0 = other.position_at(common.start);
        let p1 = self.position_at(common.end);
        let q1 = other.position_at(common.end);

        let dx0 = p0.x - q0.x;
        let dy0 = p0.y - q0.y;
        let dx1 = p1.x - q1.x;
        let dy1 = p1.y - q1.y;

        let d_start = (dx0 * dx0 + dy0 * dy0).sqrt();
        let d_end = (dx1 * dx1 + dy1 * dy1).sqrt();
        let mut best = d_start.min(d_end);

        // Parametrize relative displacement r(f) = r0 + f·(r1 - r0), f ∈ [0,1].
        let vx = dx1 - dx0;
        let vy = dy1 - dy0;
        let denom = vx * vx + vy * vy;
        if denom > 0.0 {
            let f = -(dx0 * vx + dy0 * vy) / denom;
            if f > 0.0 && f < 1.0 {
                let rx = dx0 + f * vx;
                let ry = dy0 + f * vy;
                best = best.min((rx * rx + ry * ry).sqrt());
            }
        }
        Some(best)
    }

    /// The segment's endpoints as flat scalar lanes, the form the
    /// allocation-free kernels in [`crate::kernel`] operate on.
    pub fn lanes(&self) -> SegLanes {
        SegLanes {
            x0: self.start.x,
            y0: self.start.y,
            x1: self.end.x,
            y1: self.end.y,
            t0: self.start.t.millis(),
            t1: self.end.t.millis(),
        }
    }

    /// Mean synchronized distance over the common lifespan (None when the
    /// lifespans are disjoint). Because the relative displacement is linear,
    /// the mean of its norm is approximated by Simpson's rule on the three
    /// anchor instants, which is exact for linear and quadratic profiles.
    ///
    /// Delegates to [`kernel::mean_sync_distance`], the flat kernel the
    /// SoA voting hot path also calls — the two paths are bit-identical by
    /// construction.
    pub fn mean_synchronized_distance(&self, other: &Segment) -> Option<f64> {
        kernel::mean_sync_distance(&self.lanes(), &other.lanes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64, t: i64) -> Point {
        Point::new(x, y, Timestamp(t))
    }

    #[test]
    fn basic_measures() {
        let s = Segment::new(p(0.0, 0.0, 0), p(3.0, 4.0, 5_000));
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.duration_secs(), 5.0);
        assert_eq!(s.speed(), 1.0);
        assert_eq!(s.midpoint(), p(1.5, 2.0, 2_500));
        assert_eq!(s.mbb(), Mbb::from_points(&[s.start, s.end]));
    }

    #[test]
    #[should_panic]
    fn rejects_non_increasing_time() {
        let _ = Segment::new(p(0.0, 0.0, 1000), p(1.0, 1.0, 1000));
    }

    #[test]
    fn position_at_clamps_to_lifespan() {
        let s = Segment::new(p(0.0, 0.0, 0), p(10.0, 0.0, 10_000));
        assert_eq!(s.position_at(Timestamp(5_000)), p(5.0, 0.0, 5_000));
        assert_eq!(s.position_at(Timestamp(-5_000)), p(0.0, 0.0, 0));
        assert_eq!(s.position_at(Timestamp(20_000)), p(10.0, 0.0, 10_000));
    }

    #[test]
    fn synchronized_distance_of_parallel_movers_is_constant_offset() {
        let a = Segment::new(p(0.0, 0.0, 0), p(10.0, 0.0, 10_000));
        let b = Segment::new(p(0.0, 3.0, 0), p(10.0, 3.0, 10_000));
        assert!((a.synchronized_distance(&b).unwrap() - 3.0).abs() < 1e-12);
        assert!((a.mean_synchronized_distance(&b).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn synchronized_distance_detects_crossing() {
        // Two objects crossing at the midpoint in both space and time.
        let a = Segment::new(p(0.0, 0.0, 0), p(10.0, 0.0, 10_000));
        let b = Segment::new(p(10.0, 0.0, 0), p(0.0, 0.0, 10_000));
        assert!(a.synchronized_distance(&b).unwrap() < 1e-9);
    }

    #[test]
    fn disjoint_lifespans_have_no_synchronized_distance() {
        let a = Segment::new(p(0.0, 0.0, 0), p(1.0, 0.0, 1_000));
        let b = Segment::new(p(0.0, 0.0, 2_000), p(1.0, 0.0, 3_000));
        assert_eq!(a.synchronized_distance(&b), None);
        assert_eq!(a.mean_synchronized_distance(&b), None);
    }

    #[test]
    fn geometric_proximity_without_co_movement_is_not_zero() {
        // Same path but traversed one hour apart within overlapping lifespans:
        // object B lags far behind A spatially at every shared instant.
        let a = Segment::new(p(0.0, 0.0, 0), p(100.0, 0.0, 100_000));
        let b = Segment::new(p(0.0, 0.0, 50_000), p(100.0, 0.0, 150_000));
        let d = a.synchronized_distance(&b).unwrap();
        assert!(d >= 50.0 - 1e-9, "expected lag of at least 50, got {d}");
    }
}
