//! Trajectory simplification.
//!
//! TRACLUS-style methods partition trajectories at "characteristic points";
//! the synchronized-distance based Douglas-Peucker variant here is used both
//! by the TRACLUS baseline (as its partitioning fallback) and by the VA
//! exports to thin dense trajectories before rendering.

use crate::point::Point;

/// Synchronized Euclidean deviation of point `p` from the straight movement
/// between `a` and `b`: the spatial distance between `p` and the position a
/// uniformly moving object (from `a` to `b`) would have at `p.t`.
///
/// Unlike the perpendicular distance of classic Douglas-Peucker this respects
/// the temporal dimension, so a stop (many samples at the same place over a
/// long time) is *not* simplified away.
pub fn time_ratio_deviation(a: &Point, b: &Point, p: &Point) -> f64 {
    let span = (b.t - a.t).millis();
    if span <= 0 {
        return p.spatial_distance(a);
    }
    let f = (p.t - a.t).millis() as f64 / span as f64;
    let expected = a.lerp(b, f);
    p.spatial_distance(&expected)
}

/// Douglas-Peucker simplification with the time-ratio deviation measure.
/// Returns the indices of the retained points (always including the first and
/// last). `epsilon` is the maximum tolerated deviation in spatial units.
pub fn douglas_peucker_indices(points: &[Point], epsilon: f64) -> Vec<usize> {
    let n = points.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let mut keep = vec![false; n];
    keep[0] = true;
    keep[n - 1] = true;
    // Explicit stack instead of recursion: trajectories can be long.
    let mut stack = vec![(0usize, n - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut worst_idx, mut worst_dev) = (lo, 0.0f64);
        for i in (lo + 1)..hi {
            let dev = time_ratio_deviation(&points[lo], &points[hi], &points[i]);
            if dev > worst_dev {
                worst_dev = dev;
                worst_idx = i;
            }
        }
        if worst_dev > epsilon {
            keep[worst_idx] = true;
            stack.push((lo, worst_idx));
            stack.push((worst_idx, hi));
        }
    }
    keep.iter()
        .enumerate()
        .filter_map(|(i, &k)| if k { Some(i) } else { None })
        .collect()
}

/// Douglas-Peucker simplification returning the retained points themselves.
pub fn douglas_peucker(points: &[Point], epsilon: f64) -> Vec<Point> {
    douglas_peucker_indices(points, epsilon)
        .into_iter()
        .map(|i| points[i])
        .collect()
}

/// Uniformly thins a point sequence down to at most `max_points` samples,
/// always keeping the first and last. Used by the VA exports when an exact
/// error bound is not needed.
pub fn thin_to(points: &[Point], max_points: usize) -> Vec<Point> {
    let n = points.len();
    if max_points < 2 || n <= max_points {
        return points.to_vec();
    }
    let mut out = Vec::with_capacity(max_points);
    for i in 0..max_points {
        let idx = i * (n - 1) / (max_points - 1);
        out.push(points[idx]);
    }
    out.dedup_by(|a, b| a.t == b.t);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn pts(v: &[(f64, f64, i64)]) -> Vec<Point> {
        v.iter()
            .map(|&(x, y, t)| Point::new(x, y, Timestamp(t)))
            .collect()
    }

    #[test]
    fn collinear_uniform_movement_collapses_to_endpoints() {
        let p = pts(&[
            (0.0, 0.0, 0),
            (1.0, 0.0, 1_000),
            (2.0, 0.0, 2_000),
            (3.0, 0.0, 3_000),
        ]);
        assert_eq!(douglas_peucker_indices(&p, 0.01), vec![0, 3]);
    }

    #[test]
    fn detour_above_epsilon_is_kept() {
        let p = pts(&[(0.0, 0.0, 0), (5.0, 4.0, 5_000), (10.0, 0.0, 10_000)]);
        assert_eq!(douglas_peucker_indices(&p, 1.0), vec![0, 1, 2]);
        assert_eq!(douglas_peucker_indices(&p, 10.0), vec![0, 2]);
    }

    #[test]
    fn stops_are_preserved_by_time_ratio_measure() {
        // Object moves, stops for a long time, then moves on. Geometrically the
        // stop samples lie on the straight line, but a uniformly moving object
        // would be elsewhere at those times, so the deviation is large.
        let p = pts(&[
            (0.0, 0.0, 0),
            (10.0, 0.0, 10_000),
            (10.0, 0.0, 110_000), // 100 s stop
            (20.0, 0.0, 120_000),
        ]);
        let idx = douglas_peucker_indices(&p, 2.0);
        assert!(idx.len() > 2, "stop must survive simplification: {idx:?}");
    }

    #[test]
    fn deviation_for_degenerate_span_falls_back_to_distance() {
        let a = Point::new(0.0, 0.0, Timestamp(0));
        let b = Point::new(10.0, 0.0, Timestamp(0));
        let p = Point::new(3.0, 4.0, Timestamp(0));
        assert_eq!(time_ratio_deviation(&a, &b, &p), 5.0);
    }

    #[test]
    fn thin_to_keeps_endpoints_and_bounds_size() {
        let p = pts(&(0..100)
            .map(|i| (i as f64, 0.0, i as i64 * 1000))
            .collect::<Vec<_>>());
        let t = thin_to(&p, 10);
        assert!(t.len() <= 10);
        assert_eq!(t.first(), p.first());
        assert_eq!(t.last(), p.last());
        // No-op when already small enough.
        assert_eq!(thin_to(&p, 1000).len(), 100);
    }
}
