//! Per-trajectory descriptive statistics.
//!
//! Used by the VA exports (speed/heading summaries shown alongside the map
//! view) and by the synthetic data generators' self-checks.

use crate::trajectory::Trajectory;

/// Summary statistics of one trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryStats {
    /// Number of samples.
    pub num_points: usize,
    /// Number of segments.
    pub num_segments: usize,
    /// Total travelled length (spatial units).
    pub total_length: f64,
    /// Lifespan in seconds.
    pub duration_secs: f64,
    /// Mean speed over all segments (length-weighted).
    pub mean_speed: f64,
    /// Maximum instantaneous (per-segment) speed.
    pub max_speed: f64,
    /// Mean sampling period in seconds.
    pub mean_sampling_period_secs: f64,
    /// Straight-line distance between the first and last sample.
    pub displacement: f64,
    /// `total_length / displacement` (1.0 for a straight path, large for
    /// loops such as aircraft holding patterns). Infinite when the start and
    /// end coincide but the path has positive length.
    pub sinuosity: f64,
}

impl TrajectoryStats {
    /// Computes the statistics of a trajectory.
    pub fn compute(traj: &Trajectory) -> Self {
        let num_points = traj.len();
        let num_segments = traj.num_segments();
        let total_length = traj.length();
        let duration_secs = traj.duration().as_secs_f64();
        let mut max_speed = 0.0f64;
        for s in traj.segments() {
            max_speed = max_speed.max(s.speed());
        }
        let mean_speed = if duration_secs > 0.0 {
            total_length / duration_secs
        } else {
            0.0
        };
        let mean_sampling_period_secs = if num_segments > 0 {
            duration_secs / num_segments as f64
        } else {
            0.0
        };
        let displacement = traj.points()[0].spatial_distance(&traj.points()[num_points - 1]);
        let sinuosity = if displacement > 0.0 {
            total_length / displacement
        } else if total_length > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        TrajectoryStats {
            num_points,
            num_segments,
            total_length,
            duration_secs,
            mean_speed,
            max_speed,
            mean_sampling_period_secs,
            displacement,
            sinuosity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::time::Timestamp;

    fn traj(pts: &[(f64, f64, i64)]) -> Trajectory {
        Trajectory::new(
            1,
            1,
            pts.iter()
                .map(|&(x, y, t)| Point::new(x, y, Timestamp(t)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn straight_constant_speed_path() {
        let s = TrajectoryStats::compute(&traj(&[
            (0.0, 0.0, 0),
            (10.0, 0.0, 10_000),
            (20.0, 0.0, 20_000),
        ]));
        assert_eq!(s.num_points, 3);
        assert_eq!(s.num_segments, 2);
        assert_eq!(s.total_length, 20.0);
        assert_eq!(s.duration_secs, 20.0);
        assert!((s.mean_speed - 1.0).abs() < 1e-12);
        assert!((s.max_speed - 1.0).abs() < 1e-12);
        assert!((s.mean_sampling_period_secs - 10.0).abs() < 1e-12);
        assert!((s.sinuosity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loop_has_high_sinuosity() {
        // Square loop returning near the start.
        let s = TrajectoryStats::compute(&traj(&[
            (0.0, 0.0, 0),
            (10.0, 0.0, 10_000),
            (10.0, 10.0, 20_000),
            (0.0, 10.0, 30_000),
            (0.0, 0.5, 40_000),
        ]));
        assert!(
            s.sinuosity > 10.0,
            "loops must show high sinuosity: {}",
            s.sinuosity
        );
    }

    #[test]
    fn closed_loop_has_infinite_sinuosity() {
        let s = TrajectoryStats::compute(&traj(&[
            (0.0, 0.0, 0),
            (10.0, 0.0, 10_000),
            (0.0, 0.0, 20_000),
        ]));
        assert!(s.sinuosity.is_infinite());
    }

    #[test]
    fn max_speed_captures_fastest_segment() {
        let s = TrajectoryStats::compute(&traj(&[
            (0.0, 0.0, 0),
            (1.0, 0.0, 10_000),  // 0.1 u/s
            (21.0, 0.0, 20_000), // 2.0 u/s
        ]));
        assert!((s.max_speed - 2.0).abs() < 1e-12);
    }
}
