//! Sub-trajectories: contiguous portions of a trajectory.
//!
//! The unit of clustering in both S2T-Clustering and QuT-Clustering is the
//! sub-trajectory. Each one remembers which parent trajectory and point range
//! it came from, so results can be traced back to the original MOD rows.

use crate::interpolate;
use crate::mbb::Mbb;
use crate::point::Point;
use crate::segment::Segment;
use crate::time::{Duration, TimeInterval, Timestamp};
use crate::trajectory::{ObjectId, TrajectoryId};
use std::fmt;
use std::sync::Arc;

/// Stable identifier of a sub-trajectory: the parent trajectory plus the
/// index of its first point in the parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubTrajectoryId {
    /// Identifier of the parent trajectory.
    pub trajectory_id: TrajectoryId,
    /// Index of the first point of this sub-trajectory within the parent.
    pub offset: u32,
}

impl SubTrajectoryId {
    /// Creates an identifier.
    pub fn new(trajectory_id: TrajectoryId, offset: u32) -> Self {
        SubTrajectoryId {
            trajectory_id,
            offset,
        }
    }
}

impl fmt::Display for SubTrajectoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.trajectory_id, self.offset)
    }
}

/// A contiguous portion of a trajectory.
///
/// Points are shared with the parent trajectory via `Arc`, so creating many
/// sub-trajectories during segmentation does not copy sample data.
#[derive(Debug, Clone)]
pub struct SubTrajectory {
    /// Stable identifier.
    pub id: SubTrajectoryId,
    /// Identifier of the parent trajectory.
    pub trajectory_id: TrajectoryId,
    /// The moving object.
    pub object_id: ObjectId,
    points: Arc<Vec<Point>>,
    start: usize,
    end: usize,
    mbb: Mbb,
}

impl SubTrajectory {
    /// Builds a sub-trajectory over `points[start..end]` of a shared buffer.
    ///
    /// Panics if the range has fewer than two points or is out of bounds —
    /// callers (trajectory splitting, segmentation) validate ranges first.
    pub fn from_shared(
        id: SubTrajectoryId,
        trajectory_id: TrajectoryId,
        object_id: ObjectId,
        points: Arc<Vec<Point>>,
        start: usize,
        end: usize,
    ) -> Self {
        assert!(
            end <= points.len() && start + 2 <= end,
            "invalid sub-trajectory range"
        );
        let mbb = Mbb::from_points(&points[start..end]);
        SubTrajectory {
            id,
            trajectory_id,
            object_id,
            points,
            start,
            end,
            mbb,
        }
    }

    /// Builds a standalone sub-trajectory from owned points (used when a
    /// temporal window cuts segments and new boundary points are created).
    pub fn from_points(
        id: SubTrajectoryId,
        trajectory_id: TrajectoryId,
        object_id: ObjectId,
        points: Vec<Point>,
    ) -> Self {
        assert!(
            points.len() >= 2,
            "a sub-trajectory needs at least two points"
        );
        let mbb = Mbb::from_points(&points);
        let len = points.len();
        SubTrajectory {
            id,
            trajectory_id,
            object_id,
            points: Arc::new(points),
            start: 0,
            end: len,
            mbb,
        }
    }

    /// The samples of this sub-trajectory.
    pub fn points(&self) -> &[Point] {
        &self.points[self.start..self.end]
    }

    /// Index of the first point within the parent trajectory's buffer.
    pub fn parent_offset(&self) -> usize {
        self.start
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Always false by construction.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.len() - 1
    }

    /// Iterator over the segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points().windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// First sample time.
    pub fn start_time(&self) -> Timestamp {
        self.points()[0].t
    }

    /// Last sample time.
    pub fn end_time(&self) -> Timestamp {
        self.points()[self.len() - 1].t
    }

    /// Temporal lifespan.
    pub fn lifespan(&self) -> TimeInterval {
        TimeInterval::new(self.start_time(), self.end_time())
    }

    /// Duration.
    pub fn duration(&self) -> Duration {
        self.end_time() - self.start_time()
    }

    /// 3D bounding box.
    pub fn mbb(&self) -> Mbb {
        self.mbb
    }

    /// Total travelled length.
    pub fn length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Interpolated position at `t`; `None` outside the lifespan.
    pub fn position_at(&self, t: Timestamp) -> Option<Point> {
        interpolate::position_at(self.points(), t)
    }

    /// Restricts this sub-trajectory to a temporal window, producing a new,
    /// standalone sub-trajectory (boundary samples are interpolated).
    /// Returns `None` when the overlap is empty or instantaneous.
    pub fn temporal_clip(&self, w: &TimeInterval) -> Option<SubTrajectory> {
        let overlap = w.intersection(&self.lifespan())?;
        if overlap.length() == Duration::ZERO {
            return None;
        }
        let mut pts = Vec::new();
        pts.push(self.position_at(overlap.start)?);
        for p in self.points() {
            if p.t > overlap.start && p.t < overlap.end {
                pts.push(*p);
            }
        }
        let last = self.position_at(overlap.end)?;
        if pts.last().map(|l| l.t != last.t).unwrap_or(true) {
            pts.push(last);
        }
        if pts.len() < 2 {
            return None;
        }
        Some(SubTrajectory::from_points(
            self.id,
            self.trajectory_id,
            self.object_id,
            pts,
        ))
    }
}

impl PartialEq for SubTrajectory {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.points() == other.points()
    }
}

impl fmt::Display for SubTrajectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SubTrajectory {} ({} points, {})",
            self.id,
            self.len(),
            self.lifespan()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::Trajectory;

    fn traj(pts: &[(f64, f64, i64)]) -> Trajectory {
        Trajectory::new(
            1,
            1,
            pts.iter()
                .map(|&(x, y, t)| Point::new(x, y, Timestamp(t)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn shares_points_with_parent() {
        let t = traj(&[
            (0.0, 0.0, 0),
            (1.0, 0.0, 1_000),
            (2.0, 0.0, 2_000),
            (3.0, 0.0, 3_000),
        ]);
        let s = t.sub_trajectory(1, 4).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.parent_offset(), 1);
        assert_eq!(s.points()[0], Point::new(1.0, 0.0, Timestamp(1_000)));
        assert_eq!(s.num_segments(), 2);
        assert_eq!(s.length(), 2.0);
        assert_eq!(s.mbb(), Mbb::from_points(s.points()));
    }

    #[test]
    fn id_encodes_parent_and_offset() {
        let t = traj(&[(0.0, 0.0, 0), (1.0, 0.0, 1_000), (2.0, 0.0, 2_000)]);
        let s = t.sub_trajectory(1, 3).unwrap();
        assert_eq!(s.id, SubTrajectoryId::new(1, 1));
        assert_eq!(s.id.to_string(), "1@1");
    }

    #[test]
    fn temporal_clip_interpolates_boundaries() {
        let t = traj(&[(0.0, 0.0, 0), (10.0, 0.0, 10_000)]);
        let s = t.as_sub_trajectory();
        let c = s
            .temporal_clip(&TimeInterval::new(Timestamp(2_000), Timestamp(6_000)))
            .unwrap();
        assert_eq!(c.points()[0], Point::new(2.0, 0.0, Timestamp(2_000)));
        assert_eq!(c.points()[1], Point::new(6.0, 0.0, Timestamp(6_000)));
        assert!(s
            .temporal_clip(&TimeInterval::new(Timestamp(20_000), Timestamp(30_000)))
            .is_none());
        // Instantaneous overlap yields nothing.
        assert!(s
            .temporal_clip(&TimeInterval::new(Timestamp(10_000), Timestamp(20_000)))
            .is_none());
    }

    #[test]
    fn standalone_construction() {
        let s = SubTrajectory::from_points(
            SubTrajectoryId::new(9, 0),
            9,
            4,
            vec![
                Point::new(0.0, 0.0, Timestamp(0)),
                Point::new(1.0, 1.0, Timestamp(500)),
            ],
        );
        assert_eq!(s.trajectory_id, 9);
        assert_eq!(s.object_id, 4);
        assert_eq!(s.duration(), Duration::from_millis(500));
    }
}
