//! Time axis primitives: [`Timestamp`], [`Duration`] and [`TimeInterval`].
//!
//! All timestamps in the workspace are integral milliseconds since an
//! arbitrary epoch. Integer time keeps the temporal levels of the ReTraTree
//! (chunk boundaries, sub-chunk splits) exact and hashable.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point on the time axis, in milliseconds since the dataset epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

/// A signed length of time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub i64);

impl Timestamp {
    /// The smallest representable timestamp.
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The largest representable timestamp.
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// Creates a timestamp from raw milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Timestamp(ms)
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(s: i64) -> Self {
        Timestamp(s * 1000)
    }

    /// Raw milliseconds since the epoch.
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// The timestamp as fractional seconds (used by distance kernels).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Signed difference `self - other`.
    pub const fn diff(self, other: Timestamp) -> Duration {
        Duration(self.0 - other.0)
    }

    /// Clamps this timestamp into `[lo, hi]`.
    pub fn clamp_to(self, lo: Timestamp, hi: Timestamp) -> Timestamp {
        Timestamp(self.0.clamp(lo.0, hi.0))
    }

    /// The earlier of two timestamps.
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two timestamps.
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Duration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: i64) -> Self {
        Duration(s * 1000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: i64) -> Self {
        Duration(m * 60_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(h: i64) -> Self {
        Duration(h * 3_600_000)
    }

    /// Raw milliseconds.
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Absolute value of the duration.
    pub const fn abs(self) -> Duration {
        Duration(self.0.abs())
    }

    /// True when the duration is zero or negative.
    pub const fn is_empty(self) -> bool {
        self.0 <= 0
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl SubAssign<Duration> for Timestamp {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A half-open-free, *closed* temporal interval `[start, end]`.
///
/// Closed intervals match the semantics of the QuT-Clustering temporal window
/// `W = [Wi, We]` in the paper: a sub-trajectory participates whenever its
/// lifespan intersects `W`, boundaries included.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeInterval {
    /// Inclusive start of the interval.
    pub start: Timestamp,
    /// Inclusive end of the interval.
    pub end: Timestamp,
}

impl TimeInterval {
    /// Creates a new interval, panicking if `start > end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(
            start <= end,
            "TimeInterval start {start} must not exceed end {end}"
        );
        TimeInterval { start, end }
    }

    /// Creates the interval `[start, start + len]`.
    pub fn with_length(start: Timestamp, len: Duration) -> Self {
        TimeInterval::new(start, start + len)
    }

    /// An interval spanning the entire time axis.
    pub const fn everything() -> Self {
        TimeInterval {
            start: Timestamp::MIN,
            end: Timestamp::MAX,
        }
    }

    /// Length of the interval.
    pub fn length(&self) -> Duration {
        self.end - self.start
    }

    /// True if `t` lies inside the interval (boundaries included).
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// True if `other` is fully contained in `self`.
    pub fn contains_interval(&self, other: &TimeInterval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// True if the two intervals share at least one instant.
    pub fn intersects(&self, other: &TimeInterval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The overlapping part of two intervals, if any.
    pub fn intersection(&self, other: &TimeInterval) -> Option<TimeInterval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start <= end {
            Some(TimeInterval { start, end })
        } else {
            None
        }
    }

    /// The smallest interval covering both inputs.
    pub fn union(&self, other: &TimeInterval) -> TimeInterval {
        TimeInterval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Temporal gap between two disjoint intervals (zero when they intersect).
    pub fn gap(&self, other: &TimeInterval) -> Duration {
        if self.intersects(other) {
            Duration::ZERO
        } else if self.end < other.start {
            other.start - self.end
        } else {
            self.start - other.end
        }
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic_round_trips() {
        let t = Timestamp::from_secs(10);
        let d = Duration::from_secs(5);
        assert_eq!((t + d).millis(), 15_000);
        assert_eq!((t - d).millis(), 5_000);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn duration_constructors_are_consistent() {
        assert_eq!(Duration::from_hours(1), Duration::from_mins(60));
        assert_eq!(Duration::from_mins(1), Duration::from_secs(60));
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1000));
    }

    #[test]
    fn interval_containment_and_intersection() {
        let a = TimeInterval::new(Timestamp(0), Timestamp(100));
        let b = TimeInterval::new(Timestamp(50), Timestamp(150));
        let c = TimeInterval::new(Timestamp(200), Timestamp(300));

        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(
            a.intersection(&b),
            Some(TimeInterval::new(Timestamp(50), Timestamp(100)))
        );
        assert_eq!(a.intersection(&c), None);
        assert!(a.contains(Timestamp(100)));
        assert!(!a.contains(Timestamp(101)));
        assert!(a.contains_interval(&TimeInterval::new(Timestamp(10), Timestamp(90))));
        assert!(!a.contains_interval(&b));
    }

    #[test]
    fn interval_union_and_gap() {
        let a = TimeInterval::new(Timestamp(0), Timestamp(100));
        let c = TimeInterval::new(Timestamp(200), Timestamp(300));
        assert_eq!(a.union(&c), TimeInterval::new(Timestamp(0), Timestamp(300)));
        assert_eq!(a.gap(&c), Duration(100));
        assert_eq!(c.gap(&a), Duration(100));
        assert_eq!(a.gap(&a), Duration::ZERO);
    }

    #[test]
    #[should_panic]
    fn interval_rejects_inverted_bounds() {
        let _ = TimeInterval::new(Timestamp(10), Timestamp(0));
    }

    #[test]
    fn boundary_touching_intervals_intersect() {
        let a = TimeInterval::new(Timestamp(0), Timestamp(100));
        let b = TimeInterval::new(Timestamp(100), Timestamp(200));
        assert!(a.intersects(&b));
        assert_eq!(
            a.intersection(&b),
            Some(TimeInterval::new(Timestamp(100), Timestamp(100)))
        );
    }
}
