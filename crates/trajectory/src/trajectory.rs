//! Trajectories: the complete movement history of one object.

use crate::error::TrajectoryError;
use crate::interpolate;
use crate::mbb::Mbb;
use crate::point::Point;
use crate::segment::Segment;
use crate::subtrajectory::{SubTrajectory, SubTrajectoryId};
use crate::time::{Duration, TimeInterval, Timestamp};
use crate::Result;
use std::fmt;
use std::sync::Arc;

/// Identifier of a moving object (vessel, aircraft, vehicle, …).
pub type ObjectId = u64;

/// Identifier of a trajectory within a dataset.
pub type TrajectoryId = u64;

/// The movement history of a single object: a time-ordered sequence of
/// samples with strictly increasing timestamps.
///
/// Trajectories are immutable after construction; the points are stored in an
/// `Arc` so sub-trajectories can share them without copying.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Dataset-unique identifier of this trajectory.
    pub id: TrajectoryId,
    /// The moving object this trajectory belongs to.
    pub object_id: ObjectId,
    points: Arc<Vec<Point>>,
    mbb: Mbb,
}

impl Trajectory {
    /// Builds a trajectory, validating monotonic time and finite coordinates.
    pub fn new(id: TrajectoryId, object_id: ObjectId, points: Vec<Point>) -> Result<Self> {
        if points.len() < 2 {
            return Err(TrajectoryError::TooFewPoints { got: points.len() });
        }
        for (i, p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(TrajectoryError::NonFiniteCoordinate { index: i });
            }
            if i > 0 && p.t <= points[i - 1].t {
                return Err(TrajectoryError::NonMonotonicTime {
                    index: i,
                    previous: points[i - 1].t,
                    current: p.t,
                });
            }
        }
        let mbb = Mbb::from_points(&points);
        Ok(Trajectory {
            id,
            object_id,
            points: Arc::new(points),
            mbb,
        })
    }

    /// The raw samples.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Shared handle to the samples (used by [`SubTrajectory`]).
    pub fn shared_points(&self) -> Arc<Vec<Point>> {
        Arc::clone(&self.points)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false: construction requires at least two samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of segments (`len() - 1`).
    pub fn num_segments(&self) -> usize {
        self.points.len() - 1
    }

    /// The `i`-th segment.
    pub fn segment(&self, i: usize) -> Segment {
        Segment::new(self.points[i], self.points[i + 1])
    }

    /// Iterator over all segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// First sample time.
    pub fn start_time(&self) -> Timestamp {
        self.points[0].t
    }

    /// Last sample time.
    pub fn end_time(&self) -> Timestamp {
        self.points[self.points.len() - 1].t
    }

    /// The trajectory's lifespan.
    pub fn lifespan(&self) -> TimeInterval {
        TimeInterval::new(self.start_time(), self.end_time())
    }

    /// Duration of the trajectory.
    pub fn duration(&self) -> Duration {
        self.end_time() - self.start_time()
    }

    /// The 3D bounding box of all samples.
    pub fn mbb(&self) -> Mbb {
        self.mbb
    }

    /// Total travelled spatial length.
    pub fn length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Interpolated position at time `t`; `None` outside the lifespan.
    pub fn position_at(&self, t: Timestamp) -> Option<Point> {
        interpolate::position_at(&self.points, t)
    }

    /// Restricts the trajectory to the temporal window `w`, interpolating new
    /// boundary samples where the window cuts a segment.
    ///
    /// Returns [`TrajectoryError::EmptySlice`] when the window does not
    /// overlap the lifespan or the overlap is a single instant.
    pub fn temporal_slice(&self, w: &TimeInterval) -> Result<Trajectory> {
        let overlap = w
            .intersection(&self.lifespan())
            .ok_or(TrajectoryError::EmptySlice)?;
        if overlap.length() == Duration::ZERO {
            return Err(TrajectoryError::EmptySlice);
        }
        let mut pts: Vec<Point> = Vec::new();
        if let Some(p) = self.position_at(overlap.start) {
            pts.push(p);
        }
        for p in self.points.iter() {
            if p.t > overlap.start && p.t < overlap.end {
                pts.push(*p);
            }
        }
        if let Some(p) = self.position_at(overlap.end) {
            // Avoid duplicating an existing boundary sample.
            if pts.last().map(|l| l.t != p.t).unwrap_or(true) {
                pts.push(p);
            }
        }
        if pts.len() < 2 {
            return Err(TrajectoryError::EmptySlice);
        }
        Trajectory::new(self.id, self.object_id, pts)
    }

    /// Resamples the trajectory at a fixed period, producing synchronized
    /// samples that simplify cross-trajectory distances.
    pub fn resample(&self, period: Duration) -> Result<Trajectory> {
        assert!(period.millis() > 0, "resample period must be positive");
        let mut pts = Vec::new();
        let mut t = self.start_time();
        while t < self.end_time() {
            if let Some(p) = self.position_at(t) {
                pts.push(p);
            }
            t += period;
        }
        if let Some(p) = self.position_at(self.end_time()) {
            if pts.last().map(|l| l.t != p.t).unwrap_or(true) {
                pts.push(p);
            }
        }
        if pts.len() < 2 {
            return Err(TrajectoryError::TooFewPoints { got: pts.len() });
        }
        Trajectory::new(self.id, self.object_id, pts)
    }

    /// Extracts the sub-trajectory covering points `start..end` (end
    /// exclusive, at least two points).
    pub fn sub_trajectory(&self, start: usize, end: usize) -> Result<SubTrajectory> {
        if start + 2 > end || end > self.points.len() {
            return Err(TrajectoryError::InvalidRange {
                start,
                end,
                len: self.points.len(),
            });
        }
        Ok(SubTrajectory::from_shared(
            SubTrajectoryId::new(self.id, start as u32),
            self.id,
            self.object_id,
            self.shared_points(),
            start,
            end,
        ))
    }

    /// The whole trajectory viewed as a single sub-trajectory.
    pub fn as_sub_trajectory(&self) -> SubTrajectory {
        self.sub_trajectory(0, self.points.len())
            .expect("a valid trajectory is always a valid sub-trajectory")
    }

    /// Splits the trajectory into sub-trajectories at the given point indices
    /// (each index becomes the first point of the next sub-trajectory, and is
    /// shared with the previous one so that no segment is lost).
    ///
    /// Out-of-range, duplicate, and boundary indices are ignored.
    pub fn split_at(&self, cut_points: &[usize]) -> Vec<SubTrajectory> {
        let mut cuts: Vec<usize> = cut_points
            .iter()
            .copied()
            .filter(|&i| i > 0 && i + 1 < self.points.len())
            .collect();
        cuts.sort_unstable();
        cuts.dedup();

        let mut result = Vec::with_capacity(cuts.len() + 1);
        let mut begin = 0usize;
        for &c in &cuts {
            // A cut at index c ends the current piece at point c (inclusive).
            result.push(
                self.sub_trajectory(begin, c + 1)
                    .expect("cut indices validated above"),
            );
            begin = c;
        }
        result.push(
            self.sub_trajectory(begin, self.points.len())
                .expect("tail range is always valid"),
        );
        result
    }
}

impl fmt::Display for Trajectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Trajectory#{} (object {}, {} points, {})",
            self.id,
            self.object_id,
            self.len(),
            self.lifespan()
        )
    }
}

/// Convenience builder collecting samples before validation.
#[derive(Debug, Default, Clone)]
pub struct TrajectoryBuilder {
    id: TrajectoryId,
    object_id: ObjectId,
    points: Vec<Point>,
}

impl TrajectoryBuilder {
    /// Starts a builder for trajectory `id` of object `object_id`.
    pub fn new(id: TrajectoryId, object_id: ObjectId) -> Self {
        TrajectoryBuilder {
            id,
            object_id,
            points: Vec::new(),
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, x: f64, y: f64, t: Timestamp) -> &mut Self {
        self.points.push(Point::new(x, y, t));
        self
    }

    /// Appends an already-built point.
    pub fn push_point(&mut self, p: Point) -> &mut Self {
        self.points.push(p);
        self
    }

    /// Number of samples collected so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Validates and builds the trajectory.
    pub fn build(self) -> Result<Trajectory> {
        Trajectory::new(self.id, self.object_id, self.points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(id: u64, pts: &[(f64, f64, i64)]) -> Trajectory {
        Trajectory::new(
            id,
            id,
            pts.iter()
                .map(|&(x, y, t)| Point::new(x, y, Timestamp(t)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_input() {
        assert!(matches!(
            Trajectory::new(1, 1, vec![Point::new(0.0, 0.0, Timestamp(0))]),
            Err(TrajectoryError::TooFewPoints { got: 1 })
        ));
        assert!(matches!(
            Trajectory::new(
                1,
                1,
                vec![
                    Point::new(0.0, 0.0, Timestamp(10)),
                    Point::new(1.0, 0.0, Timestamp(5)),
                ],
            ),
            Err(TrajectoryError::NonMonotonicTime { index: 1, .. })
        ));
        assert!(matches!(
            Trajectory::new(
                1,
                1,
                vec![
                    Point::new(0.0, 0.0, Timestamp(0)),
                    Point::new(f64::NAN, 0.0, Timestamp(5)),
                ],
            ),
            Err(TrajectoryError::NonFiniteCoordinate { index: 1 })
        ));
    }

    #[test]
    fn basic_accessors() {
        let t = traj(7, &[(0.0, 0.0, 0), (3.0, 4.0, 1_000), (3.0, 4.0, 2_000)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.num_segments(), 2);
        assert_eq!(t.length(), 5.0);
        assert_eq!(t.duration(), Duration::from_secs(2));
        assert_eq!(
            t.lifespan(),
            TimeInterval::new(Timestamp(0), Timestamp(2_000))
        );
        assert_eq!(t.segment(0).length(), 5.0);
        assert_eq!(t.segments().count(), 2);
    }

    #[test]
    fn position_interpolates_within_lifespan() {
        let t = traj(1, &[(0.0, 0.0, 0), (10.0, 0.0, 10_000)]);
        assert_eq!(
            t.position_at(Timestamp(2_500)),
            Some(Point::new(2.5, 0.0, Timestamp(2_500)))
        );
        assert_eq!(t.position_at(Timestamp(-1)), None);
        assert_eq!(t.position_at(Timestamp(10_001)), None);
    }

    #[test]
    fn temporal_slice_cuts_and_interpolates() {
        let t = traj(
            1,
            &[(0.0, 0.0, 0), (10.0, 0.0, 10_000), (10.0, 10.0, 20_000)],
        );
        let s = t
            .temporal_slice(&TimeInterval::new(Timestamp(5_000), Timestamp(15_000)))
            .unwrap();
        assert_eq!(
            s.points().first().unwrap(),
            &Point::new(5.0, 0.0, Timestamp(5_000))
        );
        assert_eq!(
            s.points().last().unwrap(),
            &Point::new(10.0, 5.0, Timestamp(15_000))
        );
        assert_eq!(s.len(), 3);

        assert!(t
            .temporal_slice(&TimeInterval::new(Timestamp(30_000), Timestamp(40_000)))
            .is_err());
    }

    #[test]
    fn resample_produces_uniform_period() {
        let t = traj(1, &[(0.0, 0.0, 0), (10.0, 0.0, 10_000)]);
        let r = t.resample(Duration::from_secs(2)).unwrap();
        let times: Vec<i64> = r.points().iter().map(|p| p.t.millis()).collect();
        assert_eq!(times, vec![0, 2_000, 4_000, 6_000, 8_000, 10_000]);
    }

    #[test]
    fn split_at_preserves_every_segment() {
        let t = traj(
            1,
            &[
                (0.0, 0.0, 0),
                (1.0, 0.0, 1_000),
                (2.0, 0.0, 2_000),
                (3.0, 0.0, 3_000),
                (4.0, 0.0, 4_000),
            ],
        );
        let parts = t.split_at(&[2]);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].points().len(), 3);
        assert_eq!(parts[1].points().len(), 3);
        // Shared cut point: total segments = original segments.
        let total_segments: usize = parts.iter().map(|s| s.points().len() - 1).sum();
        assert_eq!(total_segments, t.num_segments());

        // Degenerate cut indices are ignored.
        let same = t.split_at(&[0, 4, 99]);
        assert_eq!(same.len(), 1);
        assert_eq!(same[0].points().len(), t.len());
    }

    #[test]
    fn builder_round_trips() {
        let mut b = TrajectoryBuilder::new(5, 9);
        b.push(0.0, 0.0, Timestamp(0))
            .push(1.0, 1.0, Timestamp(1_000));
        assert_eq!(b.len(), 2);
        let t = b.build().unwrap();
        assert_eq!(t.id, 5);
        assert_eq!(t.object_id, 9);
        assert_eq!(t.len(), 2);
    }
}
