//! Comparison of two clustering runs (Fig. 3): "cluster representatives from
//! two different runs of S2T-Clustering are visually compared by means of a
//! 3D display". The data-side equivalent pairs up representatives of the two
//! runs by synchronized distance and reports which clusters are common and
//! which are unique to one run.

use hermes_s2t::ClusteringResult;
use hermes_trajectory::{hausdorff_distance, sub_trajectory_distance};

/// Outcome of comparing two clustering runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunComparison {
    /// Pairs `(cluster id in A, cluster id in B, distance)` of representatives
    /// matched within the tolerance.
    pub matched: Vec<(usize, usize, f64)>,
    /// Cluster ids present only in run A.
    pub only_in_a: Vec<usize>,
    /// Cluster ids present only in run B.
    pub only_in_b: Vec<usize>,
}

impl RunComparison {
    /// Jaccard-style agreement between the two runs: matched clusters over
    /// all distinct clusters.
    pub fn agreement(&self) -> f64 {
        let total = self.matched.len() + self.only_in_a.len() + self.only_in_b.len();
        if total == 0 {
            1.0
        } else {
            self.matched.len() as f64 / total as f64
        }
    }
}

/// Greedily matches representatives of two runs: each cluster of `a` is
/// paired with the closest unmatched cluster of `b` whose representative
/// distance is at most `tolerance`.
pub fn compare_runs(a: &ClusteringResult, b: &ClusteringResult, tolerance: f64) -> RunComparison {
    let dist = |i: usize, j: usize| -> f64 {
        let ra = &a.clusters[i].representative;
        let rb = &b.clusters[j].representative;
        match sub_trajectory_distance(ra, rb) {
            Some(d) => d,
            None => hausdorff_distance(ra.points(), rb.points()),
        }
    };

    let mut matched = Vec::new();
    let mut used_b = vec![false; b.clusters.len()];
    for i in 0..a.clusters.len() {
        let mut best: Option<(usize, f64)> = None;
        for (j, used) in used_b.iter().enumerate() {
            if *used {
                continue;
            }
            let d = dist(i, j);
            if d <= tolerance && best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((j, d));
            }
        }
        if let Some((j, d)) = best {
            used_b[j] = true;
            matched.push((i, j, d));
        }
    }
    let matched_a: Vec<usize> = matched.iter().map(|m| m.0).collect();
    let only_in_a = (0..a.clusters.len())
        .filter(|i| !matched_a.contains(i))
        .collect();
    let only_in_b = (0..b.clusters.len()).filter(|j| !used_b[*j]).collect();
    RunComparison {
        matched,
        only_in_a,
        only_in_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_s2t::Cluster;
    use hermes_trajectory::{Point, SubTrajectory, SubTrajectoryId, Timestamp};

    fn sub(id: u64, y: f64) -> SubTrajectory {
        SubTrajectory::from_points(
            SubTrajectoryId::new(id, 0),
            id,
            id,
            (0..10)
                .map(|i| Point::new(i as f64 * 100.0, y, Timestamp(i as i64 * 60_000)))
                .collect(),
        )
    }

    fn run(ys: &[f64]) -> ClusteringResult {
        ClusteringResult {
            clusters: ys
                .iter()
                .enumerate()
                .map(|(i, &y)| Cluster {
                    id: i,
                    representative: sub(i as u64, y),
                    representative_vote: 1.0,
                    members: vec![],
                    member_distances: vec![],
                })
                .collect(),
            outliers: vec![],
        }
    }

    #[test]
    fn identical_runs_fully_agree() {
        let a = run(&[0.0, 1_000.0]);
        let cmp = compare_runs(&a, &a, 50.0);
        assert_eq!(cmp.matched.len(), 2);
        assert!(cmp.only_in_a.is_empty() && cmp.only_in_b.is_empty());
        assert_eq!(cmp.agreement(), 1.0);
    }

    #[test]
    fn extra_cluster_in_one_run_is_reported() {
        let a = run(&[0.0, 1_000.0]);
        let b = run(&[10.0, 1_010.0, 50_000.0]);
        let cmp = compare_runs(&a, &b, 50.0);
        assert_eq!(cmp.matched.len(), 2);
        assert!(cmp.only_in_a.is_empty());
        assert_eq!(cmp.only_in_b, vec![2]);
        assert!((cmp.agreement() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tolerance_bounds_matching() {
        let a = run(&[0.0]);
        let b = run(&[200.0]);
        let strict = compare_runs(&a, &b, 50.0);
        assert!(strict.matched.is_empty());
        assert_eq!(strict.agreement(), 0.0);
        let loose = compare_runs(&a, &b, 500.0);
        assert_eq!(loose.matched.len(), 1);
    }

    #[test]
    fn each_cluster_matches_at_most_once() {
        let a = run(&[0.0, 5.0]);
        let b = run(&[2.0]);
        let cmp = compare_runs(&a, &b, 100.0);
        assert_eq!(cmp.matched.len(), 1);
        assert_eq!(cmp.only_in_a.len(), 1);
        assert!(cmp.only_in_b.is_empty());
    }

    #[test]
    fn empty_runs_agree_trivially() {
        let cmp = compare_runs(
            &ClusteringResult::default(),
            &ClusteringResult::default(),
            10.0,
        );
        assert_eq!(cmp.agreement(), 1.0);
    }
}
