//! Space–time cube export (Fig. 1 bottom, Fig. 3): 3D polylines — x, y and
//! time as the vertical axis — for each cluster member, as CSV consumable by
//! external 3D viewers.

use hermes_s2t::ClusteringResult;
use std::fmt::Write as _;

/// Exports every sub-trajectory of the result as space–time cube rows:
/// `run,kind,cluster_id,trajectory_id,x,y,t_ms`. The `run` label lets two
/// results (e.g. the two S2T runs of Fig. 3) share one file.
pub fn space_time_cube_csv(run: &str, result: &ClusteringResult) -> String {
    let mut out = String::from("run,kind,cluster_id,trajectory_id,x,y,t_ms\n");
    append_space_time_cube(&mut out, run, result);
    out
}

/// Appends the rows of `result` to an existing export (no header).
pub fn append_space_time_cube(out: &mut String, run: &str, result: &ClusteringResult) {
    let mut rows = |kind: &str, cluster: Option<usize>, s: &hermes_trajectory::SubTrajectory| {
        let cid = cluster.map(|c| c.to_string()).unwrap_or_default();
        for p in s.points() {
            let _ = writeln!(
                out,
                "{run},{kind},{cid},{},{:.3},{:.3},{}",
                s.trajectory_id,
                p.x,
                p.y,
                p.t.millis()
            );
        }
    };
    for c in &result.clusters {
        rows("representative", Some(c.id), &c.representative);
        for m in &c.members {
            rows("member", Some(c.id), m);
        }
    }
    for o in &result.outliers {
        rows("outlier", None, o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_s2t::Cluster;
    use hermes_trajectory::{Point, SubTrajectory, SubTrajectoryId, Timestamp};

    fn sub(id: u64) -> SubTrajectory {
        SubTrajectory::from_points(
            SubTrajectoryId::new(id, 0),
            id,
            id,
            (0..3)
                .map(|i| Point::new(i as f64, id as f64, Timestamp(i as i64 * 1_000)))
                .collect(),
        )
    }

    fn result() -> ClusteringResult {
        ClusteringResult {
            clusters: vec![Cluster {
                id: 0,
                representative: sub(1),
                representative_vote: 1.0,
                members: vec![sub(2)],
                member_distances: vec![1.0],
            }],
            outliers: vec![sub(7)],
        }
    }

    #[test]
    fn one_row_per_point_with_run_label() {
        let csv = space_time_cube_csv("run-A", &result());
        assert_eq!(csv.lines().count(), 1 + 3 * 3);
        assert!(csv.lines().skip(1).all(|l| l.starts_with("run-A,")));
        assert!(csv.contains("run-A,outlier,,7,"));
    }

    #[test]
    fn two_runs_can_share_a_file() {
        let mut csv = space_time_cube_csv("run-A", &result());
        append_space_time_cube(&mut csv, "run-B", &result());
        let a = csv.lines().filter(|l| l.starts_with("run-A,")).count();
        let b = csv.lines().filter(|l| l.starts_with("run-B,")).count();
        assert_eq!(a, b);
        assert_eq!(csv.lines().count(), 1 + a + b);
    }
}
