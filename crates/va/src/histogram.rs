//! The time histogram of Fig. 1 (middle): "the existence times of the
//! clusters and the changes of their cardinality over time can be explored
//! using a time histogram, in which bars are divided into segments painted in
//! the same colors as the cluster members in the map".

use hermes_s2t::ClusteringResult;
use hermes_trajectory::{Duration, TimeInterval, Timestamp};
use std::fmt::Write as _;

/// A stacked time histogram: for each time bucket, how many members of each
/// cluster (and how many outliers) are alive.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeHistogram {
    /// Start of each bucket.
    pub bucket_starts: Vec<Timestamp>,
    /// Bucket width.
    pub bucket_width: Duration,
    /// `counts[cluster][bucket]` = number of that cluster's sub-trajectories
    /// alive during the bucket.
    pub counts: Vec<Vec<usize>>,
    /// Outliers alive per bucket.
    pub outlier_counts: Vec<usize>,
}

impl TimeHistogram {
    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.bucket_starts.len()
    }

    /// Total cardinality (all clusters + outliers) per bucket.
    pub fn totals(&self) -> Vec<usize> {
        (0..self.num_buckets())
            .map(|b| self.counts.iter().map(|c| c[b]).sum::<usize>() + self.outlier_counts[b])
            .collect()
    }

    /// The bucket with the highest total cardinality, if any.
    pub fn peak_bucket(&self) -> Option<(Timestamp, usize)> {
        self.totals()
            .into_iter()
            .enumerate()
            .max_by_key(|&(_, t)| t)
            .map(|(i, t)| (self.bucket_starts[i], t))
    }

    /// Renders the histogram as CSV: `bucket_start_ms,cluster_id,count`
    /// (outliers use the cluster id `-1`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bucket_start_ms,cluster_id,count\n");
        for (b, start) in self.bucket_starts.iter().enumerate() {
            for (c, counts) in self.counts.iter().enumerate() {
                let _ = writeln!(out, "{},{},{}", start.millis(), c, counts[b]);
            }
            let _ = writeln!(out, "{},-1,{}", start.millis(), self.outlier_counts[b]);
        }
        out
    }
}

/// Builds the stacked time histogram of a clustering result.
pub fn time_histogram(result: &ClusteringResult, bucket_width: Duration) -> TimeHistogram {
    assert!(bucket_width.millis() > 0, "bucket width must be positive");
    // Overall extent.
    let mut extent: Option<TimeInterval> = None;
    let mut expand = |span: TimeInterval| {
        extent = Some(match extent {
            None => span,
            Some(e) => e.union(&span),
        });
    };
    for c in &result.clusters {
        expand(c.lifespan());
    }
    for o in &result.outliers {
        expand(o.lifespan());
    }
    let Some(extent) = extent else {
        return TimeHistogram {
            bucket_starts: Vec::new(),
            bucket_width,
            counts: Vec::new(),
            outlier_counts: Vec::new(),
        };
    };

    let width = bucket_width.millis();
    let first = extent.start.millis().div_euclid(width) * width;
    let num_buckets = ((extent.end.millis() - first) / width + 1) as usize;
    let bucket_starts: Vec<Timestamp> = (0..num_buckets)
        .map(|i| Timestamp(first + i as i64 * width))
        .collect();
    let bucket_of = |interval: TimeInterval| -> (usize, usize) {
        let lo = ((interval.start.millis() - first) / width) as usize;
        let hi = ((interval.end.millis() - first) / width) as usize;
        (lo, hi.min(num_buckets - 1))
    };

    let mut counts = vec![vec![0usize; num_buckets]; result.clusters.len()];
    for (ci, c) in result.clusters.iter().enumerate() {
        for s in std::iter::once(&c.representative).chain(c.members.iter()) {
            let (lo, hi) = bucket_of(s.lifespan());
            for slot in &mut counts[ci][lo..=hi] {
                *slot += 1;
            }
        }
    }
    let mut outlier_counts = vec![0usize; num_buckets];
    for o in &result.outliers {
        let (lo, hi) = bucket_of(o.lifespan());
        for slot in &mut outlier_counts[lo..=hi] {
            *slot += 1;
        }
    }

    TimeHistogram {
        bucket_starts,
        bucket_width,
        counts,
        outlier_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_s2t::Cluster;
    use hermes_trajectory::{Point, SubTrajectory, SubTrajectoryId};

    fn sub(id: u64, t0: i64, dur_ms: i64) -> SubTrajectory {
        SubTrajectory::from_points(
            SubTrajectoryId::new(id, 0),
            id,
            id,
            vec![
                Point::new(0.0, 0.0, Timestamp(t0)),
                Point::new(100.0, 0.0, Timestamp(t0 + dur_ms)),
            ],
        )
    }

    fn result() -> ClusteringResult {
        ClusteringResult {
            clusters: vec![
                Cluster {
                    id: 0,
                    representative: sub(1, 0, 3_600_000),
                    representative_vote: 1.0,
                    members: vec![sub(2, 0, 3_600_000), sub(3, 1_800_000, 3_600_000)],
                    member_distances: vec![1.0, 1.0],
                },
                Cluster {
                    id: 1,
                    representative: sub(4, 7_200_000, 3_600_000),
                    representative_vote: 1.0,
                    members: vec![sub(5, 7_200_000, 3_600_000)],
                    member_distances: vec![1.0],
                },
            ],
            outliers: vec![sub(9, 0, 10_800_000)],
        }
    }

    #[test]
    fn buckets_cover_the_extent_and_counts_track_lifespans() {
        let h = time_histogram(&result(), Duration::from_hours(1));
        assert_eq!(h.num_buckets(), 4); // hours 0..3 inclusive
                                        // Cluster 0 is alive in hours 0 and 1 (the late member starts at 0.5 h).
        assert_eq!(h.counts[0][0], 3);
        assert!(h.counts[0][1] >= 1);
        assert_eq!(h.counts[0][3], 0);
        // Cluster 1 only in hours 2 and 3.
        assert_eq!(h.counts[1][0], 0);
        assert_eq!(h.counts[1][2], 2);
        // The outlier spans everything.
        assert!(h.outlier_counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn totals_and_peak() {
        let h = time_histogram(&result(), Duration::from_hours(1));
        let totals = h.totals();
        assert_eq!(totals.len(), 4);
        let (peak_start, peak) = h.peak_bucket().unwrap();
        assert_eq!(peak, *totals.iter().max().unwrap());
        assert!(h.bucket_starts.contains(&peak_start));
    }

    #[test]
    fn csv_shape() {
        let h = time_histogram(&result(), Duration::from_hours(1));
        let csv = h.to_csv();
        // header + (2 clusters + outlier row) per bucket
        assert_eq!(csv.lines().count(), 1 + 4 * 3);
        assert!(csv.lines().nth(1).unwrap().starts_with("0,0,"));
    }

    #[test]
    fn empty_result_gives_empty_histogram() {
        let h = time_histogram(&ClusteringResult::default(), Duration::from_hours(1));
        assert_eq!(h.num_buckets(), 0);
        assert!(h.peak_bucket().is_none());
        assert_eq!(h.to_csv().lines().count(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_bucket_width_is_rejected() {
        let _ = time_histogram(&result(), Duration::ZERO);
    }
}
