//! Holding-pattern discovery (Fig. 4): "the user experiences in discovering
//! and visualizing other interesting patterns, such as the holding patterns
//! typically performed by aircrafts as they approach to their destination".
//!
//! A holding pattern shows up as a sub-trajectory whose path keeps turning
//! back on itself: long travelled length over a short displacement (high
//! sinuosity) combined with sustained heading change. The detector flags
//! cluster representatives and outliers that look like racetrack loops.

use hermes_s2t::ClusteringResult;
use hermes_trajectory::{SubTrajectory, TrajectoryId};
use std::f64::consts::PI;

/// A detected holding pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct HoldingPattern {
    /// Trajectory exhibiting the pattern.
    pub trajectory_id: TrajectoryId,
    /// Cluster the sub-trajectory belongs to (None for outliers).
    pub cluster_id: Option<usize>,
    /// Ratio of travelled length to displacement.
    pub sinuosity: f64,
    /// Total absolute heading change in full turns (2π rad = 1 turn).
    pub total_turns: f64,
}

fn sinuosity(sub: &SubTrajectory) -> f64 {
    let length: f64 = sub.segments().map(|s| s.length()).sum();
    let pts = sub.points();
    let displacement = pts[0].spatial_distance(&pts[pts.len() - 1]);
    if displacement <= f64::EPSILON {
        if length > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    } else {
        length / displacement
    }
}

fn total_turns(sub: &SubTrajectory) -> f64 {
    let headings: Vec<f64> = sub.segments().map(|s| s.heading()).collect();
    let mut total = 0.0;
    for w in headings.windows(2) {
        let mut d = w[1] - w[0];
        while d > PI {
            d -= 2.0 * PI;
        }
        while d < -PI {
            d += 2.0 * PI;
        }
        total += d.abs();
    }
    total / (2.0 * PI)
}

/// Scans a sub-trajectory for holding behaviour.
fn check(
    sub: &SubTrajectory,
    cluster_id: Option<usize>,
    min_sinuosity: f64,
    min_turns: f64,
) -> Option<HoldingPattern> {
    let s = sinuosity(sub);
    let t = total_turns(sub);
    if s >= min_sinuosity && t >= min_turns {
        Some(HoldingPattern {
            trajectory_id: sub.trajectory_id,
            cluster_id,
            sinuosity: s,
            total_turns: t,
        })
    } else {
        None
    }
}

/// Detects holding patterns among the representatives, members and outliers
/// of a clustering result.
///
/// `min_sinuosity` is the minimum length/displacement ratio (a straight
/// approach is ≈1, one racetrack loop pushes it well above 2) and
/// `min_turns` the minimum number of full turns flown.
pub fn detect_holding_patterns(
    result: &ClusteringResult,
    min_sinuosity: f64,
    min_turns: f64,
) -> Vec<HoldingPattern> {
    let mut out = Vec::new();
    for c in &result.clusters {
        for s in std::iter::once(&c.representative).chain(c.members.iter()) {
            if let Some(h) = check(s, Some(c.id), min_sinuosity, min_turns) {
                out.push(h);
            }
        }
    }
    for o in &result.outliers {
        if let Some(h) = check(o, None, min_sinuosity, min_turns) {
            out.push(h);
        }
    }
    // De-duplicate per trajectory, keeping the strongest evidence.
    out.sort_by(|a, b| {
        a.trajectory_id.cmp(&b.trajectory_id).then(
            b.total_turns
                .partial_cmp(&a.total_turns)
                .unwrap_or(std::cmp::Ordering::Equal),
        )
    });
    out.dedup_by_key(|h| h.trajectory_id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_s2t::Cluster;
    use hermes_trajectory::{Point, SubTrajectoryId, Timestamp};

    fn straight(id: u64) -> SubTrajectory {
        SubTrajectory::from_points(
            SubTrajectoryId::new(id, 0),
            id,
            id,
            (0..20)
                .map(|i| Point::new(i as f64 * 1_000.0, 0.0, Timestamp(i as i64 * 60_000)))
                .collect(),
        )
    }

    /// A racetrack: approach, two full loops, then continue.
    fn holding(id: u64) -> SubTrajectory {
        let mut pts = Vec::new();
        let mut t = 0i64;
        for i in 0..5 {
            pts.push(Point::new(i as f64 * 1_000.0, 0.0, Timestamp(t)));
            t += 60_000;
        }
        let (cx, cy, r) = (5_000.0, 0.0, 1_500.0);
        for loopn in 0..2 {
            for s in 0..12 {
                let a = 2.0 * PI * (loopn * 12 + s) as f64 / 12.0;
                pts.push(Point::new(cx + r * a.cos(), cy + r * a.sin(), Timestamp(t)));
                t += 30_000;
            }
        }
        for i in 0..5 {
            pts.push(Point::new(6_500.0 + i as f64 * 1_000.0, 0.0, Timestamp(t)));
            t += 60_000;
        }
        SubTrajectory::from_points(SubTrajectoryId::new(id, 0), id, id, pts)
    }

    fn result() -> ClusteringResult {
        ClusteringResult {
            clusters: vec![Cluster {
                id: 0,
                representative: straight(1),
                representative_vote: 1.0,
                members: vec![holding(2), straight(3)],
                member_distances: vec![1.0, 1.0],
            }],
            outliers: vec![holding(9)],
        }
    }

    #[test]
    fn detects_loops_and_ignores_straight_approaches() {
        let found = detect_holding_patterns(&result(), 1.5, 1.0);
        let ids: Vec<u64> = found.iter().map(|h| h.trajectory_id).collect();
        assert_eq!(ids, vec![2, 9]);
        assert_eq!(found[0].cluster_id, Some(0));
        assert_eq!(found[1].cluster_id, None);
        assert!(
            found[0].total_turns >= 1.5,
            "two loops ≈ 2 turns, got {}",
            found[0].total_turns
        );
        assert!(found[0].sinuosity > 1.5);
    }

    #[test]
    fn thresholds_filter_out_weak_evidence() {
        let found = detect_holding_patterns(&result(), 10.0, 10.0);
        assert!(found.is_empty());
    }

    #[test]
    fn empty_result_finds_nothing() {
        assert!(detect_holding_patterns(&ClusteringResult::default(), 1.5, 1.0).is_empty());
    }
}
