//! # hermes-va
//!
//! Data-side reproduction of the Visual Analytics views of the demo (Fig. 1,
//! Fig. 3, Fig. 4). The interactive V-Analytics GUI is out of scope; every
//! figure, however, is backed by a derived dataset, and this crate
//! regenerates those datasets and renders them to SVG/CSV:
//!
//! * [`map`] — the map display: cluster members projected on the x/y plane,
//!   colour-coded by cluster (Fig. 1 top), as SVG and CSV,
//! * [`histogram`] — the time histogram of cluster cardinality over time
//!   (Fig. 1 middle),
//! * [`cube`] — the space–time cube: 3D polylines (x, y, t) per cluster
//!   member (Fig. 1 bottom / Fig. 3), exported as CSV for external 3D tools,
//! * [`compare`] — side-by-side comparison of two clustering runs (Fig. 3),
//! * [`holding`] — detection of holding patterns among cluster
//!   representatives (Fig. 4).
//!
//! **Layer:** a read-only consumer of clustering results, above the engine;
//! nothing depends on it. See `docs/ARCHITECTURE.md` for the layer map.

pub mod compare;
pub mod cube;
pub mod histogram;
pub mod holding;
pub mod map;

pub use compare::{compare_runs, RunComparison};
pub use cube::space_time_cube_csv;
pub use histogram::{time_histogram, TimeHistogram};
pub use holding::{detect_holding_patterns, HoldingPattern};
pub use map::{cluster_map_csv, cluster_map_svg};
