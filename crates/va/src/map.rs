//! Map display export: cluster members on the x/y plane, colour-coded by
//! cluster (Fig. 1, top).

use hermes_s2t::ClusteringResult;
use hermes_trajectory::SubTrajectory;
use std::fmt::Write as _;

/// A fixed, colour-blind-friendly palette; clusters cycle through it.
const PALETTE: [&str; 10] = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
    "#9c755f", "#bab0ac",
];

fn bounds(result: &ClusteringResult) -> (f64, f64, f64, f64) {
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    let mut update = |s: &SubTrajectory| {
        for p in s.points() {
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
    };
    for c in &result.clusters {
        update(&c.representative);
        for m in &c.members {
            update(m);
        }
    }
    for o in &result.outliers {
        update(o);
    }
    if !min_x.is_finite() {
        (0.0, 1.0, 0.0, 1.0)
    } else {
        (min_x, max_x.max(min_x + 1.0), min_y, max_y.max(min_y + 1.0))
    }
}

/// Renders the clustering result as an SVG map: one polyline per
/// sub-trajectory, cluster members coloured by cluster, outliers in grey,
/// representatives drawn thicker.
pub fn cluster_map_svg(result: &ClusteringResult, width: u32, height: u32) -> String {
    let (min_x, max_x, min_y, max_y) = bounds(result);
    let sx = width as f64 / (max_x - min_x);
    let sy = height as f64 / (max_y - min_y);
    let project =
        |x: f64, y: f64| -> (f64, f64) { ((x - min_x) * sx, height as f64 - (y - min_y) * sy) };
    let polyline = |s: &SubTrajectory, colour: &str, stroke: f64| -> String {
        let pts: Vec<String> = s
            .points()
            .iter()
            .map(|p| {
                let (x, y) = project(p.x, p.y);
                format!("{x:.1},{y:.1}")
            })
            .collect();
        format!(
            "  <polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{:.1}\" />\n",
            pts.join(" "),
            colour,
            stroke
        )
    };

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" viewBox=\"0 0 {width} {height}\">"
    );
    for o in &result.outliers {
        svg.push_str(&polyline(o, "#cccccc", 1.0));
    }
    for c in &result.clusters {
        let colour = PALETTE[c.id % PALETTE.len()];
        for m in &c.members {
            svg.push_str(&polyline(m, colour, 1.2));
        }
        svg.push_str(&polyline(&c.representative, colour, 3.0));
    }
    svg.push_str("</svg>\n");
    svg
}

/// Exports the map as CSV rows:
/// `kind,cluster_id,trajectory_id,point_index,x,y,t_ms` where `kind` is
/// `representative`, `member` or `outlier`.
pub fn cluster_map_csv(result: &ClusteringResult) -> String {
    let mut out = String::from("kind,cluster_id,trajectory_id,point_index,x,y,t_ms\n");
    let mut rows = |kind: &str, cluster: Option<usize>, s: &SubTrajectory| {
        for (i, p) in s.points().iter().enumerate() {
            let cid = cluster.map(|c| c.to_string()).unwrap_or_default();
            let _ = writeln!(
                out,
                "{kind},{cid},{},{i},{:.3},{:.3},{}",
                s.trajectory_id,
                p.x,
                p.y,
                p.t.millis()
            );
        }
    };
    for c in &result.clusters {
        rows("representative", Some(c.id), &c.representative);
        for m in &c.members {
            rows("member", Some(c.id), m);
        }
    }
    for o in &result.outliers {
        rows("outlier", None, o);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_s2t::Cluster;
    use hermes_trajectory::{Point, SubTrajectoryId, Timestamp};

    fn sub(id: u64, y: f64) -> SubTrajectory {
        SubTrajectory::from_points(
            SubTrajectoryId::new(id, 0),
            id,
            id,
            (0..5)
                .map(|i| Point::new(i as f64 * 10.0, y, Timestamp(i as i64 * 1_000)))
                .collect(),
        )
    }

    fn result() -> ClusteringResult {
        ClusteringResult {
            clusters: vec![Cluster {
                id: 0,
                representative: sub(1, 0.0),
                representative_vote: 2.0,
                members: vec![sub(2, 5.0), sub(3, 10.0)],
                member_distances: vec![5.0, 10.0],
            }],
            outliers: vec![sub(9, 500.0)],
        }
    }

    #[test]
    fn svg_contains_one_polyline_per_sub_trajectory() {
        let svg = cluster_map_svg(&result(), 800, 600);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 4);
        assert!(svg.contains("#cccccc"), "outliers are grey");
        assert!(
            svg.contains(PALETTE[0]),
            "cluster 0 uses the first palette colour"
        );
    }

    #[test]
    fn csv_has_one_row_per_point_plus_header() {
        let csv = cluster_map_csv(&result());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 4 * 5);
        assert!(lines[0].starts_with("kind,"));
        assert!(lines.iter().any(|l| l.starts_with("representative,0,1,")));
        assert!(lines.iter().any(|l| l.starts_with("outlier,,9,")));
    }

    #[test]
    fn empty_result_renders_valid_svg() {
        let svg = cluster_map_svg(&ClusteringResult::default(), 100, 100);
        assert!(svg.contains("<svg"));
        let csv = cluster_map_csv(&ClusteringResult::default());
        assert_eq!(csv.lines().count(), 1);
    }
}
