//! Scenario 1 of the demonstration: S2T-Clustering on terminal-area flights,
//! comparison of two parameterisations (Fig. 3), comparison against the
//! TRACLUS / T-OPTICS / Convoys baselines, holding-pattern discovery
//! (Fig. 4), and the VA exports (map SVG, time histogram, space–time cube).
//!
//! Run with `cargo run --release --example flight_analysis`.
//! Output files are written to `target/va-exports/`.

use hermes::baselines::{
    discover_convoys, t_optics, traclus, ConvoyParams, TOpticsParams, TraclusParams,
};
use hermes::prelude::*;
use hermes::va::{cluster_map_csv, space_time_cube_csv};
use std::fs;
use std::path::Path;

fn main() {
    let scenario = AircraftScenarioBuilder {
        seed: 7,
        num_streams: 4,
        waves_per_stream: 2,
        flights_per_wave: 6,
        num_stragglers: 4,
        holding_probability: 0.3,
        ..AircraftScenarioBuilder::default()
    }
    .build();
    println!(
        "dataset: {} flights, {} known holding patterns, {} stragglers",
        scenario.len(),
        scenario.holding_flight_ids.len(),
        scenario.straggler_ids.len()
    );

    // --- Two S2T runs with different parameters (Fig. 3) -------------------
    let tight = S2TParams::builder()
        .sigma(1_500.0)
        .epsilon(4_000.0)
        .min_duration_ms(5 * 60_000)
        .build()
        .expect("valid S2T parameters");
    let loose = S2TParams::builder()
        .sigma(3_000.0)
        .epsilon(9_000.0)
        .min_duration_ms(5 * 60_000)
        .build()
        .expect("valid S2T parameters");
    let run_a = run_s2t(&scenario.trajectories, &tight);
    let run_b = run_s2t(&scenario.trajectories, &loose);
    let qa = ClusteringQuality::compute(&run_a.result);
    let qb = ClusteringQuality::compute(&run_b.result);
    println!("\n-- two S2T runs (Fig. 3) --");
    println!(
        "run A (σ={:.0}, ε={:.0}): {} clusters, {} outliers, coverage {:.0}%",
        tight.sigma,
        tight.epsilon,
        qa.num_clusters,
        qa.num_outliers,
        qa.coverage * 100.0
    );
    println!(
        "run B (σ={:.0}, ε={:.0}): {} clusters, {} outliers, coverage {:.0}%",
        loose.sigma,
        loose.epsilon,
        qb.num_clusters,
        qb.num_outliers,
        qb.coverage * 100.0
    );
    let cmp = compare_runs(&run_a.result, &run_b.result, 5_000.0);
    println!(
        "matched representatives: {} | only in A: {} | only in B: {} | agreement {:.0}%",
        cmp.matched.len(),
        cmp.only_in_a.len(),
        cmp.only_in_b.len(),
        cmp.agreement() * 100.0
    );

    // --- Baselines (scenario 1 comparison) ----------------------------------
    println!("\n-- baselines --");
    let tr = traclus(
        &scenario.trajectories,
        &TraclusParams {
            eps: 3_000.0,
            min_lns: 4,
            ..TraclusParams::default()
        },
    );
    println!(
        "TRACLUS:  {} segment clusters, {} noise segments (time-agnostic)",
        tr.num_clusters,
        tr.num_noise_segments()
    );
    let to = t_optics(
        &scenario.trajectories,
        &TOpticsParams {
            eps: 20_000.0,
            min_pts: 3,
            reachability_threshold: 9_000.0,
        },
    );
    println!(
        "T-OPTICS: {} whole-trajectory clusters, {} noise trajectories",
        to.num_clusters,
        to.num_noise()
    );
    let convoys = discover_convoys(
        &scenario.trajectories,
        &ConvoyParams {
            eps: 4_000.0,
            min_objects: 3,
            min_snapshots: 3,
            snapshot_period: Duration::from_mins(2),
        },
    );
    println!("Convoys:  {} convoys discovered", convoys.len());

    // --- Holding patterns (Fig. 4) ------------------------------------------
    let holdings = detect_holding_patterns(&run_b.result, 1.4, 1.0);
    let detected: Vec<u64> = holdings.iter().map(|h| h.trajectory_id).collect();
    let hits = scenario
        .holding_flight_ids
        .iter()
        .filter(|id| detected.contains(id))
        .count();
    println!("\n-- holding patterns (Fig. 4) --");
    println!(
        "detected {} candidates; {}/{} known holding flights recovered",
        holdings.len(),
        hits,
        scenario.holding_flight_ids.len()
    );

    // --- VA exports (Fig. 1) -------------------------------------------------
    let out_dir = Path::new("target/va-exports");
    fs::create_dir_all(out_dir).expect("create export directory");
    fs::write(
        out_dir.join("cluster_map.svg"),
        cluster_map_svg(&run_b.result, 1200, 900),
    )
    .unwrap();
    fs::write(
        out_dir.join("cluster_map.csv"),
        cluster_map_csv(&run_b.result),
    )
    .unwrap();
    let hist = time_histogram(&run_b.result, Duration::from_mins(15));
    fs::write(out_dir.join("time_histogram.csv"), hist.to_csv()).unwrap();
    let mut cube = space_time_cube_csv("run-A", &run_a.result);
    hermes::va::cube::append_space_time_cube(&mut cube, "run-B", &run_b.result);
    fs::write(out_dir.join("space_time_cube.csv"), cube).unwrap();
    println!("\nVA exports written to {}", out_dir.display());
    if let Some((peak_start, peak)) = hist.peak_bucket() {
        println!(
            "peak traffic bucket starts at t={} ms with {} active sub-trajectories",
            peak_start.millis(),
            peak
        );
    }
}
