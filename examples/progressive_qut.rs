//! Scenario 2 of the demonstration: progressive, time-aware analysis with
//! QuT-Clustering over a multi-hour maritime dataset.
//!
//! The example compares, for a sweep of time windows `W`, the ReTraTree-backed
//! `QUT(W)` execution against the alternative the paper describes —
//! "(i) extracting the relevant records using a temporal range query,
//! (ii) creating an R-tree index on the result, (iii) applying clustering" —
//! and prints the speedup per window, i.e. the data series behind the
//! scenario-2 demonstration.
//!
//! Run with `cargo run --release --example progressive_qut`.

use hermes::prelude::*;
use hermes::retratree::QutParams;

fn main() {
    // A longer maritime MOD: three shipping lanes over several hours, plus
    // rogue vessels.
    let scenario = MaritimeScenarioBuilder {
        seed: 99,
        num_lanes: 3,
        vessels_per_lane: 10,
        num_rogues: 5,
        departure_spread_ms: 40 * 60_000,
        ..MaritimeScenarioBuilder::default()
    }
    .build();
    println!("dataset: {} vessels", scenario.trajectories.len());

    let s2t = S2TParams::builder()
        .sigma(800.0)
        .epsilon(2_500.0)
        .min_duration_ms(10 * 60_000)
        .build()
        .expect("valid S2T parameters");
    let mut engine = HermesEngine::new();
    engine.create_dataset("vessels").unwrap();
    engine
        .load_trajectories("vessels", scenario.trajectories.clone())
        .unwrap();
    engine
        .build_index(
            "vessels",
            ReTraTreeParams::builder()
                .chunk_duration(Duration::from_hours(2))
                .subchunks_per_chunk(4)
                .s2t(s2t.clone())
                .build()
                .expect("valid tree parameters"),
        )
        .unwrap();
    let tree = engine.tree("vessels").unwrap();
    println!(
        "ReTraTree: {} chunks, {} cluster entries, {} stored pieces",
        tree.num_chunks(),
        tree.total_clusters(),
        tree.total_population()
    );

    let qut = QutParams::builder()
        .s2t(s2t.clone())
        .merge_distance(2_500.0)
        .merge_gap(Duration::from_mins(45))
        .build()
        .expect("valid QuT parameters");
    let span = tree.lifespan().unwrap();

    println!(
        "\n{:>6} | {:>10} | {:>12} | {:>12} | {:>8}",
        "W (%)", "clusters", "QuT (ms)", "rebuild (ms)", "speedup"
    );
    println!("{}", "-".repeat(62));
    for pct in [10, 25, 50, 75, 100] {
        let w = TimeInterval::new(
            span.start,
            span.start + Duration::from_millis(span.length().millis() * pct / 100),
        );
        let (qut_result, qut_stats) = engine.run_qut("vessels", &w, &qut).unwrap();
        let (_, rebuild_stats) = engine.run_window_rebuild("vessels", &w, &s2t).unwrap();
        let speedup = if qut_stats.elapsed_ms > 0.0 {
            rebuild_stats.elapsed_ms / qut_stats.elapsed_ms
        } else {
            f64::INFINITY
        };
        println!(
            "{:>6} | {:>10} | {:>12.1} | {:>12.1} | {:>7.1}x",
            pct,
            qut_result.num_clusters(),
            qut_stats.elapsed_ms,
            rebuild_stats.elapsed_ms,
            speedup
        );
    }

    // The progressive part: the analyst extends the window into the past and
    // the already-clustered chunks are reused, not recomputed.
    println!("\nprogressive widening (reused vs re-clustered sub-chunks):");
    for pct in [25, 50, 75, 100] {
        let w = TimeInterval::new(
            span.start,
            span.start + Duration::from_millis(span.length().millis() * pct / 100),
        );
        let (_, stats) = engine.run_qut("vessels", &w, &qut).unwrap();
        println!(
            "  W = {:>3}% → reused {:>2} sub-chunks, re-clustered {:>2}, loaded {:>4} pieces",
            pct, stats.reused_subchunks, stats.reclustered_subchunks, stats.loaded_sub_trajectories
        );
    }
}
