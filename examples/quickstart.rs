//! Quickstart: generate a synthetic terminal-area dataset, cluster it with
//! S2T-Clustering, build a ReTraTree and ask a couple of QuT questions —
//! first through the Rust API, then through a SQL [`Session`] with a
//! prepared, placeholder-parameterised statement.
//!
//! Run with `cargo run --release --example quickstart`.

use hermes::prelude::*;
use hermes::retratree::QutParams;

fn main() {
    // 1. Synthesize a small aircraft MOD (the paper demonstrates on flights
    //    approaching the London airports; we generate an equivalent).
    let scenario = AircraftScenarioBuilder {
        seed: 42,
        num_streams: 3,
        waves_per_stream: 2,
        flights_per_wave: 5,
        num_stragglers: 3,
        ..AircraftScenarioBuilder::default()
    }
    .build();
    println!(
        "generated {} flights ({} stragglers, {} with holding patterns)",
        scenario.len(),
        scenario.straggler_ids.len(),
        scenario.holding_flight_ids.len()
    );

    // 2. Whole-dataset S2T-Clustering through the library API. Parameters are
    //    built by name, so adding knobs never breaks this call site.
    let params = S2TParams::builder()
        .sigma(2_000.0)
        .epsilon(6_000.0)
        .min_duration_ms(5 * 60_000)
        .build()
        .expect("valid S2T parameters");
    let outcome = run_s2t(&scenario.trajectories, &params);
    println!(
        "S2T: {} clusters, {} outliers (voting {:.0} ms, clustering {:.0} ms)",
        outcome.result.num_clusters(),
        outcome.result.num_outliers(),
        outcome.timings.voting_ms,
        outcome.timings.clustering_ms
    );
    let quality = ClusteringQuality::compute(&outcome.result);
    println!(
        "     coverage {:.0}%, mean cluster size {:.1}",
        quality.coverage * 100.0,
        quality.mean_cluster_size
    );

    // 3. The same engine through a SQL session.
    let mut engine = HermesEngine::new();
    engine.create_dataset("flights").unwrap();
    engine
        .load_trajectories("flights", scenario.trajectories.clone())
        .unwrap();
    engine
        .build_index(
            "flights",
            ReTraTreeParams::builder()
                .chunk_duration(Duration::from_hours(2))
                .s2t(params.clone())
                .build()
                .expect("valid tree parameters"),
        )
        .unwrap();

    let mut session = Session::new(&mut engine);
    for stmt in [
        "SELECT INFO(flights);",
        "SELECT RANGE(flights, 0, 3600000);",
        "SELECT QUT(flights, 0, 5400000, 0.35, 0.05, 300000, 6000, 1800000);",
    ] {
        println!("\nhermes=# {stmt}");
        match session.execute(stmt) {
            Ok(outcome) => print!("{outcome}"),
            Err(e) => println!("ERROR: {e}"),
        }
    }

    // 4. Progressive analysis with a *prepared* statement: the window is a
    //    pair of $n placeholders, so the statement parses once and each
    //    widening binds fresh timestamps — no re-parsing, no re-processing of
    //    the archived periods (the QuT selling point).
    let qut = session
        .prepare("SELECT QUT(flights, $1, $2, 0.35, 0.05, 300000, 6000, 1800000);")
        .expect("statement parses");
    let full_span = session
        .engine()
        .tree("flights")
        .unwrap()
        .lifespan()
        .unwrap();
    println!("\nprogressive widening through one prepared statement:");
    for fraction in [0.25, 0.5, 1.0] {
        let end = full_span.start
            + Duration::from_millis((full_span.length().millis() as f64 * fraction) as i64);
        let outcome = session
            .execute_prepared(
                qut,
                &[Value::Timestamp(full_span.start), Value::Timestamp(end)],
            )
            .expect("prepared QUT executes");
        let stats = outcome.stats().expect("QUT reports statistics");
        println!(
            "QuT over {:>3.0}% of the timeline: {} clusters, {} outliers, reused {} sub-chunks, re-clustered {} ({:.1} ms)",
            fraction * 100.0,
            stats.get(0, "clusters").unwrap(),
            stats.get(0, "outliers").unwrap(),
            stats.get(0, "reused_subchunks").unwrap(),
            stats.get(0, "reclustered_subchunks").unwrap(),
            stats.get(0, "elapsed_ms").unwrap().as_f64().unwrap()
        );
    }
    let s = session.stats();
    println!(
        "session parsed {} statements for {} executions ({} cache hits)",
        s.parses, s.executions, s.cache_hits
    );

    // 5. The equivalent typed API call, for comparison.
    let qut_params = QutParams::builder()
        .s2t(params)
        .merge_distance(6_000.0)
        .merge_gap(Duration::from_mins(30))
        .build()
        .expect("valid QuT parameters");
    let (result, stats) = engine.run_qut("flights", &full_span, &qut_params).unwrap();
    println!(
        "typed API over the full span: {} clusters ({:.1} ms)",
        result.num_clusters(),
        stats.elapsed_ms
    );
}
