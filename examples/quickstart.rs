//! Quickstart: generate a synthetic terminal-area dataset, cluster it with
//! S2T-Clustering, build a ReTraTree and ask a couple of QuT questions —
//! first through the Rust API, then through the SQL interface.
//!
//! Run with `cargo run --release --example quickstart`.

use hermes::prelude::*;
use hermes::retratree::QutParams;
use hermes::sql;

fn main() {
    // 1. Synthesize a small aircraft MOD (the paper demonstrates on flights
    //    approaching the London airports; we generate an equivalent).
    let scenario = AircraftScenarioBuilder {
        seed: 42,
        num_streams: 3,
        waves_per_stream: 2,
        flights_per_wave: 5,
        num_stragglers: 3,
        ..AircraftScenarioBuilder::default()
    }
    .build();
    println!(
        "generated {} flights ({} stragglers, {} with holding patterns)",
        scenario.len(),
        scenario.straggler_ids.len(),
        scenario.holding_flight_ids.len()
    );

    // 2. Whole-dataset S2T-Clustering through the library API.
    let params = S2TParams {
        sigma: 2_000.0,
        epsilon: 6_000.0,
        min_duration_ms: 5 * 60_000,
        ..S2TParams::default()
    };
    let outcome = run_s2t(&scenario.trajectories, &params);
    println!(
        "S2T: {} clusters, {} outliers (voting {:.0} ms, clustering {:.0} ms)",
        outcome.result.num_clusters(),
        outcome.result.num_outliers(),
        outcome.timings.voting_ms,
        outcome.timings.clustering_ms
    );
    let quality = ClusteringQuality::compute(&outcome.result);
    println!(
        "     coverage {:.0}%, mean cluster size {:.1}",
        quality.coverage * 100.0,
        quality.mean_cluster_size
    );

    // 3. The same engine through SQL, plus a time-aware QuT query.
    let mut engine = HermesEngine::new();
    engine.create_dataset("flights").unwrap();
    engine
        .load_trajectories("flights", scenario.trajectories.clone())
        .unwrap();
    engine
        .build_index(
            "flights",
            ReTraTreeParams {
                chunk_duration: Duration::from_hours(2),
                s2t: params.clone(),
                ..ReTraTreeParams::default()
            },
        )
        .unwrap();

    for stmt in [
        "SELECT INFO(flights);",
        "SELECT RANGE(flights, 0, 3600000);",
        "SELECT QUT(flights, 0, 5400000, 0.35, 0.05, 300000, 6000, 1800000);",
    ] {
        println!("\nhermes=# {stmt}");
        match sql::execute(&mut engine, stmt) {
            Ok(table) => print!("{table}"),
            Err(e) => println!("ERROR: {e}"),
        }
    }

    // 4. Progressive analysis: widen the window and watch the clusters grow
    //    without re-processing the archived periods (the QuT selling point).
    let qut = QutParams {
        s2t: params,
        merge_distance: 6_000.0,
        merge_gap: Duration::from_mins(30),
    };
    let full_span = engine.tree("flights").unwrap().lifespan().unwrap();
    for fraction in [0.25, 0.5, 1.0] {
        let w = TimeInterval::new(
            full_span.start,
            full_span.start
                + Duration::from_millis((full_span.length().millis() as f64 * fraction) as i64),
        );
        let (result, stats) = engine.run_qut("flights", &w, &qut).unwrap();
        println!(
            "QuT over {:>3.0}% of the timeline: {} clusters, {} outliers, reused {} sub-chunks, re-clustered {} ({:.1} ms)",
            fraction * 100.0,
            result.num_clusters(),
            result.num_outliers(),
            stats.reused_subchunks,
            stats.reclustered_subchunks,
            stats.elapsed_ms
        );
    }
}
