//! Urban-traffic example: sub-trajectory clustering of commuter vehicles on a
//! city grid, plus the incremental-maintenance path of the architecture
//! (Fig. 2) — new vehicles streaming into an already-indexed dataset.
//!
//! Run with `cargo run --release --example urban_commute`.

use hermes::prelude::*;
use hermes::retratree::QutParams;

fn main() {
    let scenario = UrbanScenarioBuilder {
        seed: 2024,
        grid_size: 12,
        num_corridors: 4,
        vehicles_per_corridor: 8,
        num_random_vehicles: 10,
        ..UrbanScenarioBuilder::default()
    }
    .build();
    println!(
        "dataset: {} vehicles on a {}x{} grid ({} corridor commuters, {} random)",
        scenario.trajectories.len(),
        12,
        12,
        scenario.corridor_of.len(),
        scenario.random_ids.len()
    );

    let s2t = S2TParams::builder()
        .sigma(60.0)
        .epsilon(250.0)
        .min_duration_ms(3 * 60_000)
        .build()
        .expect("valid S2T parameters");

    // Split the data: the first 80% is loaded up front, the rest streams in.
    let split = scenario.trajectories.len() * 4 / 5;
    let (initial, streaming) = scenario.trajectories.split_at(split);

    let mut engine = HermesEngine::new();
    engine.create_dataset("commute").unwrap();
    engine
        .load_trajectories("commute", initial.to_vec())
        .unwrap();
    engine
        .build_index(
            "commute",
            ReTraTreeParams::builder()
                .chunk_duration(Duration::from_hours(1))
                .subchunks_per_chunk(4)
                .reorg_page_threshold(2)
                .s2t(s2t.clone())
                .build()
                .expect("valid tree parameters"),
        )
        .unwrap();

    let before = engine.tree("commute").unwrap().stats();
    println!(
        "after bulk build: {} cluster entries, {} reorganizations",
        engine.tree("commute").unwrap().total_clusters(),
        before.reorganizations
    );

    // Stream the remaining vehicles one by one (the maintenance loop of
    // Fig. 2: assign to an existing representative or park as outlier,
    // re-cluster when a partition overflows).
    for t in streaming {
        engine
            .load_trajectories("commute", vec![t.clone()])
            .unwrap();
    }
    let after = engine.tree("commute").unwrap().stats();
    println!(
        "after streaming {} more vehicles: assigned-to-existing {}, parked-as-outlier {}, reorganizations {}, promoted representatives {}",
        streaming.len(),
        after.assigned_to_existing - before.assigned_to_existing,
        after.parked_as_outliers - before.parked_as_outliers,
        after.reorganizations,
        after.promoted_representatives
    );

    // Cluster the rush hour only.
    let span = engine.tree("commute").unwrap().lifespan().unwrap();
    let rush = TimeInterval::new(span.start, span.start + Duration::from_mins(30));
    let (result, stats) = engine
        .run_qut(
            "commute",
            &rush,
            &QutParams::builder()
                .s2t(s2t)
                .merge_distance(250.0)
                .merge_gap(Duration::from_mins(10))
                .build()
                .expect("valid QuT parameters"),
        )
        .unwrap();
    println!(
        "\nQuT over the first 30 minutes: {} clusters, {} outliers ({:.1} ms, {} pieces loaded)",
        result.num_clusters(),
        result.num_outliers(),
        stats.elapsed_ms,
        stats.loaded_sub_trajectories
    );
    for c in &result.clusters {
        println!(
            "  cluster {:>2}: {:>2} vehicles, lifespan {} → {}",
            c.id,
            c.size(),
            c.lifespan().start,
            c.lifespan().end
        );
    }
}
