//! `hermes-cli` — a small command-line front end for the engine.
//!
//! ```text
//! hermes-cli demo                      # generate the demo aircraft MOD and open a SQL shell
//! hermes-cli generate aircraft out.csv # write a synthetic dataset as CSV
//! hermes-cli load data.csv             # load a planar CSV (object_id,trajectory_id,x,y,t_ms) and open a SQL shell
//! hermes-cli load-geo data.csv         # same, but lon/lat input projected to local metres
//! ```
//!
//! Inside the shell, any statement of the `hermes-sql` dialect works, e.g.
//! `SELECT S2T(data, 2000, 0.35, 0.05, 300000, 6000);` or
//! `SELECT QUT(data, 0, 7200000, 0.35, 0.05, 300000, 6000, 1800000);`.
//! The shell runs over a [`Session`], so repeating a statement re-uses its
//! cached plan instead of re-parsing. `\timing` toggles the typed
//! per-statement statistics (elapsed milliseconds, outliers, sub-chunk reuse),
//! `\stats` shows the session's parse/cache counters, `\q` quits and `\help`
//! lists the statements.

use hermes::datagen::{AircraftScenarioBuilder, MaritimeScenarioBuilder, UrbanScenarioBuilder};
use hermes::prelude::*;
use hermes::sql::fmt::render_stats;
use hermes::trajectory::{parse_csv, parse_geo_csv, to_csv};
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Instant;

const HELP: &str = "\
hermes-cli — time-aware sub-trajectory clustering

USAGE:
    hermes-cli demo
    hermes-cli generate <aircraft|maritime|urban> <out.csv> [seed]
    hermes-cli load <data.csv>
    hermes-cli load-geo <data.csv>

The `demo`, `load` and `load-geo` commands open an interactive SQL shell over
a dataset named `data`. Statements: CREATE/DROP DATASET, SHOW DATASETS,
BUILD INDEX ON <name> WITH CHUNK <h> HOURS, SELECT INFO/S2T/S2T_NAIVE/QUT/
QUT_REBUILD/RANGE/HISTOGRAM(...). Numeric arguments accept $n placeholders
when prepared through the library API.

Shell commands: \\timing toggles per-statement execution statistics,
\\stats shows the session's parse/cache counters, \\q quits, \\help prints
this text.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("demo") => shell(demo_trajectories()),
        Some("generate") => generate(&args[1..]),
        Some("load") => match load_file(args.get(1), false) {
            Ok(trajs) => shell(trajs),
            Err(e) => fail(&e),
        },
        Some("load-geo") => match load_file(args.get(1), true) {
            Ok(trajs) => shell(trajs),
            Err(e) => fail(&e),
        },
        Some("--help") | Some("-h") | None => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown command '{other}'\n\n{HELP}")),
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

fn demo_trajectories() -> Vec<Trajectory> {
    AircraftScenarioBuilder {
        seed: 42,
        num_streams: 3,
        waves_per_stream: 2,
        flights_per_wave: 5,
        num_stragglers: 3,
        ..AircraftScenarioBuilder::default()
    }
    .build()
    .trajectories
}

fn generate(args: &[String]) -> ExitCode {
    let (Some(kind), Some(out)) = (args.first(), args.get(1)) else {
        return fail("usage: hermes-cli generate <aircraft|maritime|urban> <out.csv> [seed]");
    };
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
    let trajectories = match kind.as_str() {
        "aircraft" => {
            AircraftScenarioBuilder {
                seed,
                ..AircraftScenarioBuilder::default()
            }
            .build()
            .trajectories
        }
        "maritime" => {
            MaritimeScenarioBuilder {
                seed,
                ..MaritimeScenarioBuilder::default()
            }
            .build()
            .trajectories
        }
        "urban" => {
            UrbanScenarioBuilder {
                seed,
                ..UrbanScenarioBuilder::default()
            }
            .build()
            .trajectories
        }
        other => return fail(&format!("unknown generator '{other}'")),
    };
    let csv = to_csv(&trajectories);
    if let Err(e) = std::fs::write(out, csv) {
        return fail(&format!("cannot write {out}: {e}"));
    }
    println!("wrote {} trajectories to {out}", trajectories.len());
    ExitCode::SUCCESS
}

fn load_file(path: Option<&String>, geodetic: bool) -> Result<Vec<Trajectory>, String> {
    let path = path.ok_or("usage: hermes-cli load <data.csv>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let import = if geodetic {
        parse_geo_csv(&text).0
    } else {
        parse_csv(&text)
    };
    for (line, reason) in import.rejected.iter().take(10) {
        eprintln!("warning: line {line}: {reason}");
    }
    if import.rejected.len() > 10 {
        eprintln!(
            "warning: {} further rows rejected",
            import.rejected.len() - 10
        );
    }
    if import.trajectories.is_empty() {
        return Err("no usable trajectories in the file".into());
    }
    Ok(import.trajectories)
}

fn shell(trajectories: Vec<Trajectory>) -> ExitCode {
    let mut engine = HermesEngine::new();
    engine.create_dataset("data").expect("fresh engine");
    let n = trajectories.len();
    engine
        .load_trajectories("data", trajectories)
        .expect("dataset exists");
    println!("loaded {n} trajectories into dataset 'data'");
    println!("hint: BUILD INDEX ON data WITH CHUNK 2 HOURS;  then  SELECT QUT(data, ...);  (\\help for more)");

    let mut session = Session::new(&mut engine);
    let mut timing = false;
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("hermes=# ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("error reading input: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\q" || line.eq_ignore_ascii_case("quit") || line.eq_ignore_ascii_case("exit") {
            break;
        }
        if line == "\\help" {
            print!("{HELP}");
            continue;
        }
        if line == "\\timing" {
            timing = !timing;
            println!("Timing is {}.", if timing { "on" } else { "off" });
            continue;
        }
        if line == "\\stats" {
            let s = session.stats();
            println!(
                "session: {} parses, {} cache hits, {} executions, {} cached statements",
                s.parses,
                s.cache_hits,
                s.executions,
                session.cached_statements()
            );
            continue;
        }
        let started = Instant::now();
        let result = session.execute(line);
        // Stop the clock before rendering: the reported time covers parse +
        // execute, not table formatting (matching psql's \timing).
        let elapsed_ms = started.elapsed().as_secs_f64() * 1_000.0;
        match result {
            Ok(outcome) => {
                print!("{outcome}");
                if timing {
                    let engine_stats = render_stats(&outcome);
                    if engine_stats.is_empty() {
                        println!("Time: {elapsed_ms:.3} ms");
                    } else {
                        println!("Time: {elapsed_ms:.3} ms ({engine_stats})");
                    }
                }
            }
            Err(e) => eprintln!("ERROR: {e}"),
        }
    }
    ExitCode::SUCCESS
}
