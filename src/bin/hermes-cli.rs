//! `hermes-cli` — a command-line front end for the engine.
//!
//! ```text
//! hermes-cli demo                      # generate the demo aircraft MOD and open a SQL shell
//! hermes-cli generate aircraft out.csv # write a synthetic dataset as CSV
//! hermes-cli load data.csv             # load a planar CSV (object_id,trajectory_id,x,y,t_ms) and open a SQL shell
//! hermes-cli load-geo data.csv         # same, but lon/lat input projected to local metres
//! hermes-cli --connect host:port       # open a SQL shell against a hermes-serve instance
//! hermes-cli -c "SHOW DATASETS;"       # one-shot statement(s); nonzero exit on error
//! hermes-cli --data-dir ./hermes       # durable local engine: recover, journal, \checkpoint
//! ```
//!
//! Inside the shell, any statement of the `hermes-sql` dialect works, e.g.
//! `SELECT S2T(data, 2000, 0.35, 0.05, 300000, 6000);` or
//! `SELECT QUT(data, 0, 7200000, 0.35, 0.05, 300000, 6000, 1800000);`.
//! Local shells run over a [`Session`], so repeating a statement re-uses its
//! cached plan instead of re-parsing; with `--connect` the statements execute
//! remotely over the wire protocol and the typed frames come back across the
//! network. `\timing` toggles the typed per-statement statistics, `\stats`
//! runs `SHOW STATS;` (engine, session and — remotely — server scopes),
//! `\q` quits and `\help` lists the statements.
//!
//! `load`/`load-geo`/`demo` combined with `--connect` ingest the trajectories
//! into the server's `data` dataset instead of a local engine — that is how a
//! scripted client session (CI's smoke test) populates a fresh server.

use hermes::datagen::{AircraftScenarioBuilder, MaritimeScenarioBuilder, UrbanScenarioBuilder};
use hermes::prelude::*;
use hermes::sql::fmt::render_stats;
use hermes::trajectory::{parse_csv, parse_geo_csv, to_csv};
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Instant;

const HELP: &str = "\
hermes-cli — time-aware sub-trajectory clustering

USAGE:
    hermes-cli demo [-c <sql>]...
    hermes-cli generate <aircraft|maritime|urban> <out.csv> [seed]
    hermes-cli load <data.csv> [-c <sql>]...
    hermes-cli load-geo <data.csv> [-c <sql>]...
    hermes-cli --connect <host:port> [demo|load <csv>|load-geo <csv>] [-c <sql>]...
    hermes-cli --data-dir <dir> [demo|load <csv>|load-geo <csv>] [-c <sql>]...

OPTIONS:
    --connect <host:port>  Execute against a running hermes-serve instead of
                           a local engine. demo/load/load-geo then ingest
                           their trajectories into the server's 'data'
                           dataset over the wire.
    --data-dir <dir>       Durable local engine over <dir>: recover the
                           snapshot + write-ahead log on start and journal
                           every mutation. CHECKPOINT; (or \\checkpoint)
                           makes the current state the recovery point.
                           Cannot be combined with --connect.
    --threads <n>          Intra-query compute threads for S2T/QuT/BUILD
                           INDEX (default: HERMES_THREADS or all cores;
                           1 = serial). Locally this sets the engine policy;
                           with --connect it is sent as SET threads = n.
                           Also available at runtime: SET threads = n; and
                           SHOW THREADS;
    -c <sql>               Run one statement non-interactively and print the
                           rendered frame; repeatable, executed in order. The
                           exit code is nonzero if any statement fails.

The `demo`, `load` and `load-geo` commands open an interactive SQL shell over
a dataset named `data` (unless -c statements are given). Statements:
CREATE/DROP DATASET, SHOW DATASETS, SHOW STATS,
BUILD INDEX ON <name> WITH CHUNK <h> HOURS, SELECT INFO/S2T/S2T_NAIVE/QUT/
QUT_REBUILD/RANGE/HISTOGRAM(...). Numeric arguments accept $n placeholders
when prepared through the library API.

Shell commands: \\timing toggles per-statement execution statistics,
\\stats runs SHOW STATS;, \\checkpoint runs CHECKPOINT; (durable engines),
\\q quits, \\help prints this text.
";

/// One statement executor, local or remote; the shell and one-shot runner
/// only see this surface.
trait Exec {
    fn run(&mut self, sql: &str) -> Result<QueryOutcome, String>;
}

struct LocalExec<'e>(Session<&'e mut HermesEngine>);

impl Exec for LocalExec<'_> {
    fn run(&mut self, sql: &str) -> Result<QueryOutcome, String> {
        self.0.execute(sql).map_err(|e| e.to_string())
    }
}

struct RemoteExec(HermesClient);

impl Exec for RemoteExec {
    fn run(&mut self, sql: &str) -> Result<QueryOutcome, String> {
        self.0.query(sql).map_err(|e| e.to_string())
    }
}

struct CliArgs {
    connect: Option<String>,
    data_dir: Option<String>,
    threads: Option<usize>,
    commands: Vec<String>,
    positional: Vec<String>,
}

fn parse_args(raw: impl Iterator<Item = String>) -> Result<CliArgs, String> {
    let mut args = CliArgs {
        connect: None,
        data_dir: None,
        threads: None,
        commands: Vec::new(),
        positional: Vec::new(),
    };
    let mut raw = raw.peekable();
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--connect" => match raw.next() {
                Some(addr) => args.connect = Some(addr),
                None => return Err("--connect requires a host:port value".into()),
            },
            "--data-dir" => match raw.next() {
                Some(dir) => args.data_dir = Some(dir),
                None => return Err("--data-dir requires a directory path".into()),
            },
            "--threads" => match raw
                .next()
                .and_then(|n| n.parse().ok())
                .map(hermes::exec::ExecPolicy::new)
            {
                Some(Ok(p)) => args.threads = Some(p.threads),
                Some(Err(m)) => return Err(format!("--{m}")),
                None => return Err("--threads requires a positive integer".into()),
            },
            "-c" => match raw.next() {
                Some(sql) => args.commands.push(sql),
                None => return Err("-c requires a statement".into()),
            },
            _ => args.positional.push(arg),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    if args.connect.is_some() && args.data_dir.is_some() {
        return fail("--data-dir is local persistence; it cannot be combined with --connect");
    }
    match args.positional.first().map(String::as_str) {
        Some("demo") => with_source(args, demo_trajectories()),
        Some("generate") => {
            if args.connect.is_some()
                || args.data_dir.is_some()
                || !args.commands.is_empty()
                || args.threads.is_some()
            {
                // Silently dropping them would let a script believe its SQL ran.
                return fail("generate does not take --connect, --data-dir, --threads or -c");
            }
            generate(&args.positional[1..])
        }
        Some("load") | Some("load-geo") => {
            let geodetic = args.positional[0] == "load-geo";
            match load_file(args.positional.get(1), geodetic) {
                Ok(trajs) => with_source(args, trajs),
                Err(e) => fail(&e),
            }
        }
        Some("--help") | Some("-h") => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        None if args.connect.is_some() || args.data_dir.is_some() || !args.commands.is_empty() => {
            // Pure client mode (remote server or persisted local state): no
            // data to stage.
            if args.connect.is_some() {
                connect_and_run(args, None)
            } else if args.data_dir.is_some() {
                with_data_dir_only(args)
            } else {
                fail("-c without a data source needs --connect, --data-dir or demo/load")
            }
        }
        None => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown command '{other}'\n\n{HELP}")),
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

/// Builds the local engine an interactive or one-shot run drives: durable
/// over `--data-dir` (recovering whatever is there), in-memory otherwise.
fn local_engine(args: &CliArgs) -> Result<HermesEngine, String> {
    let policy = args
        .threads
        .map(|threads| hermes::exec::ExecPolicy { threads });
    match &args.data_dir {
        Some(dir) => {
            let engine = match policy {
                Some(p) => HermesEngine::open_with_exec_policy(dir, p),
                None => HermesEngine::open(dir),
            }
            .map_err(|e| format!("cannot open data directory {dir}: {e}"))?;
            let stats = engine.stats();
            eprintln!(
                "opened data directory '{dir}': {} dataset(s), snapshot {} B, wal {} B",
                stats.datasets, stats.snapshot_bytes, stats.wal_bytes
            );
            Ok(engine)
        }
        None => Ok(policy.map_or_else(HermesEngine::new, HermesEngine::with_exec_policy)),
    }
}

/// Runs `-c` statements or the shell over trajectories staged either into a
/// local engine or, with `--connect`, into the server's `data` dataset.
fn with_source(args: CliArgs, trajectories: Vec<Trajectory>) -> ExitCode {
    if args.connect.is_some() {
        return connect_and_run(args, Some(trajectories));
    }
    let mut engine = match local_engine(&args) {
        Ok(e) => e,
        Err(e) => return fail(&e),
    };
    // A recovered data directory may already hold the 'data' dataset; the
    // new trajectories append to it (and are journaled when durable).
    if engine.dataset_info("data").is_err() {
        if let Err(e) = engine.create_dataset("data") {
            return fail(&format!("cannot create dataset 'data': {e}"));
        }
    }
    let n = trajectories.len();
    if let Err(e) = engine.load_trajectories("data", trajectories) {
        return fail(&format!("cannot load into dataset 'data': {e}"));
    }
    eprintln!("loaded {n} trajectories into dataset 'data'");
    let mut exec = LocalExec(Session::new(&mut engine));
    if args.commands.is_empty() {
        eprintln!("hint: BUILD INDEX ON data WITH CHUNK 2 HOURS;  then  SELECT QUT(data, ...);  (\\help for more)");
        shell(&mut exec)
    } else {
        one_shot(&mut exec, &args.commands)
    }
}

/// `--data-dir` with no data source: drive whatever state the directory
/// already holds (the restart half of a durable workflow).
fn with_data_dir_only(args: CliArgs) -> ExitCode {
    let mut engine = match local_engine(&args) {
        Ok(e) => e,
        Err(e) => return fail(&e),
    };
    let mut exec = LocalExec(Session::new(&mut engine));
    if args.commands.is_empty() {
        shell(&mut exec)
    } else {
        one_shot(&mut exec, &args.commands)
    }
}

fn connect_and_run(args: CliArgs, trajectories: Option<Vec<Trajectory>>) -> ExitCode {
    let addr = args.connect.as_deref().expect("checked by caller");
    let client = match HermesClient::connect(addr) {
        Ok(c) => c,
        Err(e) => return fail(&format!("cannot connect to {addr}: {e}")),
    };
    let mut exec = RemoteExec(client);
    if let Some(threads) = args.threads {
        // The wire protocol carries it as an ordinary statement.
        if let Err(e) = exec.run(&format!("SET threads = {threads};")) {
            return fail(&format!("SET threads failed: {e}"));
        }
    }
    if let Some(trajs) = trajectories {
        match exec.0.ingest("data", &trajs) {
            Ok(n) => eprintln!("ingested {n} trajectories into remote dataset 'data'"),
            Err(e) => return fail(&format!("ingest failed: {e}")),
        }
    }
    if args.commands.is_empty() {
        eprintln!("connected to {addr}");
        shell(&mut exec)
    } else {
        one_shot(&mut exec, &args.commands)
    }
}

/// Executes statements in order, rendering each result to stdout. The first
/// failure prints to stderr and exits nonzero, so scripts and CI can assert
/// on the CLI.
fn one_shot(exec: &mut impl Exec, commands: &[String]) -> ExitCode {
    for sql in commands {
        match exec.run(sql) {
            Ok(outcome) => print!("{outcome}"),
            Err(e) => return fail(&e),
        }
    }
    ExitCode::SUCCESS
}

fn demo_trajectories() -> Vec<Trajectory> {
    AircraftScenarioBuilder {
        seed: 42,
        num_streams: 3,
        waves_per_stream: 2,
        flights_per_wave: 5,
        num_stragglers: 3,
        ..AircraftScenarioBuilder::default()
    }
    .build()
    .trajectories
}

fn generate(args: &[String]) -> ExitCode {
    let (Some(kind), Some(out)) = (args.first(), args.get(1)) else {
        return fail("usage: hermes-cli generate <aircraft|maritime|urban> <out.csv> [seed]");
    };
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
    let trajectories = match kind.as_str() {
        "aircraft" => {
            AircraftScenarioBuilder {
                seed,
                ..AircraftScenarioBuilder::default()
            }
            .build()
            .trajectories
        }
        "maritime" => {
            MaritimeScenarioBuilder {
                seed,
                ..MaritimeScenarioBuilder::default()
            }
            .build()
            .trajectories
        }
        "urban" => {
            UrbanScenarioBuilder {
                seed,
                ..UrbanScenarioBuilder::default()
            }
            .build()
            .trajectories
        }
        other => return fail(&format!("unknown generator '{other}'")),
    };
    let csv = to_csv(&trajectories);
    if let Err(e) = std::fs::write(out, csv) {
        return fail(&format!("cannot write {out}: {e}"));
    }
    println!("wrote {} trajectories to {out}", trajectories.len());
    ExitCode::SUCCESS
}

fn load_file(path: Option<&String>, geodetic: bool) -> Result<Vec<Trajectory>, String> {
    let path = path.ok_or("usage: hermes-cli load <data.csv>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let import = if geodetic {
        parse_geo_csv(&text).0
    } else {
        parse_csv(&text)
    };
    for (line, reason) in import.rejected.iter().take(10) {
        eprintln!("warning: line {line}: {reason}");
    }
    if import.rejected.len() > 10 {
        eprintln!(
            "warning: {} further rows rejected",
            import.rejected.len() - 10
        );
    }
    if import.trajectories.is_empty() {
        return Err("no usable trajectories in the file".into());
    }
    Ok(import.trajectories)
}

fn shell(exec: &mut impl Exec) -> ExitCode {
    let mut timing = false;
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("hermes=# ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("error reading input: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\q" || line.eq_ignore_ascii_case("quit") || line.eq_ignore_ascii_case("exit") {
            break;
        }
        if line == "\\help" {
            print!("{HELP}");
            continue;
        }
        if line == "\\timing" {
            timing = !timing;
            println!("Timing is {}.", if timing { "on" } else { "off" });
            continue;
        }
        let statement = if line == "\\stats" {
            "SHOW STATS;"
        } else if line == "\\checkpoint" {
            "CHECKPOINT;"
        } else {
            line
        };
        let started = Instant::now();
        let result = exec.run(statement);
        // Stop the clock before rendering: the reported time covers parse +
        // execute (+ the network, remotely), not table formatting (matching
        // psql's \timing).
        let elapsed_ms = started.elapsed().as_secs_f64() * 1_000.0;
        match result {
            Ok(outcome) => {
                print!("{outcome}");
                if timing {
                    let engine_stats = render_stats(&outcome);
                    if engine_stats.is_empty() {
                        println!("Time: {elapsed_ms:.3} ms");
                    } else {
                        println!("Time: {elapsed_ms:.3} ms ({engine_stats})");
                    }
                }
            }
            Err(e) => eprintln!("ERROR: {e}"),
        }
    }
    ExitCode::SUCCESS
}
