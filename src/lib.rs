//! # hermes — time-aware sub-trajectory clustering
//!
//! A Rust reproduction of *"Time-aware Sub-Trajectory Clustering in
//! Hermes@PostgreSQL"* (Tampakis et al., ICDE 2018) and of the two algorithms
//! it demonstrates: **S2T-Clustering** (EDBT 2017) and **QuT-Clustering** on
//! the **ReTraTree** index (DMKD 2017).
//!
//! This crate is a façade: it re-exports the workspace crates under one roof
//! so applications can depend on `hermes` alone.
//!
//! ```
//! use hermes::prelude::*;
//!
//! // Generate a small synthetic terminal-area scenario…
//! let scenario = AircraftScenarioBuilder {
//!     num_streams: 2,
//!     waves_per_stream: 1,
//!     flights_per_wave: 4,
//!     num_stragglers: 1,
//!     ..AircraftScenarioBuilder::default()
//! }
//! .build();
//!
//! // …load it into the engine and cluster it through a SQL session.
//! let mut engine = HermesEngine::new();
//! engine.create_dataset("flights").unwrap();
//! engine
//!     .load_trajectories("flights", scenario.trajectories.clone())
//!     .unwrap();
//! let mut session = Session::new(&mut engine);
//! let result = session
//!     .execute("SELECT S2T(flights, 2000, 0.35, 0.05, 120000, 5000);")
//!     .unwrap();
//! // Results are typed, columnar frames — strings appear only when rendering.
//! let frame = result.frame().unwrap();
//! assert!(frame.num_rows() >= 2);
//! assert!(matches!(frame.get(0, "start"), Some(Value::Timestamp(_))));
//! ```
//!
//! The workspace's deeper documentation lives beside the code:
//! `docs/ARCHITECTURE.md` (layer map, execution model, durability),
//! `docs/PROTOCOL.md` (the wire format) and `docs/STORAGE.md` (the on-disk
//! snapshot + WAL formats, normative).

pub use hermes_baselines as baselines;
pub use hermes_coord as coord;
pub use hermes_core as core;
pub use hermes_datagen as datagen;
pub use hermes_exec as exec;
pub use hermes_gist as gist;
pub use hermes_obs as obs;
pub use hermes_retratree as retratree;
pub use hermes_s2t as s2t;
pub use hermes_server as server;
pub use hermes_sql as sql;
pub use hermes_storage as storage;
pub use hermes_trajectory as trajectory;
pub use hermes_va as va;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use hermes_core::{DatasetInfo, EngineError, EngineStats, HermesEngine, SharedEngine};
    pub use hermes_datagen::{
        AircraftScenarioBuilder, MaritimeScenarioBuilder, NoiseModel, UrbanScenarioBuilder,
    };
    pub use hermes_exec::{ExecPolicy, Executor};
    pub use hermes_retratree::{QutParams, ReTraTree, ReTraTreeParams};
    pub use hermes_s2t::{run_s2t, ClusteringQuality, ClusteringResult, S2TParams};
    pub use hermes_server::{ClientError, HermesClient, Server, ServerConfig};
    pub use hermes_sql::{Frame, QueryOutcome, Session, SqlError, Value, ValueType};
    pub use hermes_trajectory::{
        Duration, Mbb, Point, SubTrajectory, TimeInterval, Timestamp, Trajectory,
    };
    pub use hermes_va::{cluster_map_svg, compare_runs, detect_holding_patterns, time_histogram};
}
