//! A std-only fault-injection TCP proxy for the failover tests.
//!
//! The proxy forwards byte streams between a client (the coordinator) and
//! one upstream (`hermes-serve` shard endpoint) and can, per direction and
//! on command, **delay** (hold bytes until released), **blackhole**
//! (swallow bytes), **reset mid-frame** or **truncate after K bytes**. All
//! fault transitions are *commands* that take effect at well-defined points
//! of the pump loop, and tests synchronize on observed proxy state
//! ([`FaultProxy::wait`] over byte counters and events) — never on elapsed
//! time — so every failure fires at a deterministic protocol position.
//!
//! Every state change appends to an in-memory event log (sequence-numbered,
//! no wall-clock timestamps) that a failing test dumps for the CI artifact
//! (`FAULTPROXY_LOG`).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How long [`FaultProxy::wait`] lets a predicate stay false before the
/// test is declared hung. Generous — it bounds a *failing* run, it never
/// paces a passing one.
const WAIT_CAP: Duration = Duration::from_secs(30);

/// A traffic direction through the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Bytes flowing client → upstream (requests).
    ToUpstream = 0,
    /// Bytes flowing upstream → client (responses).
    ToClient = 1,
}

/// The fault applied to one direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward everything (the default).
    None,
    /// Hold bytes: data is read from the source but not forwarded until the
    /// fault changes (then it flows under the new fault). Connections stay
    /// open — the peer just observes silence.
    Delay,
    /// Swallow bytes silently; connections stay open.
    Blackhole,
    /// Forward this many more bytes, then cut the carrying connection with
    /// an orderly FIN (mid-frame when the budget lands inside one).
    TruncateAfter(u64),
    /// Forward this many more bytes, then cut the carrying connection with
    /// an RST (`SO_LINGER 0`) — the classic kill-mid-frame.
    ResetAfter(u64),
}

struct State {
    faults: [Fault; 2],
    /// Bumped on every command; delay waiters block on it.
    generation: u64,
    /// False after [`FaultProxy::kill`]: new connections are accepted and
    /// immediately reset, so dials fail fast instead of hanging.
    accepting: bool,
    /// Bytes read from the source, per direction (counted even when the
    /// fault then swallows or holds them) — what tests synchronize on.
    received: [u64; 2],
    /// Bytes actually forwarded to the destination, per direction.
    forwarded: [u64; 2],
    open_conns: usize,
    events: Vec<String>,
    next_seq: u64,
}

/// A point-in-time view of the proxy for [`FaultProxy::wait`] predicates.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Bytes read from the source per direction (index by [`Dir`]).
    pub received: [u64; 2],
    /// Bytes forwarded to the destination per direction.
    pub forwarded: [u64; 2],
    /// Live proxied connections.
    pub open_conns: usize,
    /// Events logged so far.
    pub events: usize,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
}

impl Inner {
    fn log(&self, state: &mut State, message: String) {
        let seq = state.next_seq;
        state.next_seq += 1;
        state.events.push(format!("{seq:04} {message}"));
        self.cv.notify_all();
    }
}

struct ConnPair {
    id: u64,
    client: TcpStream,
    upstream: TcpStream,
}

impl ConnPair {
    /// Cuts both legs. With `reset`, arms `SO_LINGER 0` first so the peer
    /// sees an RST instead of an orderly FIN (Linux; elsewhere the cut
    /// degrades to a FIN, which the client still observes as a dead stream).
    fn sever(&self, reset: bool) {
        if reset {
            set_linger_zero(&self.client);
            set_linger_zero(&self.upstream);
        }
        let _ = self.client.shutdown(Shutdown::Both);
        let _ = self.upstream.shutdown(Shutdown::Both);
    }
}

/// The proxy: listens on an ephemeral port, pumps every accepted connection
/// to `upstream`, and applies the commanded [`Fault`]s.
pub struct FaultProxy {
    addr: SocketAddr,
    inner: Arc<Inner>,
    conns: Arc<Mutex<Vec<Arc<ConnPair>>>>,
    next_conn: Arc<AtomicU64>,
}

impl FaultProxy {
    /// Starts a proxy in front of `upstream`.
    pub fn start(upstream: SocketAddr) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                faults: [Fault::None; 2],
                generation: 0,
                accepting: true,
                received: [0; 2],
                forwarded: [0; 2],
                open_conns: 0,
                events: Vec::new(),
                next_seq: 0,
            }),
            cv: Condvar::new(),
        });
        let conns = Arc::new(Mutex::new(Vec::<Arc<ConnPair>>::new()));
        let proxy = FaultProxy {
            addr,
            inner: Arc::clone(&inner),
            conns: Arc::clone(&conns),
            next_conn: Arc::new(AtomicU64::new(0)),
        };
        let next_conn = Arc::clone(&proxy.next_conn);
        std::thread::spawn(move || accept_loop(listener, upstream, inner, conns, next_conn));
        Ok(proxy)
    }

    /// The address clients (the coordinator's shard map) should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Applies `fault` to both directions.
    pub fn set_fault(&self, fault: Fault) {
        self.set_fault_dir(Dir::ToUpstream, fault);
        self.set_fault_dir(Dir::ToClient, fault);
    }

    /// Applies `fault` to one direction.
    pub fn set_fault_dir(&self, dir: Dir, fault: Fault) {
        let mut state = self.inner.state.lock().unwrap();
        state.faults[dir as usize] = fault;
        state.generation += 1;
        self.inner
            .log(&mut state, format!("command {dir:?} {fault:?}"));
    }

    /// Back to transparent forwarding (releases held [`Fault::Delay`]
    /// bytes).
    pub fn clear(&self) {
        self.set_fault(Fault::None);
    }

    /// Cuts every live proxied connection right now; `reset` sends RSTs.
    pub fn sever_all(&self, reset: bool) {
        let conns: Vec<Arc<ConnPair>> = self.conns.lock().unwrap().clone();
        let mut state = self.inner.state.lock().unwrap();
        state.generation += 1;
        for conn in &conns {
            conn.sever(reset);
            self.inner.log(
                &mut state,
                format!("conn{} severed (reset={reset})", conn.id),
            );
        }
        self.inner.cv.notify_all();
    }

    /// Simulates killing the endpoint behind the proxy: every live
    /// connection is reset and every *new* connection is accepted and
    /// immediately reset, so redials fail fast and deterministically
    /// instead of hanging in a half-open handshake.
    pub fn kill(&self) {
        {
            let mut state = self.inner.state.lock().unwrap();
            state.accepting = false;
            self.inner.log(&mut state, "killed".to_string());
        }
        self.sever_all(true);
    }

    /// Undoes [`FaultProxy::kill`] and clears all faults.
    pub fn revive(&self) {
        {
            let mut state = self.inner.state.lock().unwrap();
            state.accepting = true;
            self.inner.log(&mut state, "revived".to_string());
        }
        self.clear();
    }

    /// Blocks until `pred` holds over the proxy [`Snapshot`] — the
    /// deterministic synchronization primitive: tests gate on *observed
    /// bytes/connections*, not on elapsed time. Panics (dumping the event
    /// log) if the predicate is still false after a generous cap, so a
    /// broken test fails loudly instead of hanging.
    pub fn wait(&self, what: &str, pred: impl Fn(&Snapshot) -> bool) {
        let mut state = self.inner.state.lock().unwrap();
        let deadline = std::time::Instant::now() + WAIT_CAP;
        loop {
            let snap = Snapshot {
                received: state.received,
                forwarded: state.forwarded,
                open_conns: state.open_conns,
                events: state.events.len(),
            };
            if pred(&snap) {
                return;
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                panic!(
                    "fault proxy: waited {WAIT_CAP:?} for '{what}' without it holding;\n\
                     snapshot: {snap:?}\nevents:\n{}",
                    state.events.join("\n")
                );
            }
            let (guard, _) = self.inner.cv.wait_timeout(state, left).unwrap();
            state = guard;
        }
    }

    /// A point-in-time reading of the proxy counters (for baselines;
    /// synchronization goes through [`FaultProxy::wait`]).
    pub fn snapshot(&self) -> Snapshot {
        let state = self.inner.state.lock().unwrap();
        Snapshot {
            received: state.received,
            forwarded: state.forwarded,
            open_conns: state.open_conns,
            events: state.events.len(),
        }
    }

    /// The sequence-numbered event log so far.
    pub fn events(&self) -> Vec<String> {
        self.inner.state.lock().unwrap().events.clone()
    }

    /// Appends this proxy's event log to the file named by the
    /// `FAULTPROXY_LOG` environment variable (no-op when unset) — the CI
    /// chaos step uploads that file as an artifact when the run fails.
    pub fn dump_event_log(&self, label: &str) {
        let Ok(path) = std::env::var("FAULTPROXY_LOG") else {
            return;
        };
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "== proxy {label} ({}) ==", self.addr);
            for event in self.events() {
                let _ = writeln!(f, "{event}");
            }
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    inner: Arc<Inner>,
    conns: Arc<Mutex<Vec<Arc<ConnPair>>>>,
    next_conn: Arc<AtomicU64>,
) {
    for stream in listener.incoming() {
        let Ok(client) = stream else { return };
        let accepting = {
            let mut state = inner.state.lock().unwrap();
            let accepting = state.accepting;
            if !accepting {
                inner.log(&mut state, "dial refused (killed)".to_string());
            }
            accepting
        };
        if !accepting {
            set_linger_zero(&client);
            drop(client);
            continue;
        }
        let Ok(up) = TcpStream::connect(upstream) else {
            let mut state = inner.state.lock().unwrap();
            inner.log(&mut state, "upstream dial failed".to_string());
            continue;
        };
        client.set_nodelay(true).ok();
        up.set_nodelay(true).ok();
        let id = next_conn.fetch_add(1, Ordering::Relaxed);
        let pair = Arc::new(ConnPair {
            id,
            client,
            upstream: up,
        });
        {
            let mut state = inner.state.lock().unwrap();
            state.open_conns += 1;
            inner.log(&mut state, format!("conn{id} open"));
        }
        conns.lock().unwrap().push(Arc::clone(&pair));
        for dir in [Dir::ToUpstream, Dir::ToClient] {
            let pair = Arc::clone(&pair);
            let inner = Arc::clone(&inner);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                pump(dir, &pair, &inner);
                // First pump out deregisters the pair; the second finds it
                // already gone.
                let mut registry = conns.lock().unwrap();
                if let Some(at) = registry.iter().position(|c| c.id == pair.id) {
                    registry.remove(at);
                    drop(registry);
                    pair.sever(false);
                    let mut state = inner.state.lock().unwrap();
                    state.open_conns -= 1;
                    inner.log(&mut state, format!("conn{} closed", pair.id));
                }
            });
        }
    }
}

/// One direction's pump: read a chunk, then ask the current fault what to
/// do with it. Faults are consulted *after* the read so `received` counts
/// what genuinely arrived — the synchronization signal — even when the
/// bytes are then held or dropped.
fn pump(dir: Dir, pair: &ConnPair, inner: &Inner) {
    let (src, dst): (&TcpStream, &TcpStream) = match dir {
        Dir::ToUpstream => (&pair.client, &pair.upstream),
        Dir::ToClient => (&pair.upstream, &pair.client),
    };
    let mut buf = [0u8; 4096];
    loop {
        let n = match (&mut &*src).read(&mut buf) {
            Ok(0) | Err(_) => {
                let _ = dst.shutdown(Shutdown::Write);
                let mut state = inner.state.lock().unwrap();
                inner.log(&mut state, format!("conn{} {dir:?} eof", pair.id));
                return;
            }
            Ok(n) => n,
        };
        let mut state = inner.state.lock().unwrap();
        state.received[dir as usize] += n as u64;
        inner.cv.notify_all();
        // Hold while delayed; the bytes flow (or drop) under whatever fault
        // is in force once the delay lifts.
        while let Fault::Delay = state.faults[dir as usize] {
            let generation = state.generation;
            inner.log(&mut state, format!("conn{} {dir:?} holding {n}B", pair.id));
            while state.generation == generation {
                state = inner.cv.wait(state).unwrap();
            }
        }
        let fault = state.faults[dir as usize];
        match fault {
            Fault::Delay => unreachable!("delay resolved above"),
            Fault::None => {
                state.forwarded[dir as usize] += n as u64;
                drop(state);
                if (&mut &*dst).write_all(&buf[..n]).is_err() {
                    let _ = src.shutdown(Shutdown::Read);
                    let mut state = inner.state.lock().unwrap();
                    inner.log(&mut state, format!("conn{} {dir:?} dst gone", pair.id));
                    return;
                }
            }
            Fault::Blackhole => {
                inner.log(
                    &mut state,
                    format!("conn{} {dir:?} swallowed {n}B", pair.id),
                );
            }
            Fault::TruncateAfter(budget) | Fault::ResetAfter(budget) => {
                let reset = matches!(fault, Fault::ResetAfter(_));
                let pass = (n as u64).min(budget) as usize;
                let left = budget - pass as u64;
                state.faults[dir as usize] = if reset {
                    Fault::ResetAfter(left)
                } else {
                    Fault::TruncateAfter(left)
                };
                state.forwarded[dir as usize] += pass as u64;
                let cut = pass < n || left == 0;
                if cut {
                    inner.log(
                        &mut state,
                        format!(
                            "conn{} {dir:?} cut after {pass}B (reset={reset}) mid-stream",
                            pair.id
                        ),
                    );
                }
                drop(state);
                if pass > 0 {
                    let _ = (&mut &*dst).write_all(&buf[..pass]);
                }
                if cut {
                    pair.sever(reset);
                    return;
                }
            }
        }
    }
}

/// Arms `SO_LINGER 0` so the next close sends an RST instead of a FIN.
/// Linux-only (the CI platform); elsewhere the cut degrades to a FIN.
#[cfg(target_os = "linux")]
fn set_linger_zero(stream: &TcpStream) {
    use std::os::unix::io::AsRawFd;
    #[repr(C)]
    struct Linger {
        l_onoff: i32,
        l_linger: i32,
    }
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const std::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_LINGER: i32 = 13;
    let linger = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            (&linger as *const Linger).cast(),
            std::mem::size_of::<Linger>() as u32,
        );
    }
}

#[cfg(not(target_os = "linux"))]
fn set_linger_zero(_stream: &TcpStream) {}
