//! Shared helpers for the integration tests.
//!
//! Each test binary that wants these declares `mod common;` — only the
//! items it actually uses are linked, so the module as a whole allows
//! dead code.
#![allow(dead_code)]

pub mod faultproxy;
