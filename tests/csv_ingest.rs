//! Integration test for the external-data ingestion path: geodetic CSV →
//! local projection → engine → clustering. This is the route a user with a
//! real GPS/ADS-B/AIS extract would take.

use hermes::prelude::*;
use hermes::trajectory::{parse_csv, parse_geo_csv, to_csv};
use std::fmt::Write as _;

/// Builds a geodetic CSV with two streams of co-moving aircraft east and
/// north of a reference point, plus one loner.
fn geo_csv() -> String {
    let mut csv = String::from("object_id,trajectory_id,lon,lat,t_ms\n");
    // Stream 1: four aircraft flying east along 51.5°N, a few hundred metres apart.
    for k in 0..4u64 {
        for i in 0..20i64 {
            let lon = -0.5 + 0.005 * i as f64;
            let lat = 51.5 + 0.001 * k as f64;
            let _ = writeln!(csv, "{k},{k},{lon},{lat},{}", i * 60_000);
        }
    }
    // Stream 2: three aircraft flying north along 0.2°E, later in the day.
    for k in 4..7u64 {
        for i in 0..20i64 {
            let lon = 0.2 + 0.001 * (k - 4) as f64;
            let lat = 51.0 + 0.004 * i as f64;
            let _ = writeln!(csv, "{k},{k},{lon},{lat},{}", 4 * 3_600_000 + i * 60_000);
        }
    }
    // A loner far away.
    for i in 0..20i64 {
        let _ = writeln!(
            csv,
            "9,9,{},{},{}",
            -1.5 + 0.005 * i as f64,
            50.2,
            i * 60_000
        );
    }
    csv
}

#[test]
fn geodetic_csv_flows_into_the_clustering_pipeline() {
    let (import, projection) = parse_geo_csv(&geo_csv());
    assert!(import.rejected.is_empty(), "{:?}", import.rejected);
    assert_eq!(import.trajectories.len(), 8);

    // Projected coordinates are metro-scale metres around the centroid.
    for t in &import.trajectories {
        for p in t.points() {
            assert!(p.x.abs() < 200_000.0 && p.y.abs() < 200_000.0);
        }
    }

    let params = S2TParams {
        sigma: 500.0,
        epsilon: 2_000.0,
        min_duration_ms: 5 * 60_000,
        ..S2TParams::default()
    };
    let outcome = run_s2t(&import.trajectories, &params);
    assert_eq!(
        outcome.result.num_clusters(),
        2,
        "the two streams must be found"
    );
    assert!(
        outcome.result.num_outliers() >= 1,
        "the loner must stay unclustered"
    );

    // Results map back to geographic coordinates near the input area.
    let rep = &outcome.result.clusters[0].representative;
    let geo = projection.unproject(&rep.points()[0]);
    assert!((-2.0..1.0).contains(&geo.lon));
    assert!((50.0..52.0).contains(&geo.lat));
}

#[test]
fn planar_csv_round_trip_preserves_the_dataset() {
    let scenario = AircraftScenarioBuilder {
        seed: 5,
        num_streams: 2,
        waves_per_stream: 1,
        flights_per_wave: 3,
        num_stragglers: 1,
        ..AircraftScenarioBuilder::default()
    }
    .build();
    let csv = to_csv(&scenario.trajectories);
    let import = parse_csv(&csv);
    assert!(import.rejected.is_empty());
    assert_eq!(import.trajectories.len(), scenario.trajectories.len());
    let total_points_in: usize = scenario.trajectories.iter().map(|t| t.len()).sum();
    let total_points_out: usize = import.trajectories.iter().map(|t| t.len()).sum();
    assert_eq!(total_points_in, total_points_out);

    // The re-imported dataset clusters the same way as the original.
    let params = S2TParams {
        sigma: 2_000.0,
        epsilon: 6_000.0,
        min_duration_ms: 5 * 60_000,
        ..S2TParams::default()
    };
    let a = run_s2t(&scenario.trajectories, &params);
    let b = run_s2t(&import.trajectories, &params);
    assert_eq!(a.result.num_clusters(), b.result.num_clusters());
    assert_eq!(a.result.num_outliers(), b.result.num_outliers());
}
