//! Cross-crate integration tests: the whole engine exercised end-to-end
//! through the public facade, the way the examples and the demo scenarios
//! use it.

use hermes::prelude::*;
use hermes::retratree::QutParams;
use hermes::sql;
use hermes::sql::{CommandTag, Value};
use hermes::va::{cluster_map_csv, space_time_cube_csv};

fn aircraft() -> hermes::datagen::AircraftScenario {
    AircraftScenarioBuilder {
        seed: 1234,
        num_streams: 3,
        waves_per_stream: 2,
        flights_per_wave: 5,
        num_stragglers: 3,
        holding_probability: 0.3,
        ..AircraftScenarioBuilder::default()
    }
    .build()
}

fn s2t_params() -> S2TParams {
    S2TParams {
        sigma: 2_000.0,
        epsilon: 6_000.0,
        min_duration_ms: 5 * 60_000,
        ..S2TParams::default()
    }
}

fn indexed_engine(scenario: &hermes::datagen::AircraftScenario) -> HermesEngine {
    let mut engine = HermesEngine::new();
    engine.create_dataset("flights").unwrap();
    engine
        .load_trajectories("flights", scenario.trajectories.clone())
        .unwrap();
    engine
        .build_index(
            "flights",
            ReTraTreeParams {
                chunk_duration: Duration::from_hours(2),
                s2t: s2t_params(),
                ..ReTraTreeParams::default()
            },
        )
        .unwrap();
    engine
}

#[test]
fn s2t_accounts_for_every_flight_and_finds_the_streams() {
    let scenario = aircraft();
    let outcome = run_s2t(&scenario.trajectories, &s2t_params());

    // Every sub-trajectory produced by segmentation ends up exactly once in a
    // cluster or in the outlier set.
    assert_eq!(
        outcome.result.total_sub_trajectories(),
        outcome.sub_trajectories.len()
    );
    // The arrival streams produce genuine co-movement: several clusters and a
    // high coverage.
    let quality = ClusteringQuality::compute(&outcome.result);
    assert!(
        quality.num_clusters >= 3,
        "expected several stream clusters, got {}",
        quality.num_clusters
    );
    assert!(quality.coverage > 0.5, "coverage {}", quality.coverage);
    // Stragglers should mostly stay unclustered.
    let clustered_stragglers = outcome
        .result
        .clusters
        .iter()
        .flat_map(|c| c.members.iter().chain(std::iter::once(&c.representative)))
        .filter(|s| scenario.straggler_ids.contains(&s.trajectory_id))
        .count();
    assert!(
        clustered_stragglers <= scenario.straggler_ids.len(),
        "stragglers must not dominate clusters"
    );
}

#[test]
fn indexed_and_naive_s2t_agree_through_the_engine() {
    let scenario = aircraft();
    let mut engine = HermesEngine::new();
    engine.create_dataset("flights").unwrap();
    engine
        .load_trajectories("flights", scenario.trajectories.clone())
        .unwrap();
    let fast = engine.run_s2t("flights", &s2t_params()).unwrap();
    let slow = engine.run_s2t_naive("flights", &s2t_params()).unwrap();
    assert_eq!(fast.result.num_clusters(), slow.result.num_clusters());
    assert_eq!(fast.result.num_outliers(), slow.result.num_outliers());
}

#[test]
fn qut_answers_arbitrary_windows_consistently() {
    let scenario = aircraft();
    let engine = indexed_engine(&scenario);
    let tree = engine.tree("flights").unwrap();
    let span = tree.lifespan().unwrap();
    let qut = QutParams {
        s2t: s2t_params(),
        merge_distance: 6_000.0,
        merge_gap: Duration::from_mins(30),
    };

    let mut previous_loaded = 0usize;
    for pct in [20, 40, 60, 80, 100] {
        let w = TimeInterval::new(
            span.start,
            span.start + Duration::from_millis(span.length().millis() * pct / 100),
        );
        let (result, stats) = engine.run_qut("flights", &w, &qut).unwrap();
        // Everything returned intersects the window.
        for c in &result.clusters {
            assert!(c.lifespan().intersects(&w));
        }
        for o in &result.outliers {
            assert!(o.lifespan().intersects(&w));
        }
        // Wider windows never touch less data.
        assert!(stats.loaded_sub_trajectories >= previous_loaded);
        previous_loaded = stats.loaded_sub_trajectories;
    }

    // The full window accounts for every stored piece.
    let (full, _) = engine.run_qut("flights", &span, &qut).unwrap();
    assert_eq!(full.total_sub_trajectories(), tree.total_population());
}

#[test]
fn qut_and_rebuild_agree_on_cluster_count_for_aligned_windows() {
    let scenario = aircraft();
    let engine = indexed_engine(&scenario);
    let span = engine.tree("flights").unwrap().lifespan().unwrap();
    let qut = QutParams {
        s2t: s2t_params(),
        merge_distance: 6_000.0,
        merge_gap: Duration::from_mins(30),
    };
    // Chunk-aligned window: first chunk only.
    let w = TimeInterval::new(span.start, span.start + Duration::from_hours(2));
    let (fast, fast_stats) = engine.run_qut("flights", &w, &qut).unwrap();
    let (slow, _) = engine
        .run_window_rebuild("flights", &w, &s2t_params())
        .unwrap();
    assert_eq!(fast_stats.reclustered_subchunks, 0);
    assert_eq!(fast.total_sub_trajectories(), slow.total_sub_trajectories());
    // Cluster counts may differ by cross-boundary merges only.
    assert!(fast.num_clusters() <= slow.num_clusters());
    assert!(fast.num_clusters() >= 1);
}

#[test]
fn incremental_inserts_keep_the_tree_queryable() {
    let scenario = aircraft();
    let (initial, streamed) = scenario
        .trajectories
        .split_at(scenario.trajectories.len() / 2);
    let mut engine = HermesEngine::new();
    engine.create_dataset("flights").unwrap();
    engine
        .load_trajectories("flights", initial.to_vec())
        .unwrap();
    engine
        .build_index(
            "flights",
            ReTraTreeParams {
                chunk_duration: Duration::from_hours(2),
                reorg_page_threshold: 2,
                s2t: s2t_params(),
                ..ReTraTreeParams::default()
            },
        )
        .unwrap();
    let before = engine.tree("flights").unwrap().total_population();
    for t in streamed {
        engine
            .load_trajectories("flights", vec![t.clone()])
            .unwrap();
    }
    let tree = engine.tree("flights").unwrap();
    assert!(tree.total_population() > before);
    let stats = tree.stats();
    assert_eq!(stats.inserted_trajectories, scenario.trajectories.len());
    // The full-span query still accounts for everything.
    let span = tree.lifespan().unwrap();
    let (result, _) = engine
        .run_qut(
            "flights",
            &span,
            &QutParams {
                s2t: s2t_params(),
                merge_distance: 6_000.0,
                merge_gap: Duration::from_mins(30),
            },
        )
        .unwrap();
    assert_eq!(result.total_sub_trajectories(), tree.total_population());
}

#[test]
fn sql_session_covers_the_demo_walkthrough() {
    let scenario = aircraft();
    let mut engine = HermesEngine::new();
    let created = sql::execute(&mut engine, "CREATE DATASET flights;").unwrap();
    assert_eq!(created.command().unwrap().tag, CommandTag::CreateDataset);
    engine
        .load_trajectories("flights", scenario.trajectories.clone())
        .unwrap();

    let info = sql::execute(&mut engine, "SELECT INFO(flights);").unwrap();
    assert_eq!(
        info.expect_frame("INFO").get(0, "trajectories"),
        Some(&Value::Int(scenario.trajectories.len() as i64))
    );

    let s2t = sql::execute(
        &mut engine,
        "SELECT S2T(flights, 2000, 0.35, 0.05, 300000, 6000);",
    )
    .unwrap();
    assert!(s2t.num_rows() > 2);
    // The cluster frame is typed: window bounds are timestamps, distances
    // floats — no strings anywhere before the display edge.
    let frame = s2t.expect_frame("S2T");
    assert!(matches!(frame.get(0, "start"), Some(Value::Timestamp(_))));
    assert!(matches!(
        frame.get(0, "mean_distance"),
        Some(Value::Float(_))
    ));

    let built = sql::execute(&mut engine, "BUILD INDEX ON flights WITH CHUNK 2 HOURS;").unwrap();
    assert_eq!(
        built.command().unwrap().affected,
        scenario.trajectories.len() as u64
    );
    let range = sql::execute(&mut engine, "SELECT RANGE(flights, 0, 3600000);").unwrap();
    let in_window = range
        .expect_frame("RANGE")
        .get(0, "sub_trajectories_in_window")
        .unwrap()
        .as_i64()
        .unwrap();
    assert!(in_window > 0);

    let qut = sql::execute(
        &mut engine,
        "SELECT QUT(flights, 0, 7200000, 0.35, 0.05, 300000, 6000, 1800000);",
    )
    .unwrap();
    assert!(qut.num_rows() >= 2);
    let rebuild = sql::execute(
        &mut engine,
        "SELECT QUT_REBUILD(flights, 0, 7200000, 0.35, 0.05, 300000);",
    )
    .unwrap();
    assert!(rebuild.num_rows() >= 2);

    let shown = sql::execute(&mut engine, "SHOW DATASETS;").unwrap();
    assert_eq!(
        shown.expect_frame("SHOW").column("dataset"),
        Some(&[Value::from("flights")][..])
    );
}

#[test]
fn prepared_qut_windows_execute_without_reparsing() {
    let scenario = aircraft();
    let mut engine = indexed_engine(&scenario);
    let span = engine.tree("flights").unwrap().lifespan().unwrap();
    let mut session = Session::new(&mut engine);

    let qut = session
        .prepare("SELECT QUT(flights, $1, $2, 0.35, 0.05, 300000, 6000, 1800000);")
        .unwrap();
    assert_eq!(session.stats().parses, 1);

    // Two different windows through the one cached plan.
    let half = span.start + Duration::from_millis(span.length().millis() / 2);
    let first = session
        .execute_prepared(qut, &[Value::Timestamp(span.start), Value::Timestamp(half)])
        .unwrap();
    let second = session
        .execute_prepared(
            qut,
            &[Value::Timestamp(span.start), Value::Timestamp(span.end)],
        )
        .unwrap();
    // The cache-hit/parse-count assertion: one parse, two executions.
    assert_eq!(session.stats().parses, 1);
    assert_eq!(session.stats().executions, 2);

    // Both executions answered from the tree, the wider window seeing at
    // least as much data.
    let loaded = |o: &hermes::sql::QueryOutcome| {
        o.stats()
            .unwrap()
            .get(0, "loaded_sub_trajectories")
            .unwrap()
            .as_i64()
            .unwrap()
    };
    assert!(loaded(&second) >= loaded(&first));
    assert!(first.num_rows() >= 1 && second.num_rows() >= 1);

    // Preparing the same text again is a cache hit, not a parse.
    let again = session
        .prepare("SELECT QUT(flights, $1, $2, 0.35, 0.05, 300000, 6000, 1800000);")
        .unwrap();
    assert_eq!(again, qut);
    assert_eq!(session.stats().parses, 1);
    assert_eq!(session.stats().cache_hits, 1);
}

#[test]
fn va_exports_are_well_formed_and_holding_patterns_are_found() {
    let scenario = aircraft();
    let outcome = run_s2t(&scenario.trajectories, &s2t_params());

    let svg = cluster_map_svg(&outcome.result, 800, 600);
    assert!(svg.starts_with("<svg") && svg.ends_with("</svg>\n"));
    let expected_polylines = outcome.result.total_sub_trajectories();
    assert_eq!(svg.matches("<polyline").count(), expected_polylines);

    let csv = cluster_map_csv(&outcome.result);
    assert!(csv.lines().count() > expected_polylines);

    let hist = time_histogram(&outcome.result, Duration::from_mins(15));
    assert!(hist.num_buckets() > 0);
    let totals = hist.totals();
    assert!(totals.iter().sum::<usize>() > 0);

    let cube = space_time_cube_csv("run", &outcome.result);
    assert!(cube.lines().count() > 1);

    // Holding flights exist in the scenario and at least half are detected.
    let holdings = detect_holding_patterns(&outcome.result, 1.4, 1.0);
    let detected: Vec<u64> = holdings.iter().map(|h| h.trajectory_id).collect();
    let recovered = scenario
        .holding_flight_ids
        .iter()
        .filter(|id| detected.contains(id))
        .count();
    assert!(
        recovered * 2 >= scenario.holding_flight_ids.len(),
        "recovered only {recovered} of {} holding flights",
        scenario.holding_flight_ids.len()
    );
}

#[test]
fn two_parameterisations_compare_like_figure_3() {
    let scenario = aircraft();
    let tight = run_s2t(&scenario.trajectories, &s2t_params());
    let loose = run_s2t(
        &scenario.trajectories,
        &S2TParams {
            sigma: 4_000.0,
            epsilon: 12_000.0,
            min_duration_ms: 5 * 60_000,
            ..S2TParams::default()
        },
    );
    let cmp = compare_runs(&tight.result, &loose.result, 6_000.0);
    assert!(
        !cmp.matched.is_empty(),
        "the dominant streams must appear in both runs"
    );
    assert!(cmp.agreement() > 0.0 && cmp.agreement() <= 1.0);
    // The looser run keeps at least as many flights clustered.
    assert!(
        ClusteringQuality::compute(&loose.result).coverage + 1e-9
            >= ClusteringQuality::compute(&tight.result).coverage * 0.8
    );
}
