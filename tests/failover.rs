//! Replication availability gate: a coordinator over 2 shards × 2 replicas,
//! with **every** endpoint behind a fault-injection proxy
//! (`common::faultproxy`), must keep answering QUT / S2T / RANGE
//! **byte-identically** to a single-node engine while primaries are killed
//! mid-query, stalled, truncated mid-frame or blackholed — zero
//! client-visible errors on the read path.
//!
//! Every fault fires at a deterministic protocol position: tests gate on
//! *observed proxy state* ([`FaultProxy::wait`] over byte counters), never
//! on elapsed time. The `chaos_smoke` test at the bottom is `#[ignore]`d
//! from the default run and driven by the CI chaos step, which uploads the
//! proxies' event logs (`FAULTPROXY_LOG`) as an artifact on failure.

mod common;

use common::faultproxy::{Dir, Fault, FaultProxy};
use hermes::coord::{
    validate_shard_map, CoordServer, CoordServerHandle, Coordinator, FailoverPolicy, ShardSpec,
};
use hermes::core::{HermesEngine, SharedEngine};
use hermes::exec::ExecPolicy;
use hermes::server::protocol::write_response;
use hermes::server::{ConnectOptions, HermesClient, Response, Server, ServerConfig, ServerHandle};
use hermes::sql::{self, Frame, QueryOutcome, Value};
use hermes::trajectory::Trajectory;
use hermes_bench::urban_with;
use std::time::Duration;

/// The seeded dataset plus the read statements the gate replays after every
/// fault. Same dense urban grid as `tests/sharding.rs`: ~28 min span,
/// 0.1-hour chunks, cut into 6-minute-aligned shard slices.
struct Workload {
    trajectories: Vec<Trajectory>,
    chunk_ms: i64,
    build: String,
    queries: Vec<String>,
    span: (i64, i64),
}

fn urban_workload() -> Workload {
    let trajectories = urban_with(36, 0xC0).trajectories;
    let lo = trajectories
        .iter()
        .map(|t| t.start_time().millis())
        .min()
        .expect("non-empty workload");
    let hi = trajectories
        .iter()
        .map(|t| t.lifespan().end.millis())
        .max()
        .expect("non-empty workload");
    let queries = vec![
        format!("SELECT QUT(data, {lo}, {hi}, 0.35, 0.05, 180000, 250, 600000);"),
        "SELECT S2T(data, 60, 0.35, 0.05, 180000, 250);".to_string(),
        format!("SELECT RANGE(data, {lo}, {hi});"),
    ];
    Workload {
        trajectories,
        chunk_ms: 360_000,
        build: "BUILD INDEX ON data WITH CHUNK 0.1 HOURS SIGMA 60 EPSILON 250;".to_string(),
        queries,
        span: (lo, hi),
    }
}

/// 2 shards × `replicas` endpoints, every endpoint behind its own
/// [`FaultProxy`]; `proxies[shard][0]` fronts the primary.
struct ReplicatedTopology {
    /// Backing `hermes-serve` processes, `servers[shard][replica]`.
    servers: Vec<Vec<ServerHandle>>,
    proxies: Vec<Vec<FaultProxy>>,
    coord: CoordServerHandle,
}

/// Connection options tuned for fault tests: no dial retries (the ladder is
/// the retry mechanism under test) and an optional per-request deadline.
fn fault_opts(read_timeout: Option<Duration>) -> ConnectOptions {
    ConnectOptions {
        retries: 0,
        connect_timeout: Duration::from_secs(2),
        read_timeout,
        ..ConnectOptions::default()
    }
}

/// Failover policy tuned for tests: tiny jittered backoff so ladders walk
/// fast, hedging only where a test turns it on.
fn fast_failover(hedge: Option<Duration>) -> FailoverPolicy {
    FailoverPolicy {
        hedge,
        backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
    }
}

fn spawn_replicated(
    workload: &Workload,
    replicas: usize,
    opts: ConnectOptions,
    failover: FailoverPolicy,
) -> ReplicatedTopology {
    let (lo, hi) = workload.span;
    // One interior cut on the chunk grid, strictly inside the span.
    let cut =
        ((lo + hi) / 2 + workload.chunk_ms / 2).div_euclid(workload.chunk_ms) * workload.chunk_ms;
    assert!(cut > lo && cut < hi, "cut {cut} outside span ({lo}, {hi})");
    let mut servers = Vec::new();
    let mut proxies = Vec::new();
    let mut specs = Vec::new();
    for (k, (start_ms, end_ms)) in [(i64::MIN, cut), (cut, i64::MAX)].into_iter().enumerate() {
        let mut shard_servers = Vec::with_capacity(replicas);
        let mut shard_proxies = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            let handle = Server::bind(
                "127.0.0.1:0",
                SharedEngine::default(),
                ServerConfig::default(),
            )
            .expect("bind shard")
            .spawn()
            .expect("spawn shard");
            let proxy = FaultProxy::start(handle.addr()).expect("start proxy");
            shard_servers.push(handle);
            shard_proxies.push(proxy);
        }
        specs.push(ShardSpec {
            name: format!("s{k}"),
            addr: shard_proxies[0].addr().to_string(),
            replicas: shard_proxies[1..]
                .iter()
                .map(|p| p.addr().to_string())
                .collect(),
            start_ms,
            end_ms,
        });
        servers.push(shard_servers);
        proxies.push(shard_proxies);
    }
    validate_shard_map(&mut specs).expect("valid shard map");
    // At least two fan-out threads: the out-of-order test needs the two
    // shard partials genuinely in flight at the same time.
    let policy = ExecPolicy::new(2).expect("two fan-out threads");
    let coordinator = Coordinator::with_failover(specs, opts, policy, failover);
    let coord = CoordServer::bind("127.0.0.1:0", coordinator, ServerConfig::default())
        .expect("bind coordinator")
        .spawn()
        .expect("spawn coordinator");
    ReplicatedTopology {
        servers,
        proxies,
        coord,
    }
}

impl ReplicatedTopology {
    /// Dumps every proxy's event log to `FAULTPROXY_LOG` (no-op when the
    /// variable is unset) — called from the chaos test's drop guard so a
    /// panicking run still leaves the artifact behind.
    fn dump_event_logs(&self) {
        for (k, shard_proxies) in self.proxies.iter().enumerate() {
            for (r, proxy) in shard_proxies.iter().enumerate() {
                proxy.dump_event_log(&format!("s{k} replica {r}"));
            }
        }
    }
}

/// The single-node reference: same data, same statements, one engine.
fn reference_bytes(workload: &Workload) -> Vec<Vec<u8>> {
    let mut engine = HermesEngine::new();
    engine.create_dataset("data").expect("create");
    engine
        .load_trajectories("data", workload.trajectories.clone())
        .expect("load");
    sql::execute(&mut engine, &workload.build).expect("build index");
    workload
        .queries
        .iter()
        .map(|q| row_bytes(sql::execute(&mut engine, q).expect(q)))
        .collect()
}

/// Creates, ingests and indexes the workload through the coordinator's wire
/// protocol; the writes fan to **every** endpoint, so all four replicas end
/// up byte-identical — the invariant every failover test leans on.
fn load_via(client: &mut HermesClient, workload: &Workload) {
    client.query("CREATE DATASET data;").expect("create");
    let accepted = client
        .ingest("data", &workload.trajectories)
        .expect("ingest");
    assert_eq!(accepted as usize, workload.trajectories.len());
    client.query(&workload.build).expect("build index");
}

/// The gate encoding: the result frame serialized exactly as the wire writes
/// it, with the wall-clock stats frame stripped.
fn row_bytes(outcome: QueryOutcome) -> Vec<u8> {
    let QueryOutcome::Rows { frame, .. } = outcome else {
        panic!("expected a rows response");
    };
    let mut buf = Vec::new();
    write_response(&mut buf, &Response::Rows { frame, stats: None }).expect("encode");
    buf
}

/// Replays every gate query and asserts byte-identity with the reference.
fn assert_gate(client: &mut HermesClient, workload: &Workload, want: &[Vec<u8>], when: &str) {
    for (q, want) in workload.queries.iter().zip(want) {
        let got = row_bytes(
            client
                .query(q)
                .unwrap_or_else(|e| panic!("{when}: `{q}`: {e}")),
        );
        assert!(got == *want, "{when}: `{q}` diverges from single-node");
    }
}

/// The `value` of one `SHOW STATS` row by scope and metric.
fn stat_value(frame: &Frame, scope: &str, metric: &str) -> i64 {
    (0..frame.num_rows())
        .find_map(|r| {
            match (
                frame.get(r, "scope"),
                frame.get(r, "metric"),
                frame.get(r, "value"),
            ) {
                (Some(Value::Text(s)), Some(Value::Text(m)), Some(Value::Int(v)))
                    if s == scope && m == metric =>
                {
                    Some(*v)
                }
                _ => None,
            }
        })
        .unwrap_or_else(|| panic!("SHOW STATS has no row ({scope}, {metric})"))
}

fn show_stats(client: &mut HermesClient) -> Frame {
    match client.query("SHOW STATS;").expect("stats") {
        QueryOutcome::Rows { frame, .. } => frame,
        other => panic!("expected rows, got {other:?}"),
    }
}

/// Held response bytes: the proxy has read more from the upstream than it
/// forwarded to the client — i.e. a response is in flight and held.
fn response_held(snap: &common::faultproxy::Snapshot) -> bool {
    snap.received[Dir::ToClient as usize] > snap.forwarded[Dir::ToClient as usize]
}

/// Baseline sanity: with every endpoint behind a transparent proxy and no
/// faults armed, the 2×2 topology answers byte-identically — the proxies
/// themselves add nothing.
#[test]
fn replicated_topology_is_byte_identical_through_proxies() {
    let workload = urban_workload();
    let want = reference_bytes(&workload);
    let topology = spawn_replicated(&workload, 2, fault_opts(None), fast_failover(None));
    let mut client = HermesClient::connect(topology.coord.addr()).expect("connect");
    load_via(&mut client, &workload);
    assert_gate(&mut client, &workload, &want, "no faults");
    // SHOW STATS carries per-endpoint liveness rows for every replica.
    let frame = show_stats(&mut client);
    for scope in ["coordinator.s0", "coordinator.s1"] {
        assert_eq!(stat_value(&frame, scope, "endpoints"), 2);
        assert_eq!(stat_value(&frame, scope, "endpoint.0.alive"), 1);
        assert_eq!(stat_value(&frame, scope, "endpoint.1.alive"), 1);
        assert_eq!(stat_value(&frame, scope, "failovers"), 0);
    }
}

/// The headline gate: the s0 primary is RST-killed **mid-query** — its
/// response is provably in flight (held by the proxy) when the connection is
/// cut — and the client still gets every answer byte-identical, with zero
/// visible errors. SHOW STATS records the failover and the dead endpoint.
#[test]
fn killing_the_primary_mid_query_fails_over_bit_exactly() {
    let workload = urban_workload();
    let want = reference_bytes(&workload);
    let topology = spawn_replicated(&workload, 2, fault_opts(None), fast_failover(None));
    let mut client = HermesClient::connect(topology.coord.addr()).expect("connect");
    load_via(&mut client, &workload);

    let primary = &topology.proxies[0][0];
    // Hold s0's next response at the proxy, then kill the primary exactly
    // when the response is mid-flight — deterministic, no timing involved.
    primary.set_fault_dir(Dir::ToClient, Fault::Delay);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            primary.wait("response held mid-frame", response_held);
            primary.kill();
        });
        assert_gate(&mut client, &workload, &want, "primary killed mid-query");
    });

    let frame = show_stats(&mut client);
    assert!(
        stat_value(&frame, "coordinator.s0", "failovers") >= 1,
        "the mid-query kill must be recorded as a failover"
    );
    assert_eq!(stat_value(&frame, "coordinator.s0", "endpoint.0.alive"), 0);
    assert_eq!(stat_value(&frame, "coordinator.s0", "endpoint.1.alive"), 1);
    assert_eq!(stat_value(&frame, "coordinator.s0", "alive"), 1);
    // s1 never failed over.
    assert_eq!(stat_value(&frame, "coordinator.s1", "failovers"), 0);
}

/// Hedged reads: the s0 primary stalls (responses held indefinitely until
/// released), so the hedge window elapses, the duplicate fires at the
/// replica and **wins** — deterministically, whatever the actual timing,
/// because the primary cannot answer while held. The client sees the
/// byte-exact answer; SHOW STATS shows hedges fired and won.
#[test]
fn hedged_reads_fire_and_win_when_the_primary_stalls() {
    let workload = urban_workload();
    let want = reference_bytes(&workload);
    let topology = spawn_replicated(
        &workload,
        2,
        fault_opts(None),
        fast_failover(Some(Duration::from_millis(20))),
    );
    let mut client = HermesClient::connect(topology.coord.addr()).expect("connect");
    load_via(&mut client, &workload);

    let primary = &topology.proxies[0][0];
    primary.set_fault_dir(Dir::ToClient, Fault::Delay);
    assert_gate(&mut client, &workload, &want, "primary stalled");
    // Release the stall before reading stats so the hedge losers drain.
    primary.clear();

    let frame = show_stats(&mut client);
    let fired = stat_value(&frame, "coordinator.s0", "hedges_fired");
    let won = stat_value(&frame, "coordinator.s0", "hedges_won");
    assert!(fired >= 1, "no hedge fired against the stalled primary");
    assert!(won >= 1, "the replica's hedge never won (fired {fired})");
    assert_eq!(stat_value(&frame, "coordinator.s0", "endpoint.1.alive"), 1);

    // With the stall lifted the topology keeps answering byte-exactly —
    // the ignored hedge losers left no desynchronized pooled connection.
    assert_gate(&mut client, &workload, &want, "stall released");
}

/// A response truncated mid-frame (FIN after 10 bytes — inside the frame
/// header of any gate answer) must fail over bit-exactly, and the broken
/// connection must never return to the pool: once the fault is cleared, the
/// same topology keeps answering byte-identically.
#[test]
fn a_mid_frame_truncation_fails_over_and_never_repools_the_connection() {
    let workload = urban_workload();
    let want = reference_bytes(&workload);
    let topology = spawn_replicated(&workload, 2, fault_opts(None), fast_failover(None));
    let mut client = HermesClient::connect(topology.coord.addr()).expect("connect");
    load_via(&mut client, &workload);

    let primary = &topology.proxies[0][0];
    primary.set_fault_dir(Dir::ToClient, Fault::TruncateAfter(10));
    assert_gate(
        &mut client,
        &workload,
        &want,
        "response truncated mid-frame",
    );
    primary.clear();
    // The desynced stream was dropped, not pooled: every subsequent query
    // on fresh primary connections is still byte-exact.
    assert_gate(&mut client, &workload, &want, "after truncation cleared");

    let frame = show_stats(&mut client);
    assert!(stat_value(&frame, "coordinator.s0", "failovers") >= 1);
}

/// A per-request deadline (`--read-timeout-ms`) on one shard only: s0's
/// primary blackholes its response, the read deadline fires for that
/// endpoint alone, and the read fails over to the replica — while s1 is
/// untouched. The merged answers stay byte-identical.
#[test]
fn a_deadline_on_one_shard_fails_over_to_its_replica() {
    let workload = urban_workload();
    let want = reference_bytes(&workload);
    let topology = spawn_replicated(
        &workload,
        2,
        fault_opts(Some(Duration::from_millis(500))),
        fast_failover(None),
    );
    let mut client = HermesClient::connect(topology.coord.addr()).expect("connect");
    load_via(&mut client, &workload);

    let primary = &topology.proxies[0][0];
    primary.set_fault_dir(Dir::ToClient, Fault::Blackhole);
    assert_gate(&mut client, &workload, &want, "primary blackholed");

    let frame = show_stats(&mut client);
    assert!(
        stat_value(&frame, "coordinator.s0", "failovers") >= 1,
        "the blackholed primary must have failed over on its deadline"
    );
    assert_eq!(stat_value(&frame, "coordinator.s1", "failovers"), 0);
}

/// Out-of-order shard completion: s0's partial is held while s1's completes,
/// then released — the pipelined downstream must reassemble the late partial
/// into a byte-identical merged answer, with no failover at all.
#[test]
fn out_of_order_shard_completion_merges_bit_exactly() {
    let workload = urban_workload();
    let want = reference_bytes(&workload);
    let topology = spawn_replicated(&workload, 2, fault_opts(None), fast_failover(None));
    let mut client = HermesClient::connect(topology.coord.addr()).expect("connect");
    load_via(&mut client, &workload);

    let s0 = &topology.proxies[0][0];
    let s1 = &topology.proxies[1][0];
    let s1_done = s1.snapshot().forwarded[Dir::ToClient as usize];
    s0.set_fault_dir(Dir::ToClient, Fault::Delay);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // Release s0 only after s1's partial has fully left its proxy —
            // s1 provably completes first, s0 finishes late.
            s1.wait("s1's partial forwarded", |snap| {
                snap.forwarded[Dir::ToClient as usize] > s1_done
            });
            s0.wait("s0's partial held", response_held);
            s0.clear();
        });
        assert_gate(&mut client, &workload, &want, "s0 partial delayed past s1");
    });

    let frame = show_stats(&mut client);
    // Slow is not broken: the late partial completed on the primary.
    assert_eq!(stat_value(&frame, "coordinator.s0", "failovers"), 0);
    assert_eq!(stat_value(&frame, "coordinator.s1", "failovers"), 0);
}

/// Writes are **all-or-error**: with one replica of s0 killed, a broadcast
/// write fails with an error naming the shard (never silently diverging the
/// replica set); reads keep serving from the live endpoints. After the
/// replica returns, fresh writes fan to the full set again.
#[test]
fn writes_are_all_or_error_while_a_replica_is_down() {
    let workload = urban_workload();
    let want = reference_bytes(&workload);
    let topology = spawn_replicated(&workload, 2, fault_opts(None), fast_failover(None));
    let mut client = HermesClient::connect(topology.coord.addr()).expect("connect");
    load_via(&mut client, &workload);

    let replica = &topology.proxies[0][1];
    replica.kill();
    match client.query("CREATE DATASET spare;") {
        Err(hermes::server::ClientError::Server { message, .. }) => assert!(
            message.contains("shard 's0'"),
            "the write error must name the shard with the dead replica: {message:?}"
        ),
        other => panic!("a write with a dead replica must fail all-or-error, got {other:?}"),
    }
    // The read path is unaffected — the primary serves.
    assert_gate(&mut client, &workload, &want, "replica down");

    replica.revive();
    client
        .query("CREATE DATASET spare2;")
        .expect("write after the replica returned");
    assert_gate(&mut client, &workload, &want, "replica revived");
}

/// The CI chaos step (`--ignored chaos_smoke`): repeated scripted kills of
/// alternating primaries, each mid-spanning-query, with revivals in between.
/// Zero failed statements, every frame byte-identical, and the proxies'
/// event logs land in `FAULTPROXY_LOG` for the failure artifact.
#[test]
#[ignore = "chaos smoke: run explicitly (CI chaos step)"]
fn chaos_smoke() {
    /// Dumps the event logs even when an assertion panics mid-run.
    struct LogGuard<'a>(&'a ReplicatedTopology);
    impl Drop for LogGuard<'_> {
        fn drop(&mut self) {
            self.0.dump_event_logs();
        }
    }

    let workload = urban_workload();
    let want = reference_bytes(&workload);
    let topology = spawn_replicated(&workload, 2, fault_opts(None), fast_failover(None));
    let guard = LogGuard(&topology);
    let mut client = HermesClient::connect(topology.coord.addr()).expect("connect");
    load_via(&mut client, &workload);

    // The endpoint each shard's reads currently land on: after a kill the
    // other replica takes over, so the next round kills *that* one — every
    // round provably cuts a connection with a response in flight.
    let mut serving = [0usize; 2];
    for round in 0..6 {
        let shard = round % 2;
        let idx = serving[shard];
        let victim = &topology.proxies[shard][idx];
        victim.set_fault_dir(Dir::ToClient, Fault::Delay);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                victim.wait("response held mid-frame", response_held);
                victim.kill();
            });
            assert_gate(
                &mut client,
                &workload,
                &want,
                &format!("round {round}: s{shard} endpoint {idx} killed mid-query"),
            );
        });
        victim.revive();
        serving[shard] = 1 - idx;
        assert_gate(
            &mut client,
            &workload,
            &want,
            &format!("round {round}: s{shard} endpoint {idx} revived"),
        );
    }

    let frame = show_stats(&mut client);
    for scope in ["coordinator.s0", "coordinator.s1"] {
        assert!(
            stat_value(&frame, scope, "failovers") >= 3,
            "{scope}: every scripted kill must be recorded as a failover"
        );
    }
    assert_eq!(topology.servers.iter().flatten().count(), 4);
    drop(guard);
}
