//! The flat hot path must not change a single bit of any answer.
//!
//! Three voting implementations coexist: the quadratic `naive_voting`, the
//! object-graph `indexed_voting` (`SegmentIndex`/`RTree3D`), and the SoA
//! `arena_voting` (`SegmentArena` + `PackedSegmentIndex`) the pipeline now
//! runs on. On seeded urban, maritime and aircraft datasets, at 1, 4 and 8
//! compute threads, all three must agree **exactly** — same `f64` bits in
//! every vote — and the arena-backed pipeline must reproduce the legacy
//! voting verbatim end to end.

use hermes::exec::{ExecPolicy, Executor};
use hermes::prelude::*;
use hermes::s2t::{
    arena_voting_with, indexed_voting_with, naive_voting_with, run_s2t, PackedSegmentIndex,
    SegmentArena, SegmentIndex, VotingProfile,
};

fn urban_trajectories() -> Vec<Trajectory> {
    UrbanScenarioBuilder {
        seed: 0x407_ACE,
        grid_size: 12,
        num_corridors: 3,
        vehicles_per_corridor: 5,
        num_random_vehicles: 7,
        ..UrbanScenarioBuilder::default()
    }
    .build()
    .trajectories
}

fn maritime_trajectories() -> Vec<Trajectory> {
    MaritimeScenarioBuilder {
        seed: 0x5EA_F00D,
        num_lanes: 3,
        vessels_per_lane: 6,
        num_rogues: 4,
        departure_spread_ms: 30 * 60_000,
        ..MaritimeScenarioBuilder::default()
    }
    .build()
    .trajectories
}

fn aircraft_trajectories() -> Vec<Trajectory> {
    AircraftScenarioBuilder {
        seed: 0xA1_4C4A,
        num_streams: 3,
        waves_per_stream: 2,
        flights_per_wave: 4,
        num_stragglers: 3,
        holding_probability: 0.3,
        ..AircraftScenarioBuilder::default()
    }
    .build()
    .trajectories
}

fn workloads() -> Vec<(&'static str, Vec<Trajectory>, S2TParams)> {
    let p = |sigma: f64, epsilon: f64, min_ms: i64| {
        S2TParams::builder()
            .sigma(sigma)
            .epsilon(epsilon)
            .min_duration_ms(min_ms)
            .build()
            .unwrap()
    };
    vec![
        ("urban", urban_trajectories(), p(60.0, 250.0, 3 * 60_000)),
        (
            "maritime",
            maritime_trajectories(),
            p(800.0, 2_500.0, 10 * 60_000),
        ),
        (
            "aircraft",
            aircraft_trajectories(),
            p(2_000.0, 6_000.0, 5 * 60_000),
        ),
    ]
}

/// The thread counts of the satellite task: serial plus two pool sizes.
const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

fn assert_profiles_bit_identical(a: &[VotingProfile], b: &[VotingProfile], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: profile count");
    for (pa, pb) in a.iter().zip(b.iter()) {
        assert_eq!(pa.trajectory_id, pb.trajectory_id, "{label}: ids");
        assert_eq!(pa.trajectory_index, pb.trajectory_index, "{label}: order");
        // Exact f64 equality — one flipped bit fails the suite.
        assert_eq!(pa.votes, pb.votes, "{label}: votes of {}", pa.trajectory_id);
    }
}

#[test]
fn arena_voting_is_bit_identical_to_indexed_and_naive_paths() {
    for (name, trajs, params) in workloads() {
        assert!(
            trajs.len() >= 10,
            "{name}: workload too small to be meaningful"
        );
        let arena = SegmentArena::build(&trajs);
        let packed = PackedSegmentIndex::build(&arena);
        let legacy = SegmentIndex::build(&trajs);
        assert_eq!(packed.len(), legacy.len(), "{name}: index cardinality");

        let serial = Executor::serial();
        let reference = arena_voting_with(&arena, &packed, &params, &serial);
        for threads in THREAD_COUNTS {
            let exec = Executor::new(ExecPolicy { threads });
            let label = format!("{name}@{threads}");
            assert_profiles_bit_identical(
                &arena_voting_with(&arena, &packed, &params, &exec),
                &reference,
                &format!("{label}/arena"),
            );
            assert_profiles_bit_identical(
                &indexed_voting_with(&trajs, &legacy, &params, &exec),
                &reference,
                &format!("{label}/indexed"),
            );
            assert_profiles_bit_identical(
                &naive_voting_with(&trajs, &params, &exec),
                &reference,
                &format!("{label}/naive"),
            );
        }
    }
}

#[test]
fn pipeline_runs_on_the_arena_and_reproduces_legacy_voting_verbatim() {
    for (name, trajs, params) in workloads() {
        let outcome = run_s2t(&trajs, &params);
        let legacy = SegmentIndex::build(&trajs);
        let via_legacy = indexed_voting_with(&trajs, &legacy, &params, &Executor::serial());
        assert_profiles_bit_identical(&outcome.profiles, &via_legacy, name);
        // The timing surface knows about the new index build phase.
        assert!(outcome.timings.index_build_ms >= 0.0);
        assert!(outcome.timings.total_ms() > 0.0);
    }
}

#[test]
fn packed_segment_index_matches_legacy_cardinality_and_geometry() {
    for (name, trajs, _params) in workloads() {
        let arena = SegmentArena::build(&trajs);
        let packed = PackedSegmentIndex::build(&arena);
        let expected: usize = trajs.iter().map(|t| t.num_segments()).sum();
        assert_eq!(arena.num_segments(), expected, "{name}");
        assert_eq!(packed.len(), expected, "{name}");
        // Every tree item maps back to the arena segment it was keyed by.
        for i in 0..packed.len() {
            let gs = *packed.tree().value(i) as usize;
            assert_eq!(
                packed.tree().item_mbb(i),
                arena.segment_mbb(gs),
                "{name}/{i}"
            );
        }
    }
}
