//! The flat hot path must not change a single bit of any answer.
//!
//! Three voting implementations coexist: the quadratic `naive_voting`, the
//! object-graph `indexed_voting` (`SegmentIndex`/`RTree3D`), and the SoA
//! `arena_voting` (`SegmentArena` + `PackedSegmentIndex`) the pipeline now
//! runs on. On seeded urban, maritime and aircraft datasets, at 1, 4 and 8
//! compute threads, all three must agree **exactly** — same `f64` bits in
//! every vote — and the arena-backed pipeline must reproduce the legacy
//! voting verbatim end to end.

use hermes::exec::{ExecPolicy, Executor};
use hermes::prelude::*;
use hermes::s2t::{
    arena_voting_with, indexed_voting_with, naive_voting_with, run_s2t, PackedSegmentIndex,
    SegmentArena, SegmentIndex, VotingProfile,
};

fn urban_trajectories() -> Vec<Trajectory> {
    UrbanScenarioBuilder {
        seed: 0x407_ACE,
        grid_size: 12,
        num_corridors: 3,
        vehicles_per_corridor: 5,
        num_random_vehicles: 7,
        ..UrbanScenarioBuilder::default()
    }
    .build()
    .trajectories
}

fn maritime_trajectories() -> Vec<Trajectory> {
    MaritimeScenarioBuilder {
        seed: 0x5EA_F00D,
        num_lanes: 3,
        vessels_per_lane: 6,
        num_rogues: 4,
        departure_spread_ms: 30 * 60_000,
        ..MaritimeScenarioBuilder::default()
    }
    .build()
    .trajectories
}

fn aircraft_trajectories() -> Vec<Trajectory> {
    AircraftScenarioBuilder {
        seed: 0xA1_4C4A,
        num_streams: 3,
        waves_per_stream: 2,
        flights_per_wave: 4,
        num_stragglers: 3,
        holding_probability: 0.3,
        ..AircraftScenarioBuilder::default()
    }
    .build()
    .trajectories
}

fn workloads() -> Vec<(&'static str, Vec<Trajectory>, S2TParams)> {
    let p = |sigma: f64, epsilon: f64, min_ms: i64| {
        S2TParams::builder()
            .sigma(sigma)
            .epsilon(epsilon)
            .min_duration_ms(min_ms)
            .build()
            .unwrap()
    };
    vec![
        ("urban", urban_trajectories(), p(60.0, 250.0, 3 * 60_000)),
        (
            "maritime",
            maritime_trajectories(),
            p(800.0, 2_500.0, 10 * 60_000),
        ),
        (
            "aircraft",
            aircraft_trajectories(),
            p(2_000.0, 6_000.0, 5 * 60_000),
        ),
    ]
}

/// The thread counts of the satellite task: serial plus two pool sizes.
const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

fn assert_profiles_bit_identical(a: &[VotingProfile], b: &[VotingProfile], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: profile count");
    for (pa, pb) in a.iter().zip(b.iter()) {
        assert_eq!(pa.trajectory_id, pb.trajectory_id, "{label}: ids");
        assert_eq!(pa.trajectory_index, pb.trajectory_index, "{label}: order");
        // Exact f64 equality — one flipped bit fails the suite.
        assert_eq!(pa.votes, pb.votes, "{label}: votes of {}", pa.trajectory_id);
    }
}

#[test]
fn arena_voting_is_bit_identical_to_indexed_and_naive_paths() {
    for (name, trajs, params) in workloads() {
        assert!(
            trajs.len() >= 10,
            "{name}: workload too small to be meaningful"
        );
        let arena = SegmentArena::build(&trajs);
        let packed = PackedSegmentIndex::build(&arena);
        let legacy = SegmentIndex::build(&trajs);
        assert_eq!(packed.len(), legacy.len(), "{name}: index cardinality");

        let serial = Executor::serial();
        let reference = arena_voting_with(&arena, &packed, &params, &serial);
        for threads in THREAD_COUNTS {
            let exec = Executor::new(ExecPolicy { threads });
            let label = format!("{name}@{threads}");
            assert_profiles_bit_identical(
                &arena_voting_with(&arena, &packed, &params, &exec),
                &reference,
                &format!("{label}/arena"),
            );
            assert_profiles_bit_identical(
                &indexed_voting_with(&trajs, &legacy, &params, &exec),
                &reference,
                &format!("{label}/indexed"),
            );
            assert_profiles_bit_identical(
                &naive_voting_with(&trajs, &params, &exec),
                &reference,
                &format!("{label}/naive"),
            );
        }
    }
}

#[test]
fn pipeline_runs_on_the_arena_and_reproduces_legacy_voting_verbatim() {
    for (name, trajs, params) in workloads() {
        let outcome = run_s2t(&trajs, &params);
        let legacy = SegmentIndex::build(&trajs);
        let via_legacy = indexed_voting_with(&trajs, &legacy, &params, &Executor::serial());
        assert_profiles_bit_identical(&outcome.profiles, &via_legacy, name);
        // The timing surface knows about the new index build phase.
        assert!(outcome.timings.index_build_ms >= 0.0);
        assert!(outcome.timings.total_ms() > 0.0);
    }
}

#[test]
fn packed_segment_index_matches_legacy_cardinality_and_geometry() {
    for (name, trajs, _params) in workloads() {
        let arena = SegmentArena::build(&trajs);
        let packed = PackedSegmentIndex::build(&arena);
        let expected: usize = trajs.iter().map(|t| t.num_segments()).sum();
        assert_eq!(arena.num_segments(), expected, "{name}");
        assert_eq!(packed.len(), expected, "{name}");
        // Every tree item maps back to the arena segment it was keyed by.
        for i in 0..packed.len() {
            let gs = *packed.tree().value(i) as usize;
            assert_eq!(
                packed.tree().item_mbb(i),
                arena.segment_mbb(gs),
                "{name}/{i}"
            );
        }
    }
}

/// Seeded sweep of the batched distance kernel across every dispatch width
/// and every remainder tail: `Scalar`, `Sse2` and `Avx2` lanes (each clamped
/// to what the hardware supports) must produce the same `f64` bits as the
/// scalar object-path kernel for every lane — including the `INFINITY`
/// sentinel standing in for `None` on disjoint lifespans. Batch lengths run
/// `1..=2·BATCH+1`, so every partial-vector tail a width can leave is hit,
/// plus one arena-sized batch.
#[test]
fn batch_kernel_is_bit_identical_across_lane_widths_and_tails() {
    use hermes::trajectory::{
        mean_sync_distance, mean_sync_distance_batch_at, SegLanes, SimdLevel, BATCH,
    };

    let levels = [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2];
    for (name, trajs, _params) in workloads() {
        let arena = SegmentArena::build(&trajs);
        let all: Vec<SegLanes> = (0..arena.num_segments())
            .map(|gs| arena.lanes(gs))
            .collect();

        // Deterministic LCG so failures reproduce; the state folds in the
        // workload size to decorrelate the three datasets.
        let mut state = 0x5EED_0BAD_u64 ^ (all.len() as u64);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };

        let mut sizes: Vec<usize> = (1..=2 * BATCH + 1).collect();
        sizes.push(all.len());
        for _ in 0..8 {
            let q = all[next() % all.len()];
            for &n in &sizes {
                // A contiguous wrap-around window starting at a random
                // offset: real runs of neighbours, arbitrary alignment.
                let start = next() % all.len();
                let cands: Vec<SegLanes> = (0..n).map(|i| all[(start + i) % all.len()]).collect();
                let x0: Vec<f64> = cands.iter().map(|c| c.x0).collect();
                let y0: Vec<f64> = cands.iter().map(|c| c.y0).collect();
                let x1: Vec<f64> = cands.iter().map(|c| c.x1).collect();
                let y1: Vec<f64> = cands.iter().map(|c| c.y1).collect();
                let t0: Vec<i64> = cands.iter().map(|c| c.t0).collect();
                let t1: Vec<i64> = cands.iter().map(|c| c.t1).collect();
                let mut out = vec![0.0f64; n];
                for level in levels {
                    mean_sync_distance_batch_at(level, &q, &x0, &y0, &x1, &y1, &t0, &t1, &mut out);
                    for (i, c) in cands.iter().enumerate() {
                        let reference = mean_sync_distance(&q, c).unwrap_or(f64::INFINITY);
                        assert_eq!(
                            out[i].to_bits(),
                            reference.to_bits(),
                            "{name}: lane {i} of {n} at {level:?} diverged from the scalar kernel"
                        );
                    }
                }
            }
        }
    }
}

/// Admissibility of the pruning ladder's distance lower bounds: for seeded
/// segment pairs from every workload, the per-segment box gap and the
/// clipped-lifespan gap ([`segment_clipped_gap2`]) must never exceed the
/// exact mean synchronized distance — in the squared form the ladder
/// actually compares (`gap² ≤ d²`), so a bound that fired where the kernel
/// would have won fails here. Also pins the disjoint-lifespan contract: the
/// clipped bound is `None` exactly when the kernel is.
#[test]
fn lower_bounds_never_exceed_exact_distance() {
    use hermes::gist::axis_gap;
    use hermes::s2t::segment_clipped_gap2;
    use hermes::trajectory::{mean_sync_distance, SegLanes};

    for (name, trajs, _params) in workloads() {
        let arena = SegmentArena::build(&trajs);
        let all: Vec<SegLanes> = (0..arena.num_segments())
            .map(|gs| arena.lanes(gs))
            .collect();

        let mut state = 0xB0_0B5_u64 ^ (all.len() as u64).rotate_left(17);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };

        let mut overlapping = 0usize;
        for draw in 0..20_000usize {
            let qi = next() % all.len();
            let q = all[qi];
            // Alternate uniform pairs with near-index pairs: neighbours in
            // arena order are the same or an adjacent trajectory, where
            // temporal overlap — the case both bounds actually guard — is
            // common even on wide-departure-spread workloads.
            let ci = if draw % 2 == 0 {
                next() % all.len()
            } else {
                (qi + next() % 129 + all.len() - 64) % all.len()
            };
            let c = all[ci];
            let exact = mean_sync_distance(&q, &c);
            let clipped = segment_clipped_gap2(&q, &c);
            assert_eq!(
                exact.is_none(),
                clipped.is_none(),
                "{name}: clipped bound and kernel disagree on lifespan overlap"
            );
            let (Some(d), Some(clip2)) = (exact, clipped) else {
                continue;
            };
            overlapping += 1;
            assert!(
                clip2 <= d * d,
                "{name}: clipped-lifespan bound {clip2} exceeds exact distance² {}",
                d * d
            );
            // The box gap the ladder's stage 2 uses: candidate box against
            // the query's full-lifespan box.
            let gx = axis_gap(
                c.x0.min(c.x1),
                c.x0.max(c.x1),
                q.x0.min(q.x1),
                q.x0.max(q.x1),
            );
            let gy = axis_gap(
                c.y0.min(c.y1),
                c.y0.max(c.y1),
                q.y0.min(q.y1),
                q.y0.max(q.y1),
            );
            let box2 = gx * gx + gy * gy;
            assert!(
                box2 <= d * d,
                "{name}: box gap {box2} exceeds exact distance² {}",
                d * d
            );
        }
        // Uniform pair sampling finds fewer temporal overlaps on workloads
        // with a wide departure spread (maritime); a couple of hundred live
        // pairs per dataset still exercises every branch of both bounds.
        assert!(
            overlapping > 100,
            "{name}: too few overlapping pairs ({overlapping}) for the sweep to mean anything"
        );
    }
}
