//! Determinism of intra-query parallel execution: for seeded urban and
//! maritime datasets, S2T and QuT answered with 2/4/8 compute threads must
//! be *identical* to the serial answer — same votes bit for bit, same
//! clusters, same members, same outliers, same counters. The scheduler may
//! interleave however it likes; the result may not change.

use hermes::exec::{ExecPolicy, Executor};
use hermes::prelude::*;
use hermes::retratree::{qut_clustering, qut_clustering_with, QutParams, ReTraTree};
use hermes::s2t::{run_s2t, run_s2t_with, S2TOutcome};

fn urban_trajectories() -> Vec<Trajectory> {
    UrbanScenarioBuilder {
        seed: 2024,
        grid_size: 12,
        num_corridors: 3,
        vehicles_per_corridor: 6,
        num_random_vehicles: 8,
        ..UrbanScenarioBuilder::default()
    }
    .build()
    .trajectories
}

fn urban_s2t() -> S2TParams {
    S2TParams::builder()
        .sigma(60.0)
        .epsilon(250.0)
        .min_duration_ms(3 * 60_000)
        .build()
        .unwrap()
}

fn maritime_trajectories() -> Vec<Trajectory> {
    MaritimeScenarioBuilder {
        seed: 0x5EA,
        num_lanes: 3,
        vessels_per_lane: 7,
        num_rogues: 4,
        departure_spread_ms: 30 * 60_000,
        ..MaritimeScenarioBuilder::default()
    }
    .build()
    .trajectories
}

fn maritime_s2t() -> S2TParams {
    S2TParams::builder()
        .sigma(800.0)
        .epsilon(2_500.0)
        .min_duration_ms(10 * 60_000)
        .build()
        .unwrap()
}

/// Every thread count the satellite task calls for.
const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

/// Full structural equality of two S2T outcomes (timings excluded — they are
/// wall-clock).
fn assert_outcomes_identical(serial: &S2TOutcome, parallel: &S2TOutcome, label: &str) {
    // Votes are compared exactly: same f64 bits, not "close enough".
    assert_eq!(
        serial.profiles, parallel.profiles,
        "{label}: voting profiles"
    );
    assert_eq!(
        serial.sub_trajectories.len(),
        parallel.sub_trajectories.len(),
        "{label}: segmentation"
    );
    for (a, b) in serial
        .sub_trajectories
        .iter()
        .zip(parallel.sub_trajectories.iter())
    {
        assert_eq!(a.sub.id, b.sub.id, "{label}: sub-trajectory ids");
        assert_eq!(a.sub.points(), b.sub.points(), "{label}: piece geometry");
        assert_eq!(a.mean_vote, b.mean_vote, "{label}: piece votes");
    }
    assert_eq!(
        serial.result.num_clusters(),
        parallel.result.num_clusters(),
        "{label}: cluster count"
    );
    for (a, b) in serial
        .result
        .clusters
        .iter()
        .zip(parallel.result.clusters.iter())
    {
        assert_eq!(a.id, b.id, "{label}: cluster ids");
        assert_eq!(a.representative.id, b.representative.id, "{label}: seeds");
        assert_eq!(
            a.representative_vote, b.representative_vote,
            "{label}: seed votes"
        );
        assert_eq!(
            a.members.iter().map(|m| m.id).collect::<Vec<_>>(),
            b.members.iter().map(|m| m.id).collect::<Vec<_>>(),
            "{label}: member sets"
        );
        assert_eq!(a.member_distances, b.member_distances, "{label}: distances");
    }
    assert_eq!(
        serial
            .result
            .outliers
            .iter()
            .map(|o| o.id)
            .collect::<Vec<_>>(),
        parallel
            .result
            .outliers
            .iter()
            .map(|o| o.id)
            .collect::<Vec<_>>(),
        "{label}: outliers"
    );
}

fn check_s2t_determinism(trajectories: &[Trajectory], params: &S2TParams, label: &str) {
    let serial = run_s2t(trajectories, params);
    assert!(
        serial.result.num_clusters() >= 1,
        "{label}: the workload must actually cluster"
    );
    for threads in THREAD_COUNTS {
        let exec = Executor::new(ExecPolicy { threads });
        let parallel = run_s2t_with(trajectories, params, &exec);
        assert_outcomes_identical(&serial, &parallel, &format!("{label}/threads={threads}"));
    }
}

#[test]
fn parallel_s2t_is_identical_to_serial_on_urban_data() {
    check_s2t_determinism(&urban_trajectories(), &urban_s2t(), "urban");
}

#[test]
fn parallel_s2t_is_identical_to_serial_on_maritime_data() {
    check_s2t_determinism(&maritime_trajectories(), &maritime_s2t(), "maritime");
}

fn check_qut_determinism(trajectories: &[Trajectory], s2t: S2TParams, label: &str) {
    let tree_params = ReTraTreeParams::builder()
        .chunk_duration(Duration::from_hours(2))
        .subchunks_per_chunk(4)
        .s2t(s2t.clone())
        .build()
        .unwrap();
    let qut_params = QutParams::builder()
        .s2t(s2t)
        .merge_distance(2_500.0)
        .merge_gap(Duration::from_mins(45))
        .build()
        .unwrap();

    // The index build itself must be deterministic under parallel
    // construction before query answers can be compared.
    let tree = ReTraTree::build_from(tree_params.clone(), trajectories);
    for threads in THREAD_COUNTS {
        let exec = Executor::new(ExecPolicy { threads });
        let parallel_tree = ReTraTree::build_from_with(tree_params.clone(), trajectories, &exec);
        assert_eq!(
            parallel_tree.describe(),
            tree.describe(),
            "{label}/threads={threads}: tree shape"
        );
        assert_eq!(
            parallel_tree.total_clusters(),
            tree.total_clusters(),
            "{label}/threads={threads}: level-3 entries"
        );
    }

    // A window cutting through sub-chunks exercises level-3 reuse, border
    // re-clustering and cross-boundary merging at once.
    let span = tree.lifespan().expect("populated tree");
    let w = TimeInterval::new(
        Timestamp(span.start.millis() + 20 * 60_000),
        Timestamp(span.end.millis() - 20 * 60_000),
    );
    let (serial, serial_stats) = qut_clustering(&tree, &w, &qut_params);
    for threads in THREAD_COUNTS {
        let exec = Executor::new(ExecPolicy { threads });
        let (parallel, stats) = qut_clustering_with(&tree, &w, &qut_params, &exec);
        let label = format!("{label}/threads={threads}");
        assert_eq!(
            parallel.num_clusters(),
            serial.num_clusters(),
            "{label}: clusters"
        );
        for (a, b) in serial.clusters.iter().zip(parallel.clusters.iter()) {
            assert_eq!(a.id, b.id, "{label}: cluster ids");
            assert_eq!(a.representative.id, b.representative.id, "{label}: seeds");
            assert_eq!(
                a.members.iter().map(|m| m.id).collect::<Vec<_>>(),
                b.members.iter().map(|m| m.id).collect::<Vec<_>>(),
                "{label}: members"
            );
            assert_eq!(a.member_distances, b.member_distances, "{label}: distances");
        }
        assert_eq!(
            serial.outliers.iter().map(|o| o.id).collect::<Vec<_>>(),
            parallel.outliers.iter().map(|o| o.id).collect::<Vec<_>>(),
            "{label}: outliers"
        );
        // Counters merged from per-worker QutStats stay exact.
        assert_eq!(
            stats.reused_subchunks, serial_stats.reused_subchunks,
            "{label}: reused"
        );
        assert_eq!(
            stats.reclustered_subchunks, serial_stats.reclustered_subchunks,
            "{label}: reclustered"
        );
        assert_eq!(
            stats.loaded_sub_trajectories, serial_stats.loaded_sub_trajectories,
            "{label}: loads"
        );
        assert_eq!(stats.merges, serial_stats.merges, "{label}: merges");
    }
}

#[test]
fn parallel_qut_is_identical_to_serial_on_urban_data() {
    check_qut_determinism(&urban_trajectories(), urban_s2t(), "urban");
}

#[test]
fn parallel_qut_is_identical_to_serial_on_maritime_data() {
    check_qut_determinism(&maritime_trajectories(), maritime_s2t(), "maritime");
}

#[test]
fn engine_level_queries_are_thread_count_invariant() {
    // The same comparison end-to-end through the SQL session, driving the
    // thread count with SET threads between runs.
    let mut engine = HermesEngine::with_exec_policy(ExecPolicy::serial());
    engine.create_dataset("sea").unwrap();
    engine
        .load_trajectories("sea", maritime_trajectories())
        .unwrap();
    let mut session = Session::new(&mut engine);
    session
        .execute("BUILD INDEX ON sea WITH CHUNK 2 HOURS SIGMA 800 EPSILON 2500;")
        .unwrap();
    let serial = session
        .execute("SELECT QUT(sea, 0, 7200000, 0.35, 0.05, 600000, 2500, 2700000);")
        .unwrap();
    let serial_frame = serial.expect_frame("QUT").clone();

    for threads in THREAD_COUNTS {
        session
            .execute(&format!("SET threads = {threads};"))
            .unwrap();
        let outcome = session
            .execute("SELECT QUT(sea, 0, 7200000, 0.35, 0.05, 600000, 2500, 2700000);")
            .unwrap();
        assert_eq!(
            outcome.expect_frame("QUT"),
            &serial_frame,
            "threads = {threads}"
        );
    }
}
