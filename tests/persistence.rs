//! Durability integration tests: snapshot + WAL persistence exercised
//! end-to-end through the public facade.
//!
//! The two headline properties of `docs/STORAGE.md` are asserted here:
//!
//! * **Restart equivalence** — after ingest + `BUILD INDEX` (+ optionally
//!   `CHECKPOINT`), an engine reopened from its data directory answers
//!   QUT/S2T/RANGE/HISTOGRAM with frames identical to an engine that never
//!   restarted.
//! * **Torn-tail recovery** — killing the process mid-WAL-append (simulated
//!   by truncating the log at *every byte boundary* of the tail record)
//!   recovers exactly the last durable prefix, never an error, never a
//!   partial record.

use hermes::prelude::*;
use hermes::sql;
use std::fs;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hermes-persistence-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small seeded urban workload — the determinism-harness dataset family
/// (the `hermes-bench` `urban_with` recipe, shrunk).
fn urban(vehicles_per_corridor: usize, seed: u64) -> Vec<Trajectory> {
    UrbanScenarioBuilder {
        seed,
        grid_size: 12,
        num_corridors: 3,
        vehicles_per_corridor,
        num_random_vehicles: 4,
        ..UrbanScenarioBuilder::default()
    }
    .build()
    .trajectories
}

fn s2t_params() -> S2TParams {
    S2TParams {
        sigma: 150.0,
        epsilon: 500.0,
        min_duration_ms: 2 * 60_000,
        ..S2TParams::default()
    }
}

fn tree_params() -> ReTraTreeParams {
    ReTraTreeParams {
        chunk_duration: Duration::from_hours(2),
        subchunks_per_chunk: 4,
        reorg_page_threshold: 2,
        buffer_frames: 128,
        s2t: s2t_params(),
    }
}

fn populate(engine: &mut HermesEngine, trajectories: &[Trajectory]) {
    engine.create_dataset("data").unwrap();
    engine
        .load_trajectories("data", trajectories.to_vec())
        .unwrap();
    engine.build_index("data", tree_params()).unwrap();
}

/// The read-side queries both engines must answer identically. QUT, the
/// rebuild baseline, a temporal range count and the VA histogram all reach
/// deep into the restored ReTraTree (cluster entries, leaf indexes, stored
/// partitions).
const QUERIES: &[&str] = &[
    "SELECT QUT(data, 0, 1800000, 0.35, 0.05, 120000, 500, 900000);",
    "SELECT QUT(data, 600000, 2400000, 0.35, 0.05, 120000, 500, 900000);",
    "SELECT QUT_REBUILD(data, 0, 1800000, 0.35, 0.05, 120000);",
    "SELECT RANGE(data, 0, 3600000);",
    "SELECT HISTOGRAM(data, 0, 1800000, 600000);",
    "SELECT S2T(data, 150, 0.35, 0.05, 120000, 500);",
    "SELECT INFO(data);",
];

/// Asserts that both engines answer every read query with an identical
/// result frame (the per-query stats frame carries wall-clock timings and is
/// deliberately excluded).
fn assert_same_answers(a: &mut HermesEngine, b: &mut HermesEngine, context: &str) {
    for query in QUERIES {
        let fa = sql::execute(a, query)
            .unwrap_or_else(|e| panic!("{context}: {query} on reference: {e}"))
            .expect_frame(query)
            .clone();
        let fb = sql::execute(b, query)
            .unwrap_or_else(|e| panic!("{context}: {query} on restored: {e}"))
            .expect_frame(query)
            .clone();
        assert_eq!(fa, fb, "{context}: {query}");
        // Frame equality compares typed values; the Debug rendering also
        // pins the float formatting, catching 0.0 / -0.0 style divergence.
        assert_eq!(format!("{fa:?}"), format!("{fb:?}"), "{context}: {query}");
    }
}

#[test]
fn restart_equivalence_after_checkpoint() {
    let dir = tmp_dir("restart-ckpt");
    let trajectories = urban(6, 0x5EED);

    // The never-restarted reference engine.
    let mut reference = HermesEngine::new();
    populate(&mut reference, &trajectories);

    // The durable engine: same operations, then CHECKPOINT, then "crash".
    {
        let mut durable = HermesEngine::open(&dir).unwrap();
        populate(&mut durable, &trajectories);
        let outcome = sql::execute(&mut durable, "CHECKPOINT;").unwrap();
        assert!(outcome.command().unwrap().affected > 0);
        // Pre-restart sanity: durable == reference while still live.
        assert_same_answers(&mut reference, &mut durable, "pre-restart");
    }

    // Reopen purely from the snapshot (the WAL is just a header now).
    let mut restored = HermesEngine::open(&dir).unwrap();
    assert!(restored.is_durable());
    let stats = restored.stats();
    assert!(stats.snapshot_bytes > 0);
    assert_eq!(stats.wal_bytes, 8);
    assert_eq!(
        restored.dataset_info("data").unwrap(),
        reference.dataset_info("data").unwrap()
    );
    assert!(restored.dataset_info("data").unwrap().indexed);
    assert_same_answers(&mut reference, &mut restored, "post-restart");

    // The restored engine is fully live: more ingest + a fresh checkpoint.
    restored
        .load_trajectories("data", urban(1, 0xFEED))
        .unwrap();
    restored.checkpoint().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_equivalence_from_wal_replay_alone() {
    let dir = tmp_dir("restart-wal");
    let trajectories = urban(4, 0xAC);

    let mut reference = HermesEngine::new();
    populate(&mut reference, &trajectories);

    {
        let mut durable = HermesEngine::open(&dir).unwrap();
        populate(&mut durable, &trajectories);
        // No checkpoint: create + ingest + BUILD INDEX all replay from the
        // log, the index by deterministically re-running the build.
    }
    let mut restored = HermesEngine::open(&dir).unwrap();
    assert_eq!(restored.stats().snapshot_bytes, 0, "no snapshot exists");
    assert!(restored.dataset_info("data").unwrap().indexed);
    assert_same_answers(&mut reference, &mut restored, "wal-replay");
    fs::remove_dir_all(&dir).ok();
}

/// The single `wal-*.hlog` file of a data directory.
fn wal_file(dir: &Path) -> PathBuf {
    let mut wals: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".hlog"))
        })
        .collect();
    assert_eq!(wals.len(), 1, "exactly one WAL per data directory");
    wals.pop().unwrap()
}

/// Copies a data directory, truncating its WAL to `wal_len` bytes — the
/// on-disk state a crash at that exact byte would leave behind.
fn crashed_copy(src: &Path, dst: &Path, wal_len: u64) -> PathBuf {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap().flatten() {
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from == wal_file(src) {
            let bytes = fs::read(&from).unwrap();
            fs::write(&to, &bytes[..wal_len as usize]).unwrap();
        } else {
            fs::copy(&from, &to).unwrap();
        }
    }
    dst.to_path_buf()
}

#[test]
fn torn_tail_sweep_recovers_the_durable_prefix() {
    let dir = tmp_dir("torn-src");
    let scratch = tmp_dir("torn-dst");
    let first = urban(2, 0x01);
    let second: Vec<Trajectory> = urban(2, 0x02).into_iter().take(1).collect();

    let tail_start;
    {
        let mut e = HermesEngine::open(&dir).unwrap();
        e.create_dataset("data").unwrap();
        e.load_trajectories("data", first.clone()).unwrap();
        tail_start = fs::metadata(wal_file(&dir)).unwrap().len();
        e.load_trajectories("data", second).unwrap();
    }
    let full_len = fs::metadata(wal_file(&dir)).unwrap().len();
    assert!(full_len > tail_start, "the tail record must exist");

    // Kill mid-append at every byte boundary of the tail record.
    for cut in tail_start..full_len {
        let crashed = crashed_copy(&dir, &scratch, cut);
        let e = HermesEngine::open(&crashed)
            .unwrap_or_else(|err| panic!("recovery after a cut at byte {cut} must succeed: {err}"));
        let info = e.dataset_info("data").unwrap();
        assert_eq!(
            info.num_trajectories,
            first.len(),
            "cut at byte {cut}: exactly the durable prefix survives"
        );
        assert_eq!(e.trajectories("data").unwrap(), first.as_slice());
    }

    // The untouched directory recovers everything, including the tail.
    let e = HermesEngine::open(&dir).unwrap();
    assert_eq!(
        e.dataset_info("data").unwrap().num_trajectories,
        first.len() + 1
    );
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&scratch).ok();
}

#[test]
fn torn_tail_after_a_checkpoint_recovers_snapshot_plus_prefix() {
    let dir = tmp_dir("torn-ckpt-src");
    let scratch = tmp_dir("torn-ckpt-dst");
    let base = urban(3, 0x10);
    let after_a: Vec<Trajectory> = urban(2, 0x11).into_iter().take(2).collect();
    let after_b: Vec<Trajectory> = urban(2, 0x12).into_iter().take(1).collect();

    let tail_start;
    {
        let mut e = HermesEngine::open(&dir).unwrap();
        populate(&mut e, &base);
        e.checkpoint().unwrap();
        e.load_trajectories("data", after_a.clone()).unwrap();
        tail_start = fs::metadata(wal_file(&dir)).unwrap().len();
        e.load_trajectories("data", after_b).unwrap();
    }
    let full_len = fs::metadata(wal_file(&dir)).unwrap().len();

    // A denser-than-every-byte sweep is already covered above; here every
    // 7th boundary keeps the checkpoint interaction fast but thorough.
    for cut in (tail_start..full_len).step_by(7) {
        let crashed = crashed_copy(&dir, &scratch, cut);
        let e = HermesEngine::open(&crashed).unwrap();
        let info = e.dataset_info("data").unwrap();
        assert_eq!(
            info.num_trajectories,
            base.len() + after_a.len(),
            "cut at byte {cut}: snapshot + durable prefix"
        );
        assert!(info.indexed, "the index came back from the snapshot");
    }
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&scratch).ok();
}

#[test]
fn persistence_stats_surface_through_show_stats() {
    let dir = tmp_dir("stats");
    let mut e = HermesEngine::open(&dir).unwrap();
    e.create_dataset("data").unwrap();
    e.load_trajectories("data", urban(2, 0x77)).unwrap();

    let metric = |e: &mut HermesEngine, name: &str| -> i64 {
        let outcome = sql::execute(e, "SHOW STATS;").unwrap();
        let frame = outcome.expect_frame("SHOW STATS");
        let value = frame
            .rows()
            .find(|row| row[1].as_str() == Some(name))
            .and_then(|row| row[2].as_i64())
            .unwrap_or_else(|| panic!("metric {name} missing"));
        value
    };
    assert_eq!(metric(&mut e, "durable"), 1);
    assert!(metric(&mut e, "wal_bytes") > 8);
    assert_eq!(metric(&mut e, "snapshot_bytes"), 0);
    assert_eq!(metric(&mut e, "last_checkpoint_ms"), 0);

    sql::execute(&mut e, "CHECKPOINT;").unwrap();
    assert!(metric(&mut e, "snapshot_bytes") > 0);
    assert_eq!(metric(&mut e, "wal_bytes"), 8);
    fs::remove_dir_all(&dir).ok();
}
