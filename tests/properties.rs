//! Property-based tests (proptest) over the core data structures and the
//! invariants the clustering pipeline relies on.

use hermes::gist::RTree3D;
use hermes::s2t::{
    cluster_around_representatives, segment_trajectory, select_representatives, S2TParams,
    VotingProfile,
};
use hermes::sql;
use hermes::storage::{decode_sub_trajectory, encode_sub_trajectory};
use hermes::trajectory::{
    interpolate, Mbb, Point, SubTrajectory, SubTrajectoryId, TimeInterval, Timestamp, Trajectory,
};
use proptest::prelude::*;

// --- generators -------------------------------------------------------------

fn arb_point() -> impl Strategy<Value = Point> {
    (-1_000.0f64..1_000.0, -1_000.0f64..1_000.0, 0i64..10_000_000)
        .prop_map(|(x, y, t)| Point::new(x, y, Timestamp(t)))
}

fn arb_mbb() -> impl Strategy<Value = Mbb> {
    (arb_point(), arb_point()).prop_map(|(a, b)| {
        let mut m = Mbb::from_point(&a);
        m.expand_point(&b);
        m
    })
}

/// A valid trajectory: strictly increasing times, finite coordinates.
fn arb_trajectory() -> impl Strategy<Value = Trajectory> {
    (
        2usize..40,
        -500.0f64..500.0,
        -500.0f64..500.0,
        1i64..120_000,
    )
        .prop_flat_map(|(n, x0, y0, step)| {
            (
                proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), n),
                Just((x0, y0, step)),
            )
        })
        .prop_map(|(deltas, (x0, y0, step))| {
            let mut pts = Vec::with_capacity(deltas.len());
            let (mut x, mut y) = (x0, y0);
            for (i, (dx, dy)) in deltas.into_iter().enumerate() {
                x += dx;
                y += dy;
                pts.push(Point::new(x, y, Timestamp(i as i64 * step)));
            }
            Trajectory::new(1, 1, pts).expect("generated trajectories are valid")
        })
}

// --- Mbb laws ----------------------------------------------------------------

proptest! {
    #[test]
    fn mbb_union_is_commutative_and_contains_both(a in arb_mbb(), b in arb_mbb()) {
        let u1 = a.union(&b);
        let u2 = b.union(&a);
        prop_assert_eq!(u1, u2);
        prop_assert!(u1.contains(&a));
        prop_assert!(u1.contains(&b));
        prop_assert!(u1.volume(1.0) + 1e-9 >= a.volume(1.0).max(b.volume(1.0)));
    }

    #[test]
    fn mbb_intersection_is_contained_in_both(a in arb_mbb(), b in arb_mbb()) {
        match a.intersection(&b) {
            Some(i) => {
                prop_assert!(a.contains(&i));
                prop_assert!(b.contains(&i));
                prop_assert!(a.intersects(&b));
            }
            None => prop_assert!(!a.intersects(&b)),
        }
    }

    #[test]
    fn mbb_min_distance_is_zero_iff_intersecting(a in arb_mbb(), b in arb_mbb()) {
        let d = a.min_distance(&b, 1.0);
        if a.intersects(&b) {
            prop_assert!(d == 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }
}

// --- R-tree equivalence with a linear scan ------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn rtree_range_query_matches_linear_scan(
        boxes in proptest::collection::vec(arb_mbb(), 1..120),
        query in arb_mbb(),
    ) {
        let mut tree = RTree3D::new();
        for (i, b) in boxes.iter().enumerate() {
            tree.insert(*b, i);
        }
        let mut from_tree: Vec<usize> = tree.query_intersecting(&query).into_iter().copied().collect();
        from_tree.sort_unstable();
        let expected: Vec<usize> = boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| b.intersects(&query))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(from_tree, expected);
    }

    #[test]
    fn rtree_bulk_load_matches_incremental(
        boxes in proptest::collection::vec(arb_mbb(), 1..120),
        query in arb_mbb(),
    ) {
        let items: Vec<(Mbb, usize)> = boxes.iter().copied().enumerate().map(|(i, b)| (b, i)).collect();
        let bulk = RTree3D::bulk_load(items.clone());
        let mut incr = RTree3D::new();
        for (b, v) in items {
            incr.insert(b, v);
        }
        let mut a: Vec<usize> = bulk.query_intersecting(&query).into_iter().copied().collect();
        let mut b: Vec<usize> = incr.query_intersecting(&query).into_iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert_eq!(bulk.len(), incr.len());
    }
}

// --- interpolation -------------------------------------------------------------

proptest! {
    #[test]
    fn interpolated_positions_stay_inside_the_mbb(traj in arb_trajectory(), f in 0.0f64..1.0) {
        let span = traj.lifespan();
        let t = Timestamp(span.start.millis()
            + ((span.end.millis() - span.start.millis()) as f64 * f) as i64);
        let p = traj.position_at(t).expect("t is inside the lifespan");
        let mbb = traj.mbb();
        prop_assert!(p.x >= mbb.x_min - 1e-9 && p.x <= mbb.x_max + 1e-9);
        prop_assert!(p.y >= mbb.y_min - 1e-9 && p.y <= mbb.y_max + 1e-9);
        prop_assert!(interpolate::position_at(traj.points(), Timestamp(span.end.millis() + 1)).is_none());
    }

    #[test]
    fn temporal_slice_is_within_window_and_lossless_on_full_window(traj in arb_trajectory()) {
        let span = traj.lifespan();
        let full = traj.temporal_slice(&span).unwrap();
        prop_assert_eq!(full.points(), traj.points());

        let mid = Timestamp((span.start.millis() + span.end.millis()) / 2);
        if mid > span.start {
            let w = TimeInterval::new(span.start, mid);
            if let Ok(slice) = traj.temporal_slice(&w) {
                prop_assert!(slice.start_time() >= w.start);
                prop_assert!(slice.end_time() <= w.end);
            }
        }
    }
}

// --- segmentation invariants ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn segmentation_partitions_the_trajectory_exactly(
        traj in arb_trajectory(),
        tau in 0.05f64..0.9,
        votes_seed in 0u64..1000,
    ) {
        let votes: Vec<f64> = (0..traj.num_segments())
            .map(|i| ((i as u64 * 2654435761 + votes_seed) % 100) as f64 / 10.0)
            .collect();
        let profile = VotingProfile { trajectory_id: traj.id, trajectory_index: 0, votes };
        let params = S2TParams { tau, min_duration_ms: 0, ..S2TParams::default() };
        let subs = segment_trajectory(&traj, &profile, &params);

        prop_assert!(!subs.is_empty());
        // Pieces tile the trajectory: boundaries chain, segments sum up.
        prop_assert_eq!(subs.first().unwrap().sub.start_time(), traj.start_time());
        prop_assert_eq!(subs.last().unwrap().sub.end_time(), traj.end_time());
        for w in subs.windows(2) {
            prop_assert_eq!(w[0].sub.end_time(), w[1].sub.start_time());
        }
        let total_segments: usize = subs.iter().map(|s| s.sub.num_segments()).sum();
        prop_assert_eq!(total_segments, traj.num_segments());
    }
}

// --- clustering invariants ---------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn every_sub_trajectory_is_clustered_or_outlier_exactly_once(
        ys in proptest::collection::vec(0.0f64..5_000.0, 2..25),
        votes in proptest::collection::vec(0.0f64..5.0, 2..25),
        epsilon in 50.0f64..2_000.0,
    ) {
        let n = ys.len().min(votes.len());
        let subs: Vec<hermes::s2t::VotedSubTrajectory> = (0..n)
            .map(|i| {
                let sub = SubTrajectory::from_points(
                    SubTrajectoryId::new(i as u64, 0),
                    i as u64,
                    i as u64,
                    (0..5)
                        .map(|k| Point::new(k as f64 * 100.0, ys[i], Timestamp(k as i64 * 60_000)))
                        .collect(),
                );
                hermes::s2t::VotedSubTrajectory { sub, mean_vote: votes[i], max_vote: votes[i] }
            })
            .collect();
        let params = S2TParams { epsilon, ..S2TParams::default() };
        let reps = select_representatives(&subs, &params);
        let result = cluster_around_representatives(&subs, &reps, &params);

        // Conservation: every input ends up exactly once somewhere.
        prop_assert_eq!(result.total_sub_trajectories(), subs.len());
        // Members respect the distance bound.
        for c in &result.clusters {
            for d in &c.member_distances {
                prop_assert!(*d <= epsilon + 1e-9);
            }
        }
        // Representatives have positive votes.
        for c in &result.clusters {
            prop_assert!(c.representative_vote > 0.0);
        }
    }
}

// --- storage codec -------------------------------------------------------------------

proptest! {
    #[test]
    fn sub_trajectory_codec_round_trips(
        pts in proptest::collection::vec((-1_000.0f64..1_000.0, -1_000.0f64..1_000.0), 2..60),
        traj_id in 0u64..u64::MAX / 2,
        offset in 0u32..10_000,
    ) {
        let points: Vec<Point> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(x, y, Timestamp(i as i64 * 1_000)))
            .collect();
        let sub = SubTrajectory::from_points(
            SubTrajectoryId::new(traj_id, offset),
            traj_id,
            traj_id / 2,
            points,
        );
        let bytes = encode_sub_trajectory(&sub);
        let back = decode_sub_trajectory(&bytes).unwrap();
        prop_assert_eq!(back.id, sub.id);
        prop_assert_eq!(back.object_id, sub.object_id);
        prop_assert_eq!(back.points(), sub.points());
    }
}

// --- SQL parser robustness --------------------------------------------------------------

proptest! {
    #[test]
    fn sql_parser_never_panics(input in ".{0,120}") {
        // Any input must either parse or produce a ParseError — never panic.
        let _ = sql::parse(&input);
    }

    #[test]
    fn sql_range_statement_round_trips(wi in -1_000_000i64..1_000_000, we in -1_000_000i64..1_000_000) {
        let text = format!("SELECT RANGE(flights, {wi}, {we});");
        let stmt = sql::parse(&text).unwrap();
        prop_assert_eq!(stmt, sql::Statement::Range { name: "flights".into(), wi, we });
    }
}
