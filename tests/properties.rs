//! Property-based tests over the core data structures and the invariants the
//! clustering pipeline relies on.
//!
//! The harness is a dependency-free sweep: each property runs against a few
//! hundred inputs drawn from the workspace's own deterministic [`SplitMix64`]
//! generator, so failures reproduce exactly (re-run with the same seed) and
//! the suite builds offline.

use hermes::datagen::SplitMix64;
use hermes::gist::RTree3D;
use hermes::s2t::{
    cluster_around_representatives, segment_trajectory, select_representatives, S2TParams,
    VotingProfile,
};
use hermes::sql;
use hermes::sql::{Scalar, Statement, Value};
use hermes::storage::{decode_sub_trajectory, encode_sub_trajectory};
use hermes::trajectory::{
    interpolate, Mbb, Point, SubTrajectory, SubTrajectoryId, TimeInterval, Timestamp, Trajectory,
};

/// Runs `property` against `cases` inputs drawn from a seeded generator.
fn sweep(seed: u64, cases: usize, mut property: impl FnMut(&mut SplitMix64)) {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..cases {
        property(&mut rng);
    }
}

// --- generators -------------------------------------------------------------

fn gen_point(rng: &mut SplitMix64) -> Point {
    Point::new(
        rng.range(-1_000.0, 1_000.0),
        rng.range(-1_000.0, 1_000.0),
        Timestamp(rng.index(10_000_000) as i64),
    )
}

fn gen_mbb(rng: &mut SplitMix64) -> Mbb {
    let mut m = Mbb::from_point(&gen_point(rng));
    m.expand_point(&gen_point(rng));
    m
}

/// A valid trajectory: strictly increasing times, finite coordinates.
fn gen_trajectory(rng: &mut SplitMix64) -> Trajectory {
    let n = 2 + rng.index(38);
    let step = 1 + rng.index(120_000) as i64;
    let (mut x, mut y) = (rng.range(-500.0, 500.0), rng.range(-500.0, 500.0));
    let mut pts = Vec::with_capacity(n);
    for i in 0..n {
        x += rng.range(-50.0, 50.0);
        y += rng.range(-50.0, 50.0);
        pts.push(Point::new(x, y, Timestamp(i as i64 * step)));
    }
    Trajectory::new(1, 1, pts).expect("generated trajectories are valid")
}

// --- Mbb laws ----------------------------------------------------------------

#[test]
fn mbb_union_is_commutative_and_contains_both() {
    sweep(0xA1, 300, |rng| {
        let (a, b) = (gen_mbb(rng), gen_mbb(rng));
        let u1 = a.union(&b);
        let u2 = b.union(&a);
        assert_eq!(u1, u2);
        assert!(u1.contains(&a));
        assert!(u1.contains(&b));
        assert!(u1.volume(1.0) + 1e-9 >= a.volume(1.0).max(b.volume(1.0)));
    });
}

#[test]
fn mbb_intersection_is_contained_in_both() {
    sweep(0xA2, 300, |rng| {
        let (a, b) = (gen_mbb(rng), gen_mbb(rng));
        match a.intersection(&b) {
            Some(i) => {
                assert!(a.contains(&i));
                assert!(b.contains(&i));
                assert!(a.intersects(&b));
            }
            None => assert!(!a.intersects(&b)),
        }
    });
}

#[test]
fn mbb_min_distance_is_zero_iff_intersecting() {
    sweep(0xA3, 300, |rng| {
        let (a, b) = (gen_mbb(rng), gen_mbb(rng));
        let d = a.min_distance(&b, 1.0);
        if a.intersects(&b) {
            assert!(d == 0.0);
        } else {
            assert!(d > 0.0);
        }
    });
}

// --- R-tree equivalence with a linear scan ------------------------------------

#[test]
fn rtree_range_query_matches_linear_scan() {
    sweep(0xB1, 60, |rng| {
        let boxes: Vec<Mbb> = (0..1 + rng.index(119)).map(|_| gen_mbb(rng)).collect();
        let query = gen_mbb(rng);
        let mut tree = RTree3D::new();
        for (i, b) in boxes.iter().enumerate() {
            tree.insert(*b, i);
        }
        let mut from_tree: Vec<usize> = tree
            .query_intersecting(&query)
            .into_iter()
            .copied()
            .collect();
        from_tree.sort_unstable();
        let expected: Vec<usize> = boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| b.intersects(&query))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(from_tree, expected);
    });
}

#[test]
fn rtree_bulk_load_matches_incremental() {
    sweep(0xB2, 60, |rng| {
        let boxes: Vec<Mbb> = (0..1 + rng.index(119)).map(|_| gen_mbb(rng)).collect();
        let query = gen_mbb(rng);
        let items: Vec<(Mbb, usize)> = boxes
            .iter()
            .copied()
            .enumerate()
            .map(|(i, b)| (b, i))
            .collect();
        let bulk = RTree3D::bulk_load(items.clone());
        let mut incr = RTree3D::new();
        for (b, v) in items {
            incr.insert(b, v);
        }
        let mut a: Vec<usize> = bulk
            .query_intersecting(&query)
            .into_iter()
            .copied()
            .collect();
        let mut b: Vec<usize> = incr
            .query_intersecting(&query)
            .into_iter()
            .copied()
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(bulk.len(), incr.len());
    });
}

// --- interpolation -------------------------------------------------------------

#[test]
fn interpolated_positions_stay_inside_the_mbb() {
    sweep(0xC1, 200, |rng| {
        let traj = gen_trajectory(rng);
        let f = rng.next_f64();
        let span = traj.lifespan();
        let t = Timestamp(
            span.start.millis() + ((span.end.millis() - span.start.millis()) as f64 * f) as i64,
        );
        let p = traj.position_at(t).expect("t is inside the lifespan");
        let mbb = traj.mbb();
        assert!(p.x >= mbb.x_min - 1e-9 && p.x <= mbb.x_max + 1e-9);
        assert!(p.y >= mbb.y_min - 1e-9 && p.y <= mbb.y_max + 1e-9);
        assert!(
            interpolate::position_at(traj.points(), Timestamp(span.end.millis() + 1)).is_none()
        );
    });
}

#[test]
fn temporal_slice_is_within_window_and_lossless_on_full_window() {
    sweep(0xC2, 200, |rng| {
        let traj = gen_trajectory(rng);
        let span = traj.lifespan();
        let full = traj.temporal_slice(&span).unwrap();
        assert_eq!(full.points(), traj.points());

        let mid = Timestamp((span.start.millis() + span.end.millis()) / 2);
        if mid > span.start {
            let w = TimeInterval::new(span.start, mid);
            if let Ok(slice) = traj.temporal_slice(&w) {
                assert!(slice.start_time() >= w.start);
                assert!(slice.end_time() <= w.end);
            }
        }
    });
}

// --- segmentation invariants ------------------------------------------------------

#[test]
fn segmentation_partitions_the_trajectory_exactly() {
    sweep(0xD1, 100, |rng| {
        let traj = gen_trajectory(rng);
        let tau = rng.range(0.05, 0.9);
        let votes_seed = rng.next_u64() % 1000;
        let votes: Vec<f64> = (0..traj.num_segments())
            .map(|i| ((i as u64 * 2654435761 + votes_seed) % 100) as f64 / 10.0)
            .collect();
        let profile = VotingProfile {
            trajectory_id: traj.id,
            trajectory_index: 0,
            votes,
        };
        let params = S2TParams {
            tau,
            min_duration_ms: 0,
            ..S2TParams::default()
        };
        let subs = segment_trajectory(&traj, &profile, &params);

        assert!(!subs.is_empty());
        // Pieces tile the trajectory: boundaries chain, segments sum up.
        assert_eq!(subs.first().unwrap().sub.start_time(), traj.start_time());
        assert_eq!(subs.last().unwrap().sub.end_time(), traj.end_time());
        for w in subs.windows(2) {
            assert_eq!(w[0].sub.end_time(), w[1].sub.start_time());
        }
        let total_segments: usize = subs.iter().map(|s| s.sub.num_segments()).sum();
        assert_eq!(total_segments, traj.num_segments());
    });
}

// --- clustering invariants ---------------------------------------------------------

#[test]
fn every_sub_trajectory_is_clustered_or_outlier_exactly_once() {
    sweep(0xE1, 60, |rng| {
        let n = 2 + rng.index(23);
        let ys: Vec<f64> = (0..n).map(|_| rng.range(0.0, 5_000.0)).collect();
        let votes: Vec<f64> = (0..n).map(|_| rng.range(0.0, 5.0)).collect();
        let epsilon = rng.range(50.0, 2_000.0);
        let subs: Vec<hermes::s2t::VotedSubTrajectory> = (0..n)
            .map(|i| {
                let sub = SubTrajectory::from_points(
                    SubTrajectoryId::new(i as u64, 0),
                    i as u64,
                    i as u64,
                    (0..5)
                        .map(|k| Point::new(k as f64 * 100.0, ys[i], Timestamp(k as i64 * 60_000)))
                        .collect(),
                );
                hermes::s2t::VotedSubTrajectory {
                    sub,
                    mean_vote: votes[i],
                    max_vote: votes[i],
                }
            })
            .collect();
        let params = S2TParams {
            epsilon,
            ..S2TParams::default()
        };
        let reps = select_representatives(&subs, &params);
        let result = cluster_around_representatives(&subs, &reps, &params);

        // Conservation: every input ends up exactly once somewhere.
        assert_eq!(result.total_sub_trajectories(), subs.len());
        // Members respect the distance bound.
        for c in &result.clusters {
            for d in &c.member_distances {
                assert!(*d <= epsilon + 1e-9);
            }
        }
        // Representatives have positive votes.
        for c in &result.clusters {
            assert!(c.representative_vote > 0.0);
        }
    });
}

// --- storage codec -------------------------------------------------------------------

#[test]
fn sub_trajectory_codec_round_trips() {
    sweep(0xF1, 200, |rng| {
        let n = 2 + rng.index(58);
        let traj_id = rng.next_u64() / 2;
        let offset = rng.index(10_000) as u32;
        let points: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    rng.range(-1_000.0, 1_000.0),
                    rng.range(-1_000.0, 1_000.0),
                    Timestamp(i as i64 * 1_000),
                )
            })
            .collect();
        let sub = SubTrajectory::from_points(
            SubTrajectoryId::new(traj_id, offset),
            traj_id,
            traj_id / 2,
            points,
        );
        let bytes = encode_sub_trajectory(&sub);
        let back = decode_sub_trajectory(&bytes).unwrap();
        assert_eq!(back.id, sub.id);
        assert_eq!(back.object_id, sub.object_id);
        assert_eq!(back.points(), sub.points());
    });
}

// --- SQL parser robustness --------------------------------------------------------------

/// Draws a printable-ASCII string of length < 120.
fn gen_garbage(rng: &mut SplitMix64) -> String {
    let n = rng.index(120);
    (0..n)
        .map(|_| (0x20 + rng.index(0x5f) as u8) as char)
        .collect()
}

#[test]
fn sql_parser_never_panics() {
    sweep(0x51, 2_000, |rng| {
        // Any input must either parse or produce a ParseError — never panic.
        let _ = sql::parse(&gen_garbage(rng));
    });
    // A few adversarial shapes the random sweep may miss.
    for input in [
        "$",
        "$$$",
        "SELECT",
        "SELECT QUT(",
        "((((",
        "1 2 3",
        "\"",
        "-",
        "1e",
        "$18446744073709551616",
    ] {
        let _ = sql::parse(input);
    }
}

#[test]
fn sql_range_statement_round_trips() {
    sweep(0x52, 300, |rng| {
        let wi = rng.index(2_000_000) as i64 - 1_000_000;
        let we = rng.index(2_000_000) as i64 - 1_000_000;
        let text = format!("SELECT RANGE(flights, {wi}, {we});");
        let stmt = sql::parse(&text).unwrap();
        assert_eq!(
            stmt,
            Statement::Range {
                name: "flights".into(),
                wi: Scalar::int(wi),
                we: Scalar::int(we)
            }
        );
    });
}

// --- SQL statement render/parse round trip -----------------------------------------------

/// Draws a literal or, with probability ~1/4, a placeholder.
fn gen_scalar(rng: &mut SplitMix64, next_param: &mut usize) -> Scalar {
    match rng.index(8) {
        0 | 1 => {
            *next_param += 1;
            Scalar::Param(*next_param)
        }
        2..=4 => Scalar::int(rng.index(20_000_000) as i64 - 10_000_000),
        5 => Scalar::float(rng.range(-10.0, 10.0)),
        6 => Scalar::float((rng.index(1_000_000) as f64) / 100.0),
        _ => Scalar::float(rng.range(-1e7, 1e7)),
    }
}

fn gen_statement(rng: &mut SplitMix64) -> Statement {
    let name = format!("ds_{}", rng.index(100));
    let mut p = 0usize;
    let s = |rng: &mut SplitMix64, p: &mut usize| gen_scalar(rng, p);
    match rng.index(10) {
        0 => Statement::CreateDataset { name },
        1 => Statement::DropDataset { name },
        2 => Statement::ShowDatasets,
        3 => {
            let sigma = rng.chance(0.5).then(|| s(rng, &mut p));
            let epsilon = rng.chance(0.5).then(|| s(rng, &mut p));
            Statement::BuildIndex {
                chunk_hours: s(rng, &mut p),
                sigma,
                epsilon,
                name,
            }
        }
        4 => Statement::Info { name },
        5 | 6 => Statement::S2T {
            sigma: s(rng, &mut p),
            tau: s(rng, &mut p),
            delta: s(rng, &mut p),
            min_duration_ms: s(rng, &mut p),
            epsilon: s(rng, &mut p),
            naive: rng.chance(0.5),
            name,
        },
        7 => {
            let rebuild = rng.chance(0.5);
            Statement::Qut {
                wi: s(rng, &mut p),
                we: s(rng, &mut p),
                tau: s(rng, &mut p),
                delta: s(rng, &mut p),
                min_duration_ms: s(rng, &mut p),
                // The rebuild form renders without merge arguments; the
                // parser fills these canonical values back in.
                merge_distance: if rebuild {
                    Scalar::float(0.0)
                } else {
                    s(rng, &mut p)
                },
                merge_gap_ms: if rebuild {
                    Scalar::int(0)
                } else {
                    s(rng, &mut p)
                },
                rebuild,
                name,
            }
        }
        8 => Statement::Range {
            wi: s(rng, &mut p),
            we: s(rng, &mut p),
            name,
        },
        _ => Statement::Histogram {
            wi: s(rng, &mut p),
            we: s(rng, &mut p),
            bucket_ms: s(rng, &mut p),
            name,
        },
    }
}

#[test]
fn sql_statement_render_parse_round_trips() {
    sweep(0x53, 500, |rng| {
        let stmt = gen_statement(rng);
        let rendered = stmt.to_string();
        let reparsed = sql::parse(&rendered)
            .unwrap_or_else(|e| panic!("render of {stmt:?} does not reparse: {rendered} ({e})"));
        assert_eq!(
            reparsed, stmt,
            "round trip changed the statement: {rendered}"
        );
    });
}

#[test]
fn sql_bound_statements_round_trip_too() {
    sweep(0x54, 200, |rng| {
        let stmt = gen_statement(rng);
        let params: Vec<Value> = (0..stmt.num_placeholders())
            .map(|_| {
                if rng.chance(0.5) {
                    Value::Int(rng.index(1_000_000) as i64)
                } else {
                    Value::Float(rng.range(0.0, 1_000.0))
                }
            })
            .collect();
        let bound = stmt.bind(&params).expect("enough parameters supplied");
        assert!(bound.is_fully_bound());
        assert_eq!(sql::parse(&bound.to_string()).unwrap(), bound);
    });
}

// --- SQL parser error paths ---------------------------------------------------------------

#[test]
fn sql_parser_error_paths_are_descriptive() {
    // Unterminated statement / string literal.
    assert!(sql::parse("SELECT INFO('oops;")
        .unwrap_err()
        .0
        .contains("unterminated"));
    assert!(sql::parse("SELECT RANGE(flights, 0")
        .unwrap_err()
        .0
        .contains("end of statement"));
    // Wrong arity, both directions.
    assert!(sql::parse("SELECT RANGE(flights, 0);")
        .unwrap_err()
        .0
        .contains("RANGE expects 2"));
    assert!(sql::parse("SELECT HISTOGRAM(flights, 0, 1, 2, 3);")
        .unwrap_err()
        .0
        .contains("HISTOGRAM expects 3"));
    // Non-numeric literal in a numeric position.
    assert!(sql::parse("SELECT RANGE(flights, 'zero', 10);")
        .unwrap_err()
        .0
        .contains("expected a number"));
    assert!(sql::parse("SELECT S2T(flights, 1x, 2, 3, 4, 5);").is_err());
    // Unknown function / statement.
    assert!(sql::parse("SELECT FROBNICATE(flights);")
        .unwrap_err()
        .0
        .contains("unknown function"));
    assert!(sql::parse("VACUUM flights;")
        .unwrap_err()
        .0
        .contains("unknown statement"));
}
