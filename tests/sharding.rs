//! Multi-node topology gate: a coordinator over 1/2/4 `hermes-serve` shards
//! must answer QUT / S2T / RANGE / HISTOGRAM / INFO **byte-identically** to a
//! single-node engine on the same seeded data — including clusters that are
//! merged across shard boundaries — and must degrade with *named* errors when
//! a shard dies mid-session.
//!
//! Everything goes over real loopback TCP: N in-process shard servers, one
//! in-process coordinator server, and a stock [`HermesClient`] upstream (the
//! same client `hermes-cli --connect` uses). The byte gate serializes each
//! answer through the wire encoder with the volatile `\timing` stats frame
//! stripped (its wall-clock fields can never be bit-stable) and compares the
//! raw frames. See `docs/SHARDING.md` for why equality is exact and not
//! approximate.

use hermes::coord::{validate_shard_map, CoordServer, CoordServerHandle, Coordinator, ShardSpec};
use hermes::core::{HermesEngine, SharedEngine};
use hermes::exec::ExecPolicy;
use hermes::server::protocol::write_response;
use hermes::server::{
    ClientError, ConnectOptions, HermesClient, Response, Server, ServerConfig, ServerHandle,
};
use hermes::sql::{self, Frame, QueryOutcome, Value};
use hermes::trajectory::Trajectory;
use hermes_bench::{maritime_standard, urban_with};

/// One seeded dataset plus the statements the gate replays on every topology.
struct Workload {
    label: &'static str,
    trajectories: Vec<Trajectory>,
    /// The BUILD INDEX chunk duration — shard cuts must be multiples of it.
    chunk_ms: i64,
    build: String,
    queries: Vec<String>,
    span: (i64, i64),
}

fn span(trajectories: &[Trajectory]) -> (i64, i64) {
    let lo = trajectories
        .iter()
        .map(|t| t.start_time().millis())
        .min()
        .expect("non-empty workload");
    let hi = trajectories
        .iter()
        .map(|t| t.lifespan().end.millis())
        .max()
        .expect("non-empty workload");
    (lo, hi)
}

/// The dense urban commute grid: short span (~28 min), so it is indexed with
/// 0.1-hour chunks and cut into 6-minute-aligned shard slices.
fn urban_workload() -> Workload {
    let trajectories = urban_with(36, 0xC0).trajectories;
    let (lo, hi) = span(&trajectories);
    let chunk_ms = 360_000;
    let queries = vec![
        "SELECT INFO(data);".to_string(),
        format!("SELECT RANGE(data, {lo}, {hi});"),
        format!("SELECT QUT(data, {lo}, {hi}, 0.35, 0.05, 180000, 250, 600000);"),
        format!("SELECT HISTOGRAM(data, {lo}, {hi}, {chunk_ms});"),
        "SELECT S2T(data, 60, 0.35, 0.05, 180000, 250);".to_string(),
    ];
    Workload {
        label: "urban",
        trajectories,
        chunk_ms,
        build: "BUILD INDEX ON data WITH CHUNK 0.1 HOURS SIGMA 60 EPSILON 250;".to_string(),
        queries,
        span: (lo, hi),
    }
}

/// The maritime lanes scenario: ~3.4 h of voyages, 1-hour chunks.
fn maritime_workload() -> Workload {
    let trajectories = maritime_standard(0xC1).trajectories;
    let (lo, hi) = span(&trajectories);
    let chunk_ms = 3_600_000;
    let queries = vec![
        "SELECT INFO(data);".to_string(),
        format!("SELECT RANGE(data, {lo}, {hi});"),
        format!("SELECT QUT(data, {lo}, {hi}, 0.35, 0.05, 600000, 2500, 2700000);"),
        format!("SELECT HISTOGRAM(data, {lo}, {hi}, {chunk_ms});"),
        "SELECT S2T(data, 800, 0.35, 0.05, 600000, 2500);".to_string(),
    ];
    Workload {
        label: "maritime",
        trajectories,
        chunk_ms,
        build: "BUILD INDEX ON data WITH CHUNK 1 HOURS SIGMA 800 EPSILON 2500;".to_string(),
        queries,
        span: (lo, hi),
    }
}

/// Interior shard boundaries for an `n_shards` topology: near-equidistant
/// cuts rounded to the chunk grid, all strictly inside the data span so every
/// topology genuinely splits the data.
fn chunk_cuts((lo, hi): (i64, i64), chunk_ms: i64, n_shards: usize) -> Vec<i64> {
    let mut cuts: Vec<i64> = (1..n_shards as i64)
        .map(|i| {
            let raw = lo + (hi - lo) * i / n_shards as i64;
            (raw + chunk_ms / 2).div_euclid(chunk_ms) * chunk_ms
        })
        .collect();
    for i in 1..cuts.len() {
        if cuts[i] <= cuts[i - 1] {
            cuts[i] = cuts[i - 1] + chunk_ms;
        }
    }
    assert!(
        cuts.iter().all(|c| *c > lo && *c < hi),
        "cuts {cuts:?} must fall inside the data span ({lo}, {hi})"
    );
    cuts
}

/// N loopback shards plus a coordinator in front of them.
struct Topology {
    /// Shard handles in slice order; kept alive for the test's duration and
    /// individually killable.
    shards: Vec<ServerHandle>,
    coord: CoordServerHandle,
    cuts: Vec<i64>,
}

fn spawn_topology(n_shards: usize, workload: &Workload) -> Topology {
    let cuts = chunk_cuts(workload.span, workload.chunk_ms, n_shards);
    let mut shards = Vec::with_capacity(n_shards);
    let mut specs = Vec::with_capacity(n_shards);
    for k in 0..n_shards {
        let handle = Server::bind(
            "127.0.0.1:0",
            SharedEngine::default(),
            ServerConfig::default(),
        )
        .expect("bind shard")
        .spawn()
        .expect("spawn shard");
        specs.push(ShardSpec {
            name: format!("s{k}"),
            addr: handle.addr().to_string(),
            replicas: Vec::new(),
            start_ms: if k == 0 { i64::MIN } else { cuts[k - 1] },
            end_ms: if k + 1 == n_shards { i64::MAX } else { cuts[k] },
        });
        shards.push(handle);
    }
    validate_shard_map(&mut specs).expect("valid shard map");
    let coordinator = Coordinator::new(specs, ConnectOptions::default(), ExecPolicy::from_env());
    let coord = CoordServer::bind("127.0.0.1:0", coordinator, ServerConfig::default())
        .expect("bind coordinator")
        .spawn()
        .expect("spawn coordinator");
    Topology {
        shards,
        coord,
        cuts,
    }
}

/// The single-node reference: same data, same statements, one engine.
fn reference_engine(workload: &Workload) -> HermesEngine {
    let mut engine = HermesEngine::new();
    engine.create_dataset("data").expect("create");
    engine
        .load_trajectories("data", workload.trajectories.clone())
        .expect("load");
    sql::execute(&mut engine, &workload.build).expect("build index");
    engine
}

/// Creates, ingests and indexes the workload through the coordinator's wire
/// protocol, the way any client would.
fn load_via(client: &mut HermesClient, workload: &Workload) {
    client.query("CREATE DATASET data;").expect("create");
    let accepted = client
        .ingest("data", &workload.trajectories)
        .expect("ingest");
    assert_eq!(accepted as usize, workload.trajectories.len());
    client.query(&workload.build).expect("build index");
}

/// The gate encoding: the result frame serialized exactly as the wire writes
/// it, with the wall-clock stats frame stripped.
fn row_bytes(outcome: QueryOutcome) -> Vec<u8> {
    let QueryOutcome::Rows { frame, .. } = outcome else {
        panic!("expected a rows response");
    };
    let mut buf = Vec::new();
    write_response(&mut buf, &Response::Rows { frame, stats: None }).expect("encode");
    buf
}

fn result_frame(outcome: QueryOutcome) -> Frame {
    match outcome {
        QueryOutcome::Rows { frame, .. } => frame,
        other => panic!("expected rows, got {other:?}"),
    }
}

/// `(start, end)` millis of every cluster row in a QUT/S2T answer frame,
/// skipping the trailing `cluster = -1` outlier-summary row (Null lifespan).
fn cluster_spans(frame: &Frame) -> Vec<(i64, i64)> {
    (0..frame.num_rows())
        .filter_map(|r| {
            let s = match frame.get(r, "start") {
                Some(Value::Timestamp(t)) => t.millis(),
                Some(Value::Null) => return None,
                v => panic!("expected a start timestamp, got {v:?}"),
            };
            let e = match frame.get(r, "end") {
                Some(Value::Timestamp(t)) => t.millis(),
                v => panic!("expected an end timestamp, got {v:?}"),
            };
            Some((s, e))
        })
        .collect()
}

/// Every `scope` value in a `SHOW STATS` frame.
fn stat_scopes(frame: &Frame) -> Vec<String> {
    (0..frame.num_rows())
        .map(|r| match frame.get(r, "scope") {
            Some(Value::Text(s)) => s.clone(),
            v => panic!("expected a scope, got {v:?}"),
        })
        .collect()
}

/// The tentpole gate: for both seeded datasets and every topology size, each
/// read statement answered through the coordinator is byte-identical to the
/// single-node engine.
#[test]
fn sharded_topologies_answer_byte_identical_to_single_node() {
    for workload in [urban_workload(), maritime_workload()] {
        let mut reference = reference_engine(&workload);
        let expected: Vec<Vec<u8>> = workload
            .queries
            .iter()
            .map(|q| row_bytes(sql::execute(&mut reference, q).expect(q)))
            .collect();
        for n_shards in [1usize, 2, 4] {
            let topology = spawn_topology(n_shards, &workload);
            let mut client = HermesClient::connect(topology.coord.addr()).expect("connect");
            load_via(&mut client, &workload);
            for (q, want) in workload.queries.iter().zip(&expected) {
                let got = row_bytes(client.query(q).expect(q));
                assert!(
                    got == *want,
                    "`{q}` diverges from single-node on the {n_shards}-shard {} topology",
                    workload.label
                );
            }
        }
    }
}

/// A window that straddles a shard cut must come back with clusters *merged
/// across the boundary* — the answer contains at least one cluster whose
/// lifespan spans the cut, and it is still byte-identical to single-node.
#[test]
fn clusters_are_merged_across_shard_boundaries() {
    let workload = maritime_workload();
    let (lo, hi) = workload.span;
    let mut reference = reference_engine(&workload);
    let qut = format!("SELECT QUT(data, {lo}, {hi}, 0.35, 0.05, 600000, 2500, 2700000);");
    let want = row_bytes(sql::execute(&mut reference, &qut).expect("single-node qut"));

    let topology = spawn_topology(2, &workload);
    let cut = topology.cuts[0];
    let mut client = HermesClient::connect(topology.coord.addr()).expect("connect");
    load_via(&mut client, &workload);
    let outcome = client.query(&qut).expect("sharded qut");
    let frame = result_frame(outcome);
    let spans = cluster_spans(&frame);
    assert!(
        spans.iter().any(|(s, e)| *s < cut && *e > cut),
        "no cluster straddles the shard cut at {cut} (spans: {spans:?}) — \
         the border merge was never exercised"
    );
    let mut got = Vec::new();
    write_response(&mut got, &Response::Rows { frame, stats: None }).expect("encode");
    assert!(
        got == want,
        "boundary-straddling QUT diverges from single-node"
    );
}

/// Windows strictly inside one shard's slice take the verbatim-forward fast
/// path; the answer must still match single-node byte-for-byte.
#[test]
fn interior_windows_forward_to_one_shard_bit_exactly() {
    let workload = urban_workload();
    let (lo, hi) = workload.span;
    let mut reference = reference_engine(&workload);
    let topology = spawn_topology(2, &workload);
    let cut = topology.cuts[0];
    let mut client = HermesClient::connect(topology.coord.addr()).expect("connect");
    load_via(&mut client, &workload);
    // One window interior to each shard's slice.
    for (wi, we) in [(lo, cut - 1), (cut + 1, hi)] {
        for q in [
            format!("SELECT RANGE(data, {wi}, {we});"),
            format!("SELECT QUT(data, {wi}, {we}, 0.35, 0.05, 180000, 250, 600000);"),
        ] {
            let want = row_bytes(sql::execute(&mut reference, &q).expect(&q));
            let got = row_bytes(client.query(&q).expect(&q));
            assert!(got == want, "interior `{q}` diverges from single-node");
        }
    }
}

/// `SHOW STATS` through the coordinator carries the coordinator scope, one
/// registry scope per shard, and the shards' own re-scoped rows.
#[test]
fn show_stats_gains_the_coordinator_scopes() {
    let workload = urban_workload();
    let topology = spawn_topology(2, &workload);
    let mut client = HermesClient::connect(topology.coord.addr()).expect("connect");
    load_via(&mut client, &workload);
    let scopes = stat_scopes(&result_frame(client.query("SHOW STATS;").expect("stats")));
    for needed in [
        "coordinator",
        "coordinator.s0",
        "coordinator.s1",
        "s0.server",
        "s1.server",
    ] {
        assert!(
            scopes.iter().any(|s| s == needed),
            "SHOW STATS is missing scope {needed:?} (got {scopes:?})"
        );
    }
}

/// Killing one shard mid-session turns boundary-spanning statements into a
/// typed error frame *naming the dead shard*, while statements routable to
/// the survivor keep answering bit-exactly on the same connection.
#[test]
fn a_dead_shard_is_named_and_survivors_keep_serving() {
    let workload = urban_workload();
    let (lo, hi) = workload.span;
    let mut reference = reference_engine(&workload);
    let Topology {
        mut shards,
        coord,
        cuts,
    } = spawn_topology(2, &workload);
    let cut = cuts[0];
    let mut client = HermesClient::connect(coord.addr()).expect("connect");
    load_via(&mut client, &workload);

    // Sanity: the spanning window answers before the failure.
    let spanning = format!("SELECT RANGE(data, {lo}, {hi});");
    client.query(&spanning).expect("pre-kill spanning range");

    // Hard-kill shard s0: sockets are severed without any protocol goodbye.
    shards.remove(0).kill();

    match client.query(&spanning) {
        Err(ClientError::Server { message, .. }) => assert!(
            message.contains("shard 's0'"),
            "error frame does not name the dead shard: {message:?}"
        ),
        other => panic!("expected a server error frame naming s0, got {other:?}"),
    }

    // The same connection still answers everything routable to the survivor.
    for q in [
        format!("SELECT RANGE(data, {}, {hi});", cut + 1),
        format!(
            "SELECT QUT(data, {}, {hi}, 0.35, 0.05, 180000, 250, 600000);",
            cut + 1
        ),
    ] {
        let want = row_bytes(sql::execute(&mut reference, &q).expect(&q));
        let got = row_bytes(client.query(&q).expect(&q));
        assert!(
            got == want,
            "survivor-routed `{q}` diverges from single-node"
        );
    }

    // SHOW STATS stays resilient and reports the shard as down.
    let frame = result_frame(client.query("SHOW STATS;").expect("post-kill stats"));
    let dead = (0..frame.num_rows()).any(|r| {
        matches!(frame.get(r, "scope"), Some(Value::Text(s)) if s == "coordinator.s0")
            && matches!(frame.get(r, "metric"), Some(Value::Text(m)) if m == "alive")
            && matches!(frame.get(r, "value"), Some(Value::Int(0)))
    });
    assert!(
        dead,
        "coordinator.s0 should report alive = 0 after the kill"
    );
}

/// Prepared statements flow through the coordinator: PREPARE once, EXECUTE
/// with different bindings, byte-identical to single-node each time.
#[test]
fn prepared_statements_route_through_the_coordinator() {
    let workload = maritime_workload();
    let (lo, hi) = workload.span;
    let mut reference = reference_engine(&workload);
    let topology = spawn_topology(2, &workload);
    let mut client = HermesClient::connect(topology.coord.addr()).expect("connect");
    load_via(&mut client, &workload);

    let prepared = client
        .prepare("SELECT RANGE(data, $1, $2);")
        .expect("prepare");
    for (wi, we) in [(lo, hi), (lo, topology.cuts[0] - 1)] {
        let want = row_bytes(
            sql::execute(&mut reference, &format!("SELECT RANGE(data, {wi}, {we});"))
                .expect("single-node range"),
        );
        let got = row_bytes(
            client
                .execute_prepared(prepared, &[Value::Int(wi), Value::Int(we)])
                .expect("execute prepared"),
        );
        assert!(
            got == want,
            "prepared RANGE({wi}, {we}) diverges from single-node"
        );
    }
}
