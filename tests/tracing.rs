//! Distributed tracing gate: a spanning statement through the coordinator
//! must yield a `SHOW TRACE` span tree covering the whole fan-out — one root,
//! one child span per contacted shard carrying that shard's S2T phase work,
//! and the border-merge — while interior statements (verbatim-forwarded to
//! one shard) record no fan-out spans at all. The trace context also rides
//! the wire: the shard's own span store links its `qut_partial` span under
//! the coordinator's per-shard span via the propagated parent id.

use hermes::coord::{validate_shard_map, CoordServer, CoordServerHandle, Coordinator, ShardSpec};
use hermes::core::SharedEngine;
use hermes::exec::ExecPolicy;
use hermes::server::{ConnectOptions, HermesClient, Server, ServerConfig, ServerHandle};
use hermes::sql::{Frame, QueryOutcome, Value};
use hermes::trajectory::Trajectory;
use hermes_bench::urban_with;

/// Two loopback shards behind a coordinator, loaded and indexed with the
/// urban workload; `cut` is the interior shard boundary.
struct Traced {
    /// Kept alive for the test's duration (dropping a handle stops it).
    shards: Vec<ServerHandle>,
    coord: CoordServerHandle,
    client: HermesClient,
    span: (i64, i64),
    cut: i64,
}

fn data_span(trajectories: &[Trajectory]) -> (i64, i64) {
    let lo = trajectories
        .iter()
        .map(|t| t.start_time().millis())
        .min()
        .expect("non-empty workload");
    let hi = trajectories
        .iter()
        .map(|t| t.lifespan().end.millis())
        .max()
        .expect("non-empty workload");
    (lo, hi)
}

fn spawn_traced_topology() -> Traced {
    let trajectories = urban_with(36, 0xC0).trajectories;
    let (lo, hi) = data_span(&trajectories);
    // 0.1-hour chunks; one cut on the chunk grid near the middle of the span.
    let chunk_ms = 360_000;
    let cut = (lo + (hi - lo) / 2 + chunk_ms / 2).div_euclid(chunk_ms) * chunk_ms;
    assert!(cut > lo && cut < hi, "cut {cut} outside span ({lo}, {hi})");

    let mut shards = Vec::new();
    let mut specs = Vec::new();
    for (k, (start_ms, end_ms)) in [(i64::MIN, cut), (cut, i64::MAX)].iter().enumerate() {
        let handle = Server::bind(
            "127.0.0.1:0",
            SharedEngine::default(),
            ServerConfig::default(),
        )
        .expect("bind shard")
        .spawn()
        .expect("spawn shard");
        specs.push(ShardSpec {
            name: format!("s{k}"),
            addr: handle.addr().to_string(),
            replicas: Vec::new(),
            start_ms: *start_ms,
            end_ms: *end_ms,
        });
        shards.push(handle);
    }
    validate_shard_map(&mut specs).expect("valid shard map");
    let coordinator = Coordinator::new(specs, ConnectOptions::default(), ExecPolicy::from_env());
    let coord = CoordServer::bind("127.0.0.1:0", coordinator, ServerConfig::default())
        .expect("bind coordinator")
        .spawn()
        .expect("spawn coordinator");

    let mut client = HermesClient::connect(coord.addr()).expect("connect");
    client.query("CREATE DATASET data;").expect("create");
    client.ingest("data", &trajectories).expect("ingest");
    client
        .query("BUILD INDEX ON data WITH CHUNK 0.1 HOURS SIGMA 60 EPSILON 250;")
        .expect("build index");

    Traced {
        shards,
        coord,
        client,
        span: (lo, hi),
        cut,
    }
}

fn result_frame(outcome: QueryOutcome) -> Frame {
    match outcome {
        QueryOutcome::Rows { frame, .. } => frame,
        other => panic!("expected rows, got {other:?}"),
    }
}

fn int_at(frame: &Frame, row: usize, col: &str) -> i64 {
    match frame.get(row, col) {
        Some(Value::Int(v)) => *v,
        v => panic!("expected an Int in {col}[{row}], got {v:?}"),
    }
}

fn text_at(frame: &Frame, row: usize, col: &str) -> String {
    match frame.get(row, col) {
        Some(Value::Text(v)) => v.clone(),
        v => panic!("expected Text in {col}[{row}], got {v:?}"),
    }
}

/// One decoded `SHOW TRACE` row.
#[derive(Debug)]
struct SpanRow {
    span: i64,
    parent: i64,
    name: String,
    attrs: String,
}

fn span_rows(frame: &Frame) -> Vec<SpanRow> {
    (0..frame.num_rows())
        .map(|r| SpanRow {
            span: int_at(frame, r, "span"),
            parent: int_at(frame, r, "parent"),
            name: text_at(frame, r, "name"),
            attrs: text_at(frame, r, "attributes"),
        })
        .collect()
}

/// The newest trace id in `SHOW TRACES` (trace inspection itself is never
/// recorded, so row 0 is the last executed statement).
fn newest_trace(client: &mut HermesClient) -> (i64, String) {
    let frame = result_frame(client.query("SHOW TRACES;").expect("show traces"));
    assert!(frame.num_rows() > 0, "SHOW TRACES came back empty");
    (int_at(&frame, 0, "trace"), text_at(&frame, 0, "root"))
}

/// Sum of the S2T phase milliseconds serialized into a span's attributes.
fn phase_ms_sum(attrs: &str) -> f64 {
    attrs
        .split(',')
        .filter_map(|pair| {
            let (key, value) = pair.trim().split_once('=')?;
            if key.ends_with("_ms") {
                value.parse::<f64>().ok()
            } else {
                None
            }
        })
        .sum()
}

/// The tentpole gate: a boundary-spanning QUT produces the full distributed
/// span tree, and the propagated context links the shard-local span under it.
#[test]
fn spanning_qut_yields_one_child_span_per_shard() {
    let mut t = spawn_traced_topology();
    let (lo, hi) = t.span;
    // Clip one ms off each end: the window then *partially* covers the first
    // and last sub-chunks, forcing genuine re-clustering work (non-zero phase
    // timings) on both shards, and it still straddles the cut.
    let qut = format!(
        "SELECT QUT(data, {}, {}, 0.35, 0.05, 180000, 250, 600000);",
        lo + 1,
        hi - 1
    );
    t.client.query(&qut).expect("spanning qut");

    let (trace_id, root_name) = newest_trace(&mut t.client);
    assert_eq!(root_name, "query", "newest trace should be the QUT");
    let frame = result_frame(
        t.client
            .query(&format!("SHOW TRACE {trace_id};"))
            .expect("show trace"),
    );
    let spans = span_rows(&frame);

    let roots: Vec<&SpanRow> = spans.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(roots.len(), 1, "exactly one root span: {spans:?}");
    let root = roots[0];
    assert_eq!(root.name, "query");
    assert!(
        root.attrs.contains("statement=") && root.attrs.contains("status=ok"),
        "root span attrs missing statement/status: {}",
        root.attrs
    );

    let shard_spans: Vec<&SpanRow> = spans
        .iter()
        .filter(|s| s.name.starts_with("shard:"))
        .collect();
    assert_eq!(
        shard_spans.len(),
        2,
        "one child span per contacted shard: {spans:?}"
    );
    for name in ["shard:s0", "shard:s1"] {
        let span = shard_spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing {name} span in {spans:?}"));
        assert_eq!(span.parent, root.span, "{name} must parent under the root");
        assert!(
            span.attrs.contains("voting_ms=") && span.attrs.contains("clustering_ms="),
            "{name} span should carry phase attributes, got {:?}",
            span.attrs
        );
        assert!(
            phase_ms_sum(&span.attrs) > 0.0,
            "{name} reported zero phase work for a border-re-clustering window: {:?}",
            span.attrs
        );
    }

    let merge = spans
        .iter()
        .find(|s| s.name == "merge")
        .unwrap_or_else(|| panic!("no merge span in {spans:?}"));
    assert_eq!(merge.parent, root.span, "merge must parent under the root");

    // The propagated context: the shard's own span store holds a
    // `qut_partial` span of the same trace, parented under the
    // coordinator-side `shard:s0` span id that crossed the wire.
    let s0_span = shard_spans.iter().find(|s| s.name == "shard:s0").unwrap();
    let mut direct = HermesClient::connect(t.shards[0].addr()).expect("connect shard");
    let shard_frame = result_frame(
        direct
            .query(&format!("SHOW TRACE {trace_id};"))
            .expect("shard-side show trace"),
    );
    let shard_side = span_rows(&shard_frame);
    let partial = shard_side
        .iter()
        .find(|s| s.name == "qut_partial")
        .unwrap_or_else(|| panic!("shard recorded no qut_partial span: {shard_side:?}"));
    assert_eq!(
        partial.parent, s0_span.span,
        "the shard span must link under the coordinator's child span"
    );
    drop(t.coord);
}

/// Interior statements take the verbatim-forward fast path: the trace is
/// just the root span — no per-shard children, no merge.
#[test]
fn interior_queries_record_no_fanout_spans() {
    let mut t = spawn_traced_topology();
    let (lo, _) = t.span;
    let interior = format!(
        "SELECT QUT(data, {}, {}, 0.35, 0.05, 180000, 250, 600000);",
        lo,
        t.cut - 1
    );
    t.client.query(&interior).expect("interior qut");

    let (trace_id, root_name) = newest_trace(&mut t.client);
    assert_eq!(root_name, "query");
    let frame = result_frame(
        t.client
            .query(&format!("SHOW TRACE {trace_id};"))
            .expect("show trace"),
    );
    let spans = span_rows(&frame);
    assert!(
        !spans.iter().any(|s| s.name.starts_with("shard:")),
        "interior statements must not record fan-out spans: {spans:?}"
    );
    assert!(
        !spans.iter().any(|s| s.name == "merge"),
        "interior statements run no merge: {spans:?}"
    );
    assert_eq!(
        spans.len(),
        1,
        "interior trace is the root alone: {spans:?}"
    );
    assert_eq!(spans[0].name, "query");
    drop(t.shards);
}
